"""repro — Type Declarations as Subtype Constraints in Logic Programming.

A complete implementation of the prescriptive type system of Dean Jacobs
(PLDI 1990): name-based subtyping via subtype constraints, the Horn-theory
semantics of ``>=``, the deterministic derivation strategy, the ``match``
function, well-typedness checking of logic programs, typed execution, and
the Section 7 extensions (modes, filters).

Quickstart::

    from repro import check_text, TypedInterpreter

    module = check_text('''
        FUNC nil, cons.
        TYPE elist, nelist, list.
        elist >= nil.
        nelist(A) >= cons(A,list(A)).
        list(A) >= elist + nelist(A).
        PRED app(list(A),list(A),list(A)).
        app(nil,L,L).
        app(cons(X,L),M,cons(X,N)) :- app(L,M,N).
        :- app(cons(nil,nil), nil, X).
    ''')
    assert module.ok
    interpreter = TypedInterpreter(module.checker, module.program, check_program=False)
    result = interpreter.run(module.queries[0])
    print(result.answers)   # X = cons(nil, nil); every resolvent re-checked

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from . import obs
from .checker import CheckedModule, check_source, check_text
from .core import (
    ConstraintSet,
    DeclarationError,
    MATCH_BOTTOM,
    MATCH_FAIL,
    Matcher,
    ModeChecker,
    ModeEnv,
    NaiveSubtypeProver,
    PredicateTypeEnv,
    RestrictionViolation,
    SubtypeConstraint,
    SubtypeEngine,
    SymbolTable,
    TypedInterpreter,
    TypeSemantics,
    WellTypedChecker,
    deep_filter,
    shallow_filter,
)
from .lang import parse_atom, parse_clause, parse_file, parse_query, parse_term, parse_type
from .lp import (
    Clause,
    ConstrainedInterpreter,
    Database,
    Program,
    Query,
    SLDEngine,
)
from .terms import Struct, Substitution, Term, Var, freeze, mgu, pretty, unify

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # observability
    "obs",
    # terms
    "Var",
    "Struct",
    "Term",
    "Substitution",
    "unify",
    "mgu",
    "freeze",
    "pretty",
    # language
    "parse_term",
    "parse_type",
    "parse_atom",
    "parse_clause",
    "parse_query",
    "parse_file",
    # logic programming
    "Clause",
    "Query",
    "Program",
    "Database",
    "SLDEngine",
    "ConstrainedInterpreter",
    # type system
    "SymbolTable",
    "SubtypeConstraint",
    "ConstraintSet",
    "DeclarationError",
    "RestrictionViolation",
    "SubtypeEngine",
    "NaiveSubtypeProver",
    "TypeSemantics",
    "Matcher",
    "MATCH_FAIL",
    "MATCH_BOTTOM",
    "PredicateTypeEnv",
    "WellTypedChecker",
    "TypedInterpreter",
    "ModeEnv",
    "ModeChecker",
    "shallow_filter",
    "deep_filter",
    # frontend
    "check_text",
    "check_source",
    "CheckedModule",
]
