"""Workloads: the paper's declarations, canonical programs, generators."""

from .generators import (
    deep_int,
    deep_nat,
    nat_list,
    random_ground_member,
    random_guarded_constraint_set,
    random_subtype_pair,
    random_type,
    synthetic_list_program,
    wide_type_hierarchy,
)
from .programs import (
    APPEND,
    EXPRESSION_INTERPRETER,
    ILL_TYPED_EXAMPLES,
    INSERTION_SORT,
    LIST_LIBRARY,
    NATURALS_ARITHMETIC,
    SOURCES,
    load,
    load_all,
)
from .stdlib import (
    constraint,
    ids_nonuniform,
    lists,
    naturals,
    paper_universe,
    rich_universe,
)

__all__ = [
    "constraint",
    "naturals",
    "lists",
    "paper_universe",
    "ids_nonuniform",
    "rich_universe",
    "APPEND",
    "NATURALS_ARITHMETIC",
    "LIST_LIBRARY",
    "EXPRESSION_INTERPRETER",
    "INSERTION_SORT",
    "ILL_TYPED_EXAMPLES",
    "SOURCES",
    "load",
    "load_all",
    "random_guarded_constraint_set",
    "random_type",
    "random_ground_member",
    "random_subtype_pair",
    "deep_nat",
    "deep_int",
    "nat_list",
    "synthetic_list_program",
    "wide_type_hierarchy",
]
