"""The paper's type declarations, plus a small standard library of types.

Everything the paper's examples use is reproduced here verbatim (modulo
concrete syntax) so that tests and benchmarks can refer to
"the paper's universe" by name:

* :func:`naturals` — ``nat``, ``unnat``, ``int`` over ``0/succ/pred``
  (Section 1);
* :func:`lists` — ``elist``, ``nelist(A)``, ``list(A)`` over ``nil/cons``
  (Section 1), plus the ``foo`` constant used in the Section 2
  derivation example;
* :func:`paper_universe` — both of the above in one constraint set;
* :func:`ids_nonuniform` — the *non-uniform* polymorphic ``id`` type of
  Section 1 (``id(males) >= m(nat)``, ``id(females) >= f(nat)``) with a
  ``person >= males + females`` hierarchy;
* :func:`rich_universe` — the paper universe extended with booleans,
  pairs and binary trees, used by the generators and benchmarks.

All builders return fresh, independent :class:`ConstraintSet` objects.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..core.declarations import ConstraintSet, SubtypeConstraint, SymbolTable
from ..lang.ast import ConstraintDecl
from ..lang.parser import parse_file

__all__ = [
    "constraint",
    "naturals",
    "lists",
    "paper_universe",
    "ids_nonuniform",
    "rich_universe",
]


def constraint(text: str) -> SubtypeConstraint:
    """Parse a single ``lhs >= rhs.`` declaration into a constraint."""
    if not text.rstrip().endswith("."):
        text = text + "."
    item = parse_file(text).items[0]
    if not isinstance(item, ConstraintDecl):
        raise ValueError(f"not a subtype constraint: {text!r}")
    lhs = item.lhs
    from ..terms.term import Struct

    if not isinstance(lhs, Struct):
        raise ValueError(f"constraint lhs must be an application: {text!r}")
    return SubtypeConstraint(lhs, item.rhs)


def _build(
    functions: Iterable[Tuple[str, int]],
    type_constructors: Iterable[Tuple[str, int]],
    constraint_texts: Iterable[str],
) -> ConstraintSet:
    symbols = SymbolTable()
    for name, arity in functions:
        symbols.declare_function(name, arity)
    for name, arity in type_constructors:
        symbols.declare_type_constructor(name, arity)
    return ConstraintSet(symbols, [constraint(text) for text in constraint_texts])


_NATURALS_FUNCTIONS = [("0", 0), ("succ", 1), ("pred", 1)]
_NATURALS_TYPES = [("nat", 0), ("unnat", 0), ("int", 0)]
_NATURALS_CONSTRAINTS = [
    "nat >= 0 + succ(nat)",
    "unnat >= 0 + pred(unnat)",
    "int >= nat + unnat",
]

_LISTS_FUNCTIONS = [("nil", 0), ("cons", 2), ("foo", 0)]
_LISTS_TYPES = [("elist", 0), ("nelist", 1), ("list", 1)]
_LISTS_CONSTRAINTS = [
    "elist >= nil",
    "nelist(A) >= cons(A, list(A))",
    "list(A) >= elist + nelist(A)",
]


def naturals() -> ConstraintSet:
    """Section 1's ``nat``/``unnat``/``int`` declarations."""
    return _build(_NATURALS_FUNCTIONS, _NATURALS_TYPES, _NATURALS_CONSTRAINTS)


def lists() -> ConstraintSet:
    """Section 1's polymorphic list declarations (plus the ``foo`` constant
    of the Section 2 derivation example)."""
    return _build(_LISTS_FUNCTIONS, _LISTS_TYPES, _LISTS_CONSTRAINTS)


def paper_universe() -> ConstraintSet:
    """All declarations appearing in the paper's running examples."""
    return _build(
        _NATURALS_FUNCTIONS + _LISTS_FUNCTIONS,
        _NATURALS_TYPES + _LISTS_TYPES,
        _NATURALS_CONSTRAINTS + _LISTS_CONSTRAINTS,
    )


def ids_nonuniform() -> ConstraintSet:
    """Section 1's non-uniform polymorphic ``id`` type.

    ``id(males) >= m(nat)`` / ``id(females) >= f(nat)`` are *not* uniform
    polymorphic (their lhs arguments are type constants, not variables),
    so this set is only usable with the definitional semantics
    (:class:`~repro.core.semantics.GeneralTypeSemantics`, the naive
    prover) — exactly the paper's position: "This paper assigns meaning to
    all types, however, for simplicity, our well-typedness conditions are
    defined only for uniform polymorphic types."
    """
    return _build(
        _NATURALS_FUNCTIONS + [("m", 1), ("f", 1)],
        _NATURALS_TYPES + [("id", 1), ("males", 0), ("females", 0), ("person", 0)],
        _NATURALS_CONSTRAINTS
        + [
            "id(males) >= m(nat)",
            "id(females) >= f(nat)",
            "person >= males + females",
        ],
    )


def rich_universe() -> ConstraintSet:
    """The paper universe extended with booleans, pairs and binary trees —
    a larger guarded, uniform playground for generators and benchmarks."""
    return _build(
        _NATURALS_FUNCTIONS
        + _LISTS_FUNCTIONS
        + [("true", 0), ("false", 0), ("pair", 2), ("leaf", 1), ("node", 3)],
        _NATURALS_TYPES
        + _LISTS_TYPES
        + [("bool", 0), ("prod", 2), ("tree", 1), ("etree", 1), ("netree", 1)],
        _NATURALS_CONSTRAINTS
        + _LISTS_CONSTRAINTS
        + [
            "bool >= true + false",
            "prod(A, B) >= pair(A, B)",
            "etree(A) >= leaf(A)",
            "netree(A) >= node(tree(A), A, tree(A))",
            "tree(A) >= etree(A) + netree(A)",
        ],
    )
