"""Canonical typed logic programs used by examples, tests and benchmarks.

Each program is written in the paper's concrete syntax and goes through
the full checker frontend, so these sources double as end-to-end tests of
the pipeline.  ``APPEND`` is the paper's own Section 1 example, verbatim.
"""

from __future__ import annotations

from typing import Dict

from ..checker.frontend import CheckedModule, check_text

__all__ = [
    "APPEND",
    "NATURALS_ARITHMETIC",
    "LIST_LIBRARY",
    "EXPRESSION_INTERPRETER",
    "INSERTION_SORT",
    "ILL_TYPED_EXAMPLES",
    "SOURCES",
    "load",
    "load_all",
]

_NAT_DECLS = """\
FUNC 0, succ, pred.
TYPE nat, unnat, int.
nat >= 0 + succ(nat).
unnat >= 0 + pred(unnat).
int >= nat + unnat.
"""

_LIST_DECLS = """\
FUNC nil, cons.
TYPE elist, nelist, list.
elist >= nil.
nelist(A) >= cons(A,list(A)).
list(A) >= elist + nelist(A).
"""

APPEND = (
    _LIST_DECLS
    + """\
PRED app(list(A),list(A),list(A)).
app(nil,L,L).
app(cons(X,L),M,cons(X,N)) :- app(L,M,N).
"""
)
"""The paper's append example (Section 1/5), verbatim."""

NATURALS_ARITHMETIC = (
    _NAT_DECLS
    + """\
PRED plus(nat,nat,nat).
plus(0,N,N).
plus(succ(M),N,succ(K)) :- plus(M,N,K).

PRED times(nat,nat,nat).
times(0,N,0).
times(succ(M),N,K) :- times(M,N,P), plus(P,N,K).

PRED le(nat,nat).
le(0,N).
le(succ(M),succ(N)) :- le(M,N).

PRED even(nat).
even(0).
even(succ(succ(N))) :- even(N).

PRED int2nat(int,nat).
int2nat(0,0).
int2nat(succ(X),succ(X)).
"""
)
"""Peano arithmetic over ``nat`` plus the paper's ``int2nat`` filter."""

LIST_LIBRARY = (
    _NAT_DECLS
    + _LIST_DECLS
    + """\
PRED app(list(A),list(A),list(A)).
app(nil,L,L).
app(cons(X,L),M,cons(X,N)) :- app(L,M,N).

PRED member(A,list(A)).
member(X,cons(X,L)).
member(X,cons(Y,L)) :- member(X,L).

PRED len(list(A),nat).
len(nil,0).
len(cons(X,L),succ(N)) :- len(L,N).

PRED revacc(list(A),list(A),list(A)).
revacc(nil,Acc,Acc).
revacc(cons(X,L),Acc,R) :- revacc(L,cons(X,Acc),R).

PRED reverse(list(A),list(A)).
reverse(L,R) :- revacc(L,nil,R).

PRED last(list(A),A).
last(cons(X,nil),X).
last(cons(X,L),Y) :- last(L,Y).

PRED sum(list(nat),nat).
sum(nil,0).
sum(cons(X,L),N) :- sum(L,M), plus(X,M,N).

PRED plus(nat,nat,nat).
plus(0,N,N).
plus(succ(M),N,succ(K)) :- plus(M,N,K).
"""
)
"""A small typed list library layered over the paper's declarations."""

INSERTION_SORT = (
    _NAT_DECLS
    + _LIST_DECLS
    + """\
PRED le(nat,nat).
le(0,N).
le(succ(M),succ(N)) :- le(M,N).

PRED gt(nat,nat).
gt(succ(N),0).
gt(succ(M),succ(N)) :- gt(M,N).

PRED insert(nat,list(nat),list(nat)).
insert(X,nil,cons(X,nil)).
insert(X,cons(Y,L),cons(X,cons(Y,L))) :- le(X,Y).
insert(X,cons(Y,L),cons(Y,M)) :- gt(X,Y), insert(X,L,M).

PRED isort(list(nat),list(nat)).
isort(nil,nil).
isort(cons(X,L),S) :- isort(L,S1), insert(X,S1,S).
"""
)
"""Insertion sort over ``list(nat)`` — a classic whose typing exercises
monomorphic instantiation of the polymorphic list type."""

EXPRESSION_INTERPRETER = (
    _NAT_DECLS
    + """\
FUNC lit, add, mul, if_e, tt, ff, leq.
TYPE aexp, bexp, bool.
aexp >= lit(nat) + add(aexp, aexp) + mul(aexp, aexp) + if_e(bexp, aexp, aexp).
bexp >= tt + ff + leq(aexp, aexp).
bool >= tt + ff.

PRED plus(nat,nat,nat).
plus(0,N,N).
plus(succ(M),N,succ(K)) :- plus(M,N,K).

PRED times(nat,nat,nat).
times(0,N,0).
times(succ(M),N,K) :- times(M,N,P), plus(P,N,K).

PRED le(nat,nat).
le(0,N).
le(succ(M),succ(N)) :- le(M,N).

PRED gt(nat,nat).
gt(succ(N),0).
gt(succ(M),succ(N)) :- gt(M,N).

PRED aeval(aexp,nat).
PRED beval(bexp,bool).
aeval(lit(N),N).
aeval(add(E1,E2),N) :- aeval(E1,N1), aeval(E2,N2), plus(N1,N2,N).
aeval(mul(E1,E2),N) :- aeval(E1,N1), aeval(E2,N2), times(N1,N2,N).
aeval(if_e(B,E1,E2),N) :- beval(B,tt), aeval(E1,N).
aeval(if_e(B,E1,E2),N) :- beval(B,ff), aeval(E2,N).
beval(tt,tt).
beval(ff,ff).
beval(leq(E1,E2),tt) :- aeval(E1,N1), aeval(E2,N2), le(N1,N2).
beval(leq(E1,E2),ff) :- aeval(E1,N1), aeval(E2,N2), gt(N1,N2).
"""
)
"""A typed big-step interpreter for a small expression language: the
arithmetic/boolean AST is carved out of the Herbrand universe with
subtype constraints (``aexp``/``bexp`` as unions of constructor shapes),
and the evaluator's predicate types guarantee evaluation only ever
produces ``nat`` values and ``bool`` truth values."""

ILL_TYPED_EXAMPLES: Dict[str, str] = {
    # Section 5: "X appears as both an int and a list(A)" in a query.
    "query_two_contexts": _NAT_DECLS
    + _LIST_DECLS
    + """\
PRED p(int).
PRED q(list(A)).
p(0).
q(nil).
:- p(X), q(X).
""",
    # Section 5: clause body types X differently from the head.
    "clause_two_contexts": _NAT_DECLS
    + _LIST_DECLS
    + """\
PRED p(int).
PRED r(list(A)).
p(0).
r(X) :- p(X).
""",
    # Section 5: repeated head variable in two contexts.
    "head_two_contexts": _NAT_DECLS
    + _LIST_DECLS
    + """\
PRED s(int,list(A)).
s(X,X).
""",
    # Section 5: a defining clause may not commit the predicate's type
    # variables — p(cons(nil,nil)) would let q(list(int)) receive a
    # list of lists.
    "head_commits_type_variable": _LIST_DECLS
    + """\
PRED p(list(A)).
p(cons(nil,nil)).
""",
    # Section 7: subtype information-flow — without modes the query must
    # be rejected because q could instantiate X to pred(0).
    "subtype_flow": _NAT_DECLS
    + """\
PRED p(nat).
PRED q(int).
p(0).
q(0).
:- p(X), q(X).
""",
    # Section 1: app restricted to lists rules out :- app(nil,0,0).
    "append_on_naturals": _NAT_DECLS
    + _LIST_DECLS
    + """\
PRED app(list(A),list(A),list(A)).
app(nil,L,L).
app(cons(X,L),M,cons(X,N)) :- app(L,M,N).
:- app(nil,0,0).
""",
}
"""Every ill-typed program/query the paper presents, keyed by its role."""

SOURCES: Dict[str, str] = {
    "append": APPEND,
    "naturals_arithmetic": NATURALS_ARITHMETIC,
    "list_library": LIST_LIBRARY,
    "expression_interpreter": EXPRESSION_INTERPRETER,
    "insertion_sort": INSERTION_SORT,
}
"""The well-typed canonical sources by name."""


def load(name: str) -> CheckedModule:
    """Check and return a canonical source by name (must be well-typed)."""
    module = check_text(SOURCES[name])
    if not module.ok:
        raise AssertionError(
            f"canonical program {name} failed to check:\n{module.diagnostics.render()}"
        )
    return module


def load_all() -> Dict[str, CheckedModule]:
    """All canonical well-typed programs, checked."""
    return {name: load(name) for name in SOURCES}
