"""Seeded random workload generators for property tests and benchmarks.

Three families:

* **Constraint sets** — :func:`random_guarded_constraint_set` builds
  uniform polymorphic, guarded-by-construction declaration sets of a
  requested size: type constructors are generated in a fixed order and a
  constraint for constructor ``i`` may mention constructors ``j < i`` at
  unguarded (not-under-a-function-symbol) positions, so no constructor can
  ever directly depend on itself (Definition 9 holds by construction —
  the tests verify it through the analysis anyway).
* **Terms and types** — random ground terms of a type (sampled through
  the enumeration semantics), random types over a constraint set, and
  random subtype goals biased toward derivable pairs.
* **Programs** — scalable well-typed programs built from list/naturals
  templates (for checker-throughput and typed-execution benchmarks) whose
  shape mirrors the canonical library but whose size is a parameter.

Everything takes an explicit :class:`random.Random` so runs reproduce.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..core.declarations import ConstraintSet, SubtypeConstraint, SymbolTable
from ..core.semantics import GeneralTypeSemantics
from ..terms.term import Struct, Term, Var

__all__ = [
    "random_guarded_constraint_set",
    "random_type",
    "random_ground_member",
    "random_subtype_pair",
    "deep_nat",
    "deep_int",
    "nat_list",
    "synthetic_list_program",
    "wide_type_hierarchy",
]


def random_guarded_constraint_set(
    rng: random.Random,
    type_count: int = 6,
    function_count: int = 6,
    constraints_per_type: int = 2,
    max_constructor_arity: int = 2,
    max_rhs_depth: int = 3,
) -> ConstraintSet:
    """A uniform polymorphic, guarded constraint set of the given size."""
    symbols = SymbolTable()
    function_names: List[Tuple[str, int]] = []
    for index in range(function_count):
        arity = rng.randint(0, max_constructor_arity)
        # Always keep at least one constant so every type is inhabited.
        if index == 0:
            arity = 0
        name = f"g{index}"
        symbols.declare_function(name, arity)
        function_names.append((name, arity))
    type_names: List[Tuple[str, int]] = []
    for index in range(type_count):
        arity = rng.randint(0, max_constructor_arity)
        name = f"t{index}"
        symbols.declare_type_constructor(name, arity)
        type_names.append((name, arity))

    constraints: List[SubtypeConstraint] = []
    for index, (name, arity) in enumerate(type_names):
        parameters = tuple(Var(f"P{i}") for i in range(arity))
        lhs = Struct(name, parameters)
        earlier = type_names[:index]
        for _ in range(constraints_per_type):
            rhs = _random_rhs(
                rng,
                parameters,
                function_names,
                earlier,
                type_names,
                depth=max_rhs_depth,
                guarded=True,
            )
            constraints.append(SubtypeConstraint(lhs, rhs))
    return ConstraintSet(symbols, constraints)


def _random_rhs(
    rng: random.Random,
    parameters: Sequence[Var],
    functions: Sequence[Tuple[str, int]],
    earlier_types: Sequence[Tuple[str, int]],
    all_types: Sequence[Tuple[str, int]],
    depth: int,
    guarded: bool,
) -> Term:
    """A random right-hand side; while ``guarded`` holds, only earlier
    type constructors may appear (the guard drops under function symbols,
    where any constructor is allowed)."""
    choices = ["function"]
    if parameters:
        choices.append("parameter")
    available_types = earlier_types if guarded else all_types
    if available_types:
        choices.append("type")
    kind = rng.choice(choices) if depth > 0 else "leaf"
    if kind == "parameter":
        return rng.choice(list(parameters))
    if kind == "type" and depth > 0:
        name, arity = rng.choice(list(available_types))
        args = tuple(
            _random_rhs(
                rng, parameters, functions, earlier_types, all_types, depth - 1, guarded
            )
            for _ in range(arity)
        )
        return Struct(name, args)
    # Function symbol (or forced leaf): recursion below is guarded.
    if depth > 0:
        name, arity = rng.choice(list(functions))
    else:
        constants = [(n, a) for n, a in functions if a == 0]
        name, arity = rng.choice(constants)
    args = tuple(
        _random_rhs(rng, parameters, functions, earlier_types, all_types, depth - 1, False)
        for _ in range(arity)
    )
    return Struct(name, args)


def random_type(
    rng: random.Random,
    constraints: ConstraintSet,
    depth: int = 3,
    variables: Sequence[Var] = (),
    allow_variables: bool = True,
) -> Term:
    """A random well-formed type over the constraint set's alphabets."""
    symbols = constraints.symbols
    options = ["function", "type"]
    if allow_variables and variables:
        options.append("variable")
    kind = rng.choice(options)
    if kind == "variable":
        return rng.choice(list(variables))
    if kind == "type":
        pool = list(symbols.type_constructors.items())
    else:
        pool = list(symbols.functions.items())
    if depth <= 1:
        constants = [(n, a) for n, a in pool if a == 0]
        if not constants:
            constants = [(n, a) for n, a in symbols.functions.items() if a == 0]
        name, arity = rng.choice(constants)
    else:
        name, arity = rng.choice(pool)
    args = tuple(
        random_type(rng, constraints, depth - 1, variables, allow_variables)
        for _ in range(arity)
    )
    return Struct(name, args)


def random_ground_member(
    rng: random.Random,
    constraints: ConstraintSet,
    type_term: Term,
    max_depth: int = 4,
) -> Optional[Term]:
    """A random inhabitant of ``type_term`` (depth ≤ ``max_depth``), or
    ``None`` when the bounded enumeration is empty."""
    semantics = GeneralTypeSemantics(constraints)
    members = sorted(semantics.inhabitants(type_term, max_depth), key=repr)
    if not members:
        return None
    return rng.choice(members)


def random_subtype_pair(
    rng: random.Random,
    constraints: ConstraintSet,
    depth: int = 3,
    member_depth: int = 4,
) -> Tuple[Term, Term]:
    """A random ``(supertype, candidate)`` goal.

    Half the time the candidate is drawn from the supertype's inhabitants
    (so the goal should hold), half the time it is an unrelated random
    ground term (usually it should not) — a useful mix for differential
    testing of the two provers.
    """
    supertype = random_type(rng, constraints, depth=depth, allow_variables=False)
    if rng.random() < 0.5:
        member = random_ground_member(rng, constraints, supertype, member_depth)
        if member is not None:
            return supertype, member
    other = random_type(rng, constraints, depth=depth, allow_variables=False)
    candidate = random_ground_member(rng, constraints, other, member_depth)
    if candidate is None:
        candidate = Struct("g0", ())
    return supertype, candidate


# -- deterministic scaling families (benchmarks) --------------------------------


def deep_nat(depth: int) -> Term:
    """``succ^depth(0)`` — a ``nat`` of derivation length ~depth."""
    term: Term = Struct("0", ())
    for _ in range(depth):
        term = Struct("succ", (term,))
    return term


def deep_int(depth: int) -> Term:
    """``pred^depth(0)`` — an ``unnat``/``int`` of derivation length ~depth."""
    term: Term = Struct("0", ())
    for _ in range(depth):
        term = Struct("pred", (term,))
    return term


def nat_list(length: int, element_depth: int = 1) -> Term:
    """``cons(succ^k(0), ... nil)`` — a ``list(nat)`` of the given length."""
    term: Term = Struct("nil", ())
    for _ in range(length):
        term = Struct("cons", (deep_nat(element_depth), term))
    return term


def synthetic_list_program(predicate_count: int, clauses_per_predicate: int = 2) -> str:
    """Source text of a well-typed program with many predicates.

    Predicate ``p0`` is plain append; each later ``p_i`` delegates through
    ``p_{i-1}``, giving a program whose size scales linearly in
    ``predicate_count`` while staying well-typed — the checker-throughput
    benchmark family (P1).
    """
    lines: List[str] = [
        "FUNC nil, cons.",
        "TYPE elist, nelist, list.",
        "elist >= nil.",
        "nelist(A) >= cons(A,list(A)).",
        "list(A) >= elist + nelist(A).",
        "PRED p0(list(A),list(A),list(A)).",
        "p0(nil,L,L).",
        "p0(cons(X,L),M,cons(X,N)) :- p0(L,M,N).",
    ]
    for index in range(1, predicate_count):
        previous = f"p{index - 1}"
        current = f"p{index}"
        lines.append(f"PRED {current}(list(A),list(A),list(A)).")
        lines.append(f"{current}(nil,L,L).")
        for _ in range(max(1, clauses_per_predicate - 1)):
            lines.append(
                f"{current}(cons(X,L),M,cons(X,N)) :- {previous}(L,M,N)."
            )
    return "\n".join(lines) + "\n"


def wide_type_hierarchy(width: int, depth: int = 1) -> str:
    """Source text declaring a wide subtype hierarchy (for the
    restriction-analysis and subtype benchmarks): ``top >= s0 + ... +
    s{width-1}`` with each ``s_i`` owning one constant."""
    lines: List[str] = []
    constants = ", ".join(f"k{i}" for i in range(width))
    lines.append(f"FUNC {constants}.")
    names = ", ".join(f"s{i}" for i in range(width))
    lines.append(f"TYPE top, {names}.")
    for i in range(width):
        lines.append(f"s{i} >= k{i}.")
    union = " + ".join(f"s{i}" for i in range(width))
    lines.append(f"top >= {union}.")
    return "\n".join(lines) + "\n"
