"""Type semantics ``M_C`` (Definition 4) made executable.

``M_C[[τ]] = { t ∈ H | τ ⪰_C t }`` — the set of ground terms (over ``F``)
below ``τ``.  Two executable views are provided:

* **membership** — delegate ``τ ⪰_C t`` to the deterministic engine
  (or any oracle with a ``contains`` method);
* **bounded enumeration** — compute *all* inhabitants of ``τ`` up to a
  term-depth bound, by structural recursion over the type:

  - a type variable denotes the whole Herbrand universe ``H`` (any ground
    term: ``A ⪰_C t`` always holds by instantiating ``A``),
  - ``f(τ1,...,τn)`` with ``f ∈ F`` denotes ``{f(t1,...,tn) | t_i ∈ M[[τ_i]]}``
    (the paper's fixed interpretation of function symbols as type
    constructors),
  - ``c(τ1,...,τn)`` with ``c ∈ T`` collects, for every constraint
    ``c(l1,...,ln) >= ρ`` in ``C``, the inhabitants of ``ρθ`` for the most
    general ``θ`` with ``τ_i ⪰_C l_iθ`` — the two SLD steps "substitution
    axiom for c, then the constraint" folded into one.  For a *uniform*
    constraint the ``l_i`` are distinct variables and ``θ = {l_i ↦ τ_i}``
    (monotonicity makes that choice most general); for the non-uniform
    ``id(males) >= m(nat)`` style the ``l_i`` are checked against the
    ``τ_i`` with the (naive, definitional) subtype prover, so
    ``M[[id(person)]]`` correctly includes ``M[[id(males)]]`` via
    ``person >= males``.

Enumeration requires guarded expansion chains (Theorem 3) to terminate —
guardedness is orthogonal to uniformity, and the paper's non-uniform
example is guarded, so :class:`GeneralTypeSemantics` accepts it.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..terms.substitution import Substitution
from ..terms.term import Struct, Term, Var, rename_apart, variables_of
from ..terms.unify import unify
from .declarations import ConstraintSet, SubtypeConstraint
from .subtype import SubtypeEngine

__all__ = ["herbrand_universe", "TypeSemantics", "GeneralTypeSemantics"]


def herbrand_universe(symbols_functions: Dict[str, int], max_depth: int) -> Set[Term]:
    """All ground terms over ``F`` of depth at most ``max_depth``."""
    by_depth: List[Set[Term]] = [set()]
    for depth in range(1, max_depth + 1):
        layer: Set[Term] = set()
        shallower = by_depth[depth - 1]
        for name, arity in symbols_functions.items():
            if arity == 0:
                layer.add(Struct(name, ()))
            elif shallower:
                for args in product(sorted(shallower, key=repr), repeat=arity):
                    layer.add(Struct(name, args))
        layer |= shallower
        by_depth.append(layer)
    return by_depth[max_depth]


class GeneralTypeSemantics:
    """Bounded enumeration of ``M_C[[τ]]`` by structural recursion.

    Works for any guarded constraint set, uniform or not.
    """

    def __init__(self, constraints: ConstraintSet, max_expansion_chain: int = 64) -> None:
        self.constraints = constraints
        self.max_expansion_chain = max_expansion_chain
        self._memo: Dict[Tuple[Term, int], FrozenSet[Term]] = {}
        self._oracle = None  # lazily built naive prover for non-uniform lhs

    def inhabitants(self, type_term: Term, max_depth: int) -> FrozenSet[Term]:
        """All ground terms of depth ≤ ``max_depth`` in ``M_C[[type_term]]``."""
        return self._inhabit(type_term, max_depth, 0)

    # -- constraint application ----------------------------------------------

    def _subtype_oracle_holds(self, wider: Term, narrower: Term) -> bool:
        """``wider ⪰_C narrower`` via the definitional prover (bounded).

        Only consulted for non-uniform constraint left-hand sides; an
        unknown (budget-exhausted) answer is treated as *no* — the
        enumeration stays a sound under-approximation.
        """
        if self._oracle is None:
            from .subtype_sld import NaiveSubtypeProver

            self._oracle = NaiveSubtypeProver(self.constraints)
        return self._oracle.holds(wider, narrower) is True

    def _apply_constraint(
        self, type_term: Struct, constraint: SubtypeConstraint
    ) -> Optional[Term]:
        """The most general ``ρθ`` with ``τ_i ⪰_C l_iθ``, or ``None``."""
        renamed_lhs, mapping = rename_apart(constraint.lhs)
        renamed_rhs = Substitution(dict(mapping)).apply(constraint.rhs)
        assert isinstance(renamed_lhs, Struct)
        if len(renamed_lhs.args) != len(type_term.args):
            return None
        theta: Dict[Var, Term] = {}
        for pattern, actual in zip(renamed_lhs.args, type_term.args):
            if isinstance(pattern, Var):
                existing = theta.get(pattern)
                if existing is None:
                    theta[pattern] = actual
                elif existing != actual:
                    return None  # repeated lhs variable with clashing args
                continue
            if pattern == actual:
                continue
            if not variables_of(pattern):
                if self._subtype_oracle_holds(actual, pattern):
                    continue
                return None
            # Mixed pattern (non-ground, non-variable): fall back to
            # unification — covers instantiating the pattern to the actual
            # argument, the most common remaining case.
            bound = Substitution(theta).apply(pattern)
            unifier = unify(bound, actual)
            if unifier is None or any(v in unifier for v in variables_of(actual)):
                return None
            for var, value in unifier.items():
                theta[var] = value
        return Substitution(theta).apply(renamed_rhs)

    def constraint_images(self, type_term: Struct) -> List[Term]:
        """All right-hand-side instances reachable from ``type_term`` in one
        (generalised) constraint application."""
        images: List[Term] = []
        for constraint in self.constraints.constraints_for(type_term.functor):
            image = self._apply_constraint(type_term, constraint)
            if image is not None:
                images.append(image)
        return images

    # -- the enumeration --------------------------------------------------------

    def _inhabit(self, type_term: Term, depth: int, chain: int) -> FrozenSet[Term]:
        if depth <= 0:
            return frozenset()
        if chain > self.max_expansion_chain:
            raise RecursionError(
                "expansion chain exceeded bound — is the constraint set guarded?"
            )
        key = (type_term, depth)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        symbols = self.constraints.symbols
        if isinstance(type_term, Var):
            result = frozenset(herbrand_universe(symbols.functions, depth))
        else:
            assert isinstance(type_term, Struct)
            if symbols.is_type_constructor(type_term.functor):
                collected: Set[Term] = set()
                for image in self.constraint_images(type_term):
                    collected |= self._inhabit(image, depth, chain + 1)
                result = frozenset(collected)
            else:
                if not type_term.args:
                    result = frozenset({type_term})
                else:
                    argument_sets = [
                        sorted(self._inhabit(arg, depth - 1, 0), key=repr)
                        for arg in type_term.args
                    ]
                    result = frozenset(
                        Struct(type_term.functor, combo)
                        for combo in product(*argument_sets)
                    )
        self._memo[key] = result
        return result


class TypeSemantics(GeneralTypeSemantics):
    """Semantics over a uniform, guarded set, with a membership oracle."""

    def __init__(
        self,
        constraints: ConstraintSet,
        engine: Optional[SubtypeEngine] = None,
    ) -> None:
        super().__init__(constraints)
        self.engine = engine or SubtypeEngine(constraints)

    def member(self, type_term: Term, ground_term: Term) -> bool:
        """``ground_term ∈ M_C[[type_term]]`` via the deterministic engine."""
        return self.engine.contains(type_term, ground_term)

    def subset_upto(self, wider: Term, narrower: Term, max_depth: int) -> bool:
        """``M[[narrower]] ⊆ M[[wider]]`` restricted to depth ≤ ``max_depth``.

        Soundness check used by the property tests: whenever
        ``wider ⪰_C narrower`` this must hold at every depth.
        """
        return self.inhabitants(narrower, max_depth) <= self.inhabitants(wider, max_depth)
