"""Type conversion / filter predicates — Section 7's proposed remedy.

In the paper's system the only way to send a value across a subtype
boundary in the "wrong" direction is an explicit conversion predicate::

    PRED int2nat(int,nat).
    int2nat(0,0).
    int2nat(succ(X),succ(X)).

"This predicate filters out all ints that are not nats.  We are currently
exploring a more general solution to this problem based on this notion of
filtering."  This module generates such filters mechanically from the
constraint set, in two flavours that make the design space of that future
work concrete:

* :func:`shallow_filter` — the paper's own shape: one fact-like clause per
  *constructor shape* of the target type, with both arguments sharing the
  same pattern.  These filters are **well-typed** under Definition 16
  (which is why the paper writes them this way), but they only check the
  outermost constructor — ``int2nat(succ(pred(0)), succ(pred(0)))``
  succeeds even though ``succ(pred(0))`` is not a ``nat``.
* :func:`deep_filter` — structurally recursive clauses that check
  membership in ``M_C[[τ]]`` completely.  These are semantically exact
  (a deep filter succeeds on ``t`` iff ``t ∈ M_C[[τ]]``, tested against
  the enumeration semantics) but their recursive clauses are **not
  well-typed**: the recursive call types the argument variable at the
  source type while the head pattern types it at the target type, exactly
  the same-variable-two-contexts situation Definition 16 exists to
  reject.  The tests assert both halves of this trade-off — it is the
  clearest executable statement of why the paper calls the problem open.

A *constructor shape* of ``τ`` is a function-headed type reachable from
``τ`` by constraint expansions alone: ``nat`` has shapes ``0`` and
``succ(nat)``; ``list(A)`` has shapes ``nil`` and ``cons(A, list(A))``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..lp.clause import Clause, Program
from ..terms.pretty import pretty
from ..terms.term import Struct, Term, Var, fresh_variable
from .declarations import ConstraintSet
from .restrictions import validate_restrictions

__all__ = ["FilterDefinition", "constructor_shapes", "shallow_filter", "deep_filter"]


@dataclass
class FilterDefinition:
    """A generated filter: its clauses plus the PRED declarations needed."""

    name: str
    predicate_types: List[Struct] = field(default_factory=list)
    program: Program = field(default_factory=Program)

    @property
    def main_predicate_type(self) -> Struct:
        return self.predicate_types[0]


def constructor_shapes(constraints: ConstraintSet, type_term: Term) -> List[Term]:
    """All function-headed (or variable) types reachable from ``type_term``
    by constraint expansion, in first-reached order.

    A variable in the result means the type includes *everything* (it can
    expand to a bare type variable, as ``A + B`` does).  Requires a
    guarded set so the expansion closure is finite (Theorem 3).
    """
    validate_restrictions(constraints, require_uniform=True, require_guarded=True)
    shapes: List[Term] = []
    seen: Set[Term] = set()
    queue: List[Term] = [type_term]
    while queue:
        current = queue.pop(0)
        if current in seen:
            continue
        seen.add(current)
        if isinstance(current, Var):
            if current not in shapes:
                shapes.append(current)
            continue
        assert isinstance(current, Struct)
        if constraints.symbols.is_type_constructor(current.functor):
            queue.extend(constraints.expansions(current))
        else:
            if current not in shapes:
                shapes.append(current)
    return shapes


def _pattern_for(shape: Struct) -> Struct:
    """A fresh-variable pattern ``f(X1,...,Xn)`` for shape ``f(σ1,...,σn)``."""
    return Struct(shape.functor, tuple(fresh_variable("X") for _ in shape.args))


def shallow_filter(
    constraints: ConstraintSet,
    name: str,
    source_type: Term,
    target_type: Term,
) -> FilterDefinition:
    """The paper-style filter: one clause per constructor shape of
    ``target_type``, both arguments sharing the pattern.

    ``shallow_filter(C, "int2nat", int, nat)`` reproduces the paper's
    ``int2nat`` verbatim (modulo variable names).
    """
    definition = FilterDefinition(name)
    definition.predicate_types.append(Struct(name, (source_type, target_type)))
    for shape in constructor_shapes(constraints, target_type):
        if isinstance(shape, Var):
            variable = fresh_variable("X")
            definition.program.add(Clause(Struct(name, (variable, variable))))
            continue
        pattern = _pattern_for(shape)
        definition.program.add(Clause(Struct(name, (pattern, pattern))))
    return definition


def _mangle(type_term: Term) -> str:
    """A predicate-name-safe rendering of a type term."""
    text = pretty(type_term).replace("+", "or")
    return re.sub(r"[^0-9a-zA-Z]+", "_", text).strip("_").lower()


def deep_filter(
    constraints: ConstraintSet,
    name: str,
    target_type: Term,
) -> FilterDefinition:
    """A structurally recursive, semantically exact membership filter.

    For every constructor shape ``f(σ1,...,σn)`` of the target a clause ::

        name(f(X1,...,Xn), f(Y1,...,Yn)) :- sub_σ1(X1,Y1), ..., sub_σn(Xn,Yn).

    is generated, with one helper filter per distinct argument type (a
    variable argument type needs no check and shares the variable between
    the two patterns).  The source type of every generated predicate is a
    fresh type variable: the filter accepts *any* term and succeeds
    exactly on members of the target type.
    """
    definition = FilterDefinition(name)
    filter_names: Dict[Term, str] = {}

    def filter_for(type_term: Term) -> str:
        existing = filter_names.get(type_term)
        if existing is not None:
            return existing
        filter_name = name if not filter_names else f"{name}_{_mangle(type_term)}"
        # Reserve the name before generating clauses: recursive types
        # (nat's succ(nat) shape) call back into themselves.
        filter_names[type_term] = filter_name
        definition.predicate_types.append(
            Struct(filter_name, (fresh_variable("S"), type_term))
        )
        for shape in constructor_shapes(constraints, type_term):
            if isinstance(shape, Var):
                variable = fresh_variable("X")
                definition.program.add(Clause(Struct(filter_name, (variable, variable))))
                continue
            sources: List[Term] = []
            targets: List[Term] = []
            body: List[Struct] = []
            for argument_type in shape.args:
                if isinstance(argument_type, Var):
                    shared = fresh_variable("X")
                    sources.append(shared)
                    targets.append(shared)
                    continue
                source_var = fresh_variable("X")
                target_var = fresh_variable("Y")
                sources.append(source_var)
                targets.append(target_var)
                body.append(
                    Struct(filter_for(argument_type), (source_var, target_var))
                )
            head = Struct(
                filter_name,
                (Struct(shape.functor, tuple(sources)), Struct(shape.functor, tuple(targets))),
            )
            definition.program.add(Clause(head, tuple(body)))
        return filter_name

    filter_for(target_type)
    return definition
