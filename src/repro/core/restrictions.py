"""Syntactic restrictions on type declarations (Definitions 6–9).

Section 3 of the paper introduces two restrictions under which subtype
derivations can be carried out deterministically and terminate:

* **Uniform polymorphism** (Definition 6): every constraint has the form
  ``c(α1,...,αn) >= τ`` with the ``α_i`` distinct variables.
* **Guardedness** (Definitions 8–9): no type constructor *directly
  depends* on itself, where ``c`` directly depends on ``d`` iff some
  constraint for ``c`` has an occurrence of ``d`` on its right-hand side
  that is not inside an argument of a *function* symbol (occurrences under
  type constructors still count), closed transitively.

Guardedness is what makes chains of "two-step applications" finite
(Theorem 3); the deterministic subtype engine and ``match`` refuse to run
on unguarded or non-uniform sets.

The direct-dependence relation is exposed as an explicit graph for the
restriction-analysis benchmarks (experiment E3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..terms.term import Struct, Term, Var
from .declarations import ConstraintSet, SubtypeConstraint

__all__ = [
    "RestrictionViolation",
    "DependenceGraph",
    "non_uniform_constraints",
    "is_uniform_polymorphic",
    "direct_dependence_graph",
    "unguarded_constructors",
    "is_guarded",
    "validate_restrictions",
]


class RestrictionViolation(Exception):
    """Raised when a constraint set violates Definition 6 or Definition 9."""


def non_uniform_constraints(constraints: ConstraintSet) -> List[SubtypeConstraint]:
    """The constraints violating Definition 6, in declaration order."""
    return [c for c in constraints if not c.is_uniform]


def is_uniform_polymorphic(constraints: ConstraintSet) -> bool:
    """Definition 6 for the whole set."""
    return not non_uniform_constraints(constraints)


@dataclass
class DependenceGraph:
    """The direct-dependence relation over type constructors.

    ``edges[c]`` is the set of constructors ``d`` such that ``c`` directly
    depends on ``d`` by clause 1 of Definition 8 (clause 2 — transitivity
    — is computed on demand by :meth:`reaches` / :meth:`transitive_closure`).
    """

    edges: Dict[str, Set[str]] = field(default_factory=dict)

    def add_edge(self, source: str, target: str) -> None:
        self.edges.setdefault(source, set()).add(target)

    def successors(self, node: str) -> Set[str]:
        """Direct (one-step) dependencies of ``node``."""
        return self.edges.get(node, set())

    def reaches(self, source: str, target: str) -> bool:
        """True iff ``source`` (transitively) directly depends on ``target``."""
        seen: Set[str] = set()
        stack = [source]
        while stack:
            node = stack.pop()
            for succ in self.edges.get(node, ()):
                if succ == target:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    def transitive_closure(self) -> Dict[str, Set[str]]:
        """The full Definition 8 relation: each node's reachable set."""
        closure: Dict[str, Set[str]] = {}
        for node in self.edges:
            seen: Set[str] = set()
            stack = list(self.edges.get(node, ()))
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(self.edges.get(current, ()))
            closure[node] = seen
        return closure

    def self_dependent(self) -> List[str]:
        """Constructors that directly depend on themselves (Definition 9)."""
        return sorted(node for node, seen in self.transitive_closure().items() if node in seen)


def _unguarded_occurrences(constraints: ConstraintSet, rhs: Term) -> Set[str]:
    """Type constructors occurring in ``rhs`` not under any function symbol.

    The walk descends through type-constructor applications (and stops at
    the arguments of function symbols), which is exactly the "occurrence
    of d in τ that is not in an argument to a function symbol" condition.
    """
    symbols = constraints.symbols
    found: Set[str] = set()
    stack: List[Term] = [rhs]
    while stack:
        term = stack.pop()
        if isinstance(term, Var):
            continue
        assert isinstance(term, Struct)
        if symbols.is_type_constructor(term.functor):
            found.add(term.functor)
            stack.extend(term.args)
        # Function symbol: its arguments are guarded — do not descend.
    return found


def direct_dependence_graph(constraints: ConstraintSet) -> DependenceGraph:
    """Clause 1 of Definition 8 as an explicit graph."""
    graph = DependenceGraph()
    for constraint in constraints:
        for target in _unguarded_occurrences(constraints, constraint.rhs):
            graph.add_edge(constraint.constructor, target)
    return graph


def unguarded_constructors(constraints: ConstraintSet) -> List[str]:
    """Constructors whose recursion is not guarded (empty iff guarded)."""
    return direct_dependence_graph(constraints).self_dependent()


def is_guarded(constraints: ConstraintSet) -> bool:
    """Definition 9 for the whole set."""
    return not unguarded_constructors(constraints)


def validate_restrictions(
    constraints: ConstraintSet,
    require_uniform: bool = True,
    require_guarded: bool = True,
) -> None:
    """Raise :class:`RestrictionViolation` unless the set satisfies the
    requested restrictions.  Called by the deterministic subtype engine and
    by ``match`` before doing any work."""
    if require_uniform:
        offenders = non_uniform_constraints(constraints)
        if offenders:
            listing = "; ".join(str(c) for c in offenders)
            raise RestrictionViolation(
                f"constraint set is not uniform polymorphic (Definition 6): {listing}"
            )
    if require_guarded:
        cyclic = unguarded_constructors(constraints)
        if cyclic:
            raise RestrictionViolation(
                "constraint set is not guarded (Definition 9): "
                f"self-dependent constructors {', '.join(cyclic)}"
            )
