"""Tree-automaton compilation of uniform constraint sets.

A *uniform* (Definition 6) and *guarded* (Definition 9) constraint set is
exactly a regular-type definition in the sense of the set-constraints
line of work (Bueno, Navas & Hermenegildo): every ground type term ``τ``
denotes a regular tree language, and the paper's membership question
``t ∈ M_C[[τ]]`` (Definition 4, via Definition 3's refutation existence)
is acceptance of ``t`` by a bottom-up tree automaton.  This module
compiles one :class:`TreeAutomaton` per constraint-set fingerprint and
turns the three hot ground queries into table walks over hash-consed
node ids:

* ``member(t, τ)`` — a deterministic bottom-up run.  NFA states are
  ground type terms; for each state ``σ`` the *F-closure* of ``σ``
  (everything reachable from ``σ`` by two-step constraint applications
  until a function symbol surfaces) contributes rules
  ``f(σ1,...,σn) → σ``.  The subset construction is performed lazily: a
  determinized state is a frozenset of NFA states, transitions are
  memoized in a table keyed by ``(functor, arity, child-state-tuple)``,
  and every interned term node caches its determinized state — so a
  re-query over shared subtrees is one dict probe per *new* node.
* ground ``subtype(σ, τ)`` — a product construction over pairs of
  interned nodes: the same AND-OR dag the deterministic engine walks
  (Theorems 1–2), but memoized in a process-lifetime pair table, with
  every pair whose right side is constructor-free delegated to the
  membership run above.
* the ground fast path of ``match`` — Definition 13 restricted to ground
  arguments collapses to three-valued logic (a typing is necessarily
  empty), memoized per ``(τ, t)`` pair.  ``Matcher`` and the Section 7
  :class:`~repro.core.constraint_match.ConstraintMatcher` disagree on
  clause 3's evaluation order (fail-dominates vs first-non-typing-wins),
  so each keeps its own table.

Verdicts are *identical* to the deterministic engine's — the automaton
is a cache/compilation layer, never a semantics change; the naive SLD
prover remains the differential oracle (``tests/core/test_automata.py``).

Scope and fallback
------------------

Compilation refuses non-uniform or unguarded sets (``automaton_for``
returns ``None`` and callers keep the compiled-template expansion path).
Registration of query roots is budgeted: pathological types whose state
closure explodes (possible even for guarded sets, e.g.
``t(A) >= f(t(g(A)))``) and types mentioning frozen constants (fresh per
``freeze``, they would churn the universe) are refused per root — the
product construction then decides those pairs by the plain AND-OR walk,
still memoized.  ``TLP_NO_AUTOMATA=1`` (or ``--no-automata`` on the
CLIs) disables the store entirely, restoring the seed path bit-for-bit.

Sharing and persistence
-----------------------

:data:`AUTOMATA` is the process-wide store, keyed by
``ConstraintSet.fingerprint()`` and version-fenced alongside the
:class:`~repro.core.shared_memo.SharedSubtypeMemo` — every per-file
engine of a batch/daemon/aserver worker attaches to the same compiled
automaton.  The compiled structure (states, rules, expansions) pickles;
the batch runner and the daemon spill it next to the persistent result
cache so fresh *processes* start compiled too.  Per-term caches are
deliberately not spilled: their keys are arbitrarily deep terms (pickle
recursion) and they rebuild in one walk.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..obs import METRICS
from ..terms.freeze import FROZEN_PREFIX
from ..terms.term import Struct, Term
from .declarations import ConstraintSet

__all__ = [
    "TreeAutomaton",
    "AutomataStore",
    "AUTOMATA",
    "DEFAULT_MAX_STATES",
    "DEFAULT_ROOT_STATE_BUDGET",
    "DEFAULT_MAX_CACHE_ENTRIES",
    "SPILL_FILENAME",
]

#: Global NFA-state cap per automaton; hitting it marks the automaton
#: saturated (further unregistered roots are refused, registered ones
#: keep answering from the tables).
DEFAULT_MAX_STATES = 8192

#: Per-root registration budget: one query type may add at most this many
#: new states, so a single pathological root cannot saturate the store.
DEFAULT_ROOT_STATE_BUDGET = 256

#: Soft cap for each per-term cache (node states, pair table, match
#: tables, expansion cache); an overgrown cache restarts cold.
DEFAULT_MAX_CACHE_ENTRIES = 1_000_000

SPILL_FILENAME = "automata.pickle"
SPILL_SCHEMA = "tlp-automata-spill/1"

#: Node-state sentinel: the term contains a type constructor somewhere,
#: so the membership run does not apply (product construction instead).
_IMPURE = -1

MatchVerdict = str  # "typing" | "fail" | "bottom"


class _BudgetExceeded(Exception):
    """Internal: root registration ran out of state budget."""


class _Generation:
    """One determinization epoch: flushed wholesale when the NFA grows.

    Lazily-computed determinized structures are only valid against the
    rule universe they were computed from; registering a new root grows
    the universe, so the automaton swaps in a fresh generation (walks
    already in flight keep their captured references and stay internally
    consistent — their answers concern previously registered states,
    which the old tables decide correctly).
    """

    __slots__ = ("node_states", "dstate_ids", "dsets", "transitions")

    def __init__(self) -> None:
        #: interned term node -> determinized state id (or _IMPURE).
        self.node_states: Dict[Struct, int] = {}
        #: frozenset of NFA states -> determinized state id.
        self.dstate_ids: Dict[FrozenSet[Struct], int] = {}
        #: determinized state id -> frozenset of NFA states.
        self.dsets: List[FrozenSet[Struct]] = []
        #: (functor, arity, child-state-ids) -> determinized state id.
        self.transitions: Dict[Tuple[str, int, Tuple[int, ...]], int] = {}


class _PairFrame:
    """One node of the product construction's explicit AND-OR stack."""

    __slots__ = ("key", "alternatives", "alt_index", "pair_index")

    def __init__(
        self,
        key: Tuple[Struct, Struct],
        alternatives: List[Tuple[Tuple[Term, Term], ...]],
    ) -> None:
        self.key = key
        self.alternatives = alternatives
        self.alt_index = 0
        self.pair_index = 0


class TreeAutomaton:
    """The compiled form of one uniform, guarded constraint set."""

    def __init__(
        self,
        constraints: ConstraintSet,
        max_states: int = DEFAULT_MAX_STATES,
        root_state_budget: int = DEFAULT_ROOT_STATE_BUDGET,
        max_cache_entries: int = DEFAULT_MAX_CACHE_ENTRIES,
    ) -> None:
        self.constraints = constraints
        self.symbols = constraints.symbols
        self.fingerprint = constraints.fingerprint()
        self.max_states = max_states
        self.root_state_budget = root_state_budget
        self.max_cache_entries = max_cache_entries
        self._lock = threading.RLock()
        #: NFA states: registered ground type terms.
        self._states: Set[Struct] = set()
        #: (functor, arity) -> [(child type tuple, target state), ...].
        self._rules: Dict[Tuple[str, int], List[Tuple[Tuple[Term, ...], Struct]]] = {}
        self._refused: Set[Struct] = set()
        self._saturated = False
        #: ground constructor-headed type -> its one-step expansions.
        self._expansions: Dict[Struct, Tuple[Struct, ...]] = {}
        self._gen = _Generation()
        #: product construction: (supertype, subtype) -> verdict.
        self._pair: Dict[Tuple[Struct, Struct], bool] = {}
        #: ground match tables (Definition 13 vs the Section 7 variant).
        self._match_memo: Dict[Tuple[Struct, Struct], MatchVerdict] = {}
        self._cmatch_memo: Dict[Tuple[Struct, Struct], MatchVerdict] = {}
        # traffic counters (stats()/obs gauges)
        self.holds_calls = 0
        self.member_decided = 0
        self.match_calls = 0
        self.refusals = 0
        self.flushes = 0
        self.evictions = 0
        # Seed the universe with every nullary constructor type (cheap,
        # and the common roots — nat, int, ... — start registered).
        for name, arity in self.symbols.type_constructors.items():
            if arity == 0:
                self._register(Struct(name, ()))

    # -- NFA construction ----------------------------------------------------

    def _expansions_of(self, type_term: Struct) -> Tuple[Struct, ...]:
        """Cached one-step expansions of a *ground* constructor type."""
        cached = self._expansions.get(type_term)
        if cached is None:
            cached = tuple(self.constraints.expansions(type_term))  # type: ignore[arg-type]
            if len(self._expansions) > self.max_cache_entries:
                self._expansions.clear()
                self.evictions += 1
            self._expansions[type_term] = cached
        return cached

    def _f_closure(self, state: Struct, budget: int) -> List[Struct]:
        """Function-symbol-headed members of ``state``'s expansion closure.

        BFS over ``→_C`` from ``state``; guardedness makes every chain
        finite (Theorem 3), so the closure of one root is finite — the
        budget only guards against genuinely huge closures.
        """
        is_tc = self.symbols.is_type_constructor
        if not is_tc(state.functor):
            return [state]
        members: List[Struct] = []
        seen: Set[Struct] = {state}
        frontier: List[Struct] = [state]
        while frontier:
            current = frontier.pop()
            for expansion in self._expansions_of(current):
                if is_tc(expansion.functor):
                    if expansion not in seen:
                        if len(seen) > budget:
                            raise _BudgetExceeded
                        seen.add(expansion)
                        frontier.append(expansion)
                else:
                    members.append(expansion)
        return members

    @staticmethod
    def _mentions_frozen(type_term: Struct) -> bool:
        """True iff a frozen constant occurs anywhere in ``type_term``.

        Frozen constants are fresh per ``freeze`` call, so registering
        types that mention them would grow (and flush) the universe on
        every ``more general`` comparison; such roots stay on the
        product-construction path instead.
        """
        stack: List[Term] = [type_term]
        while stack:
            node = stack.pop()
            if isinstance(node, Struct):
                if node.functor.startswith(FROZEN_PREFIX):
                    return True
                stack.extend(node.args)
        return False

    def _register(self, root: Struct) -> bool:
        """Ensure ``root`` (ground type term) is an NFA state.

        Registration is transactional: when the per-root budget or the
        global state cap is exceeded every state and rule added for this
        root is rolled back and the root is refused — a partially
        registered root would silently lose rules and turn into wrong
        (false-negative) acceptance answers.
        """
        if root in self._states:  # racy fast path; revalidated under lock
            return True
        with self._lock:
            if root in self._states:
                return True
            if root in self._refused or self._saturated:
                self.refusals += 1
                return False
            if self._mentions_frozen(root):
                self._refused.add(root)
                self.refusals += 1
                return False
            added_states: List[Struct] = []
            added_rules: List[Tuple[Tuple[str, int], Tuple[Tuple[Term, ...], Struct]]] = []
            budget = self.root_state_budget
            try:
                stack: List[Struct] = [root]
                while stack:
                    state = stack.pop()
                    if state in self._states:
                        continue
                    if (
                        len(added_states) >= budget
                        or len(self._states) >= self.max_states
                    ):
                        raise _BudgetExceeded
                    self._states.add(state)
                    added_states.append(state)
                    for member in self._f_closure(state, budget):
                        key = (member.functor, len(member.args))
                        entry = (member.args, state)
                        self._rules.setdefault(key, []).append(entry)
                        added_rules.append((key, entry))
                        for child in member.args:
                            assert isinstance(child, Struct)
                            if child not in self._states:
                                stack.append(child)
            except _BudgetExceeded:
                for key, entry in added_rules:
                    self._rules[key].remove(entry)
                for state in added_states:
                    self._states.discard(state)
                if len(self._states) >= self.max_states:
                    self._saturated = True
                self._refused.add(root)
                self.refusals += 1
                return False
            if added_states:
                # The determinized tables were computed against the old
                # universe; swap in a fresh generation (never mutate the
                # old one — in-flight walks hold references to it).
                self._gen = _Generation()
                self.flushes += 1
            return True

    # -- the determinized membership run -------------------------------------

    def _transition(
        self,
        gen: _Generation,
        key: Tuple[str, int, Tuple[int, ...]],
    ) -> int:
        """Compute (and memoize) one determinized transition."""
        with self._lock:
            cached = gen.transitions.get(key)
            if cached is not None:
                return cached
            functor, arity, child_ids = key
            dsets = gen.dsets
            result: Set[Struct] = set()
            for children, target in self._rules.get((functor, arity), ()):
                if target in result:
                    continue
                for child, child_id in zip(children, child_ids):
                    if child not in dsets[child_id]:
                        break
                else:
                    result.add(target)
            frozen = frozenset(result)
            state_id = gen.dstate_ids.get(frozen)
            if state_id is None:
                state_id = len(dsets)
                dsets.append(frozen)
                gen.dstate_ids[frozen] = state_id
            gen.transitions[key] = state_id
            return state_id

    def _node_state(self, gen: _Generation, term: Struct) -> int:
        """Bottom-up determinized run over ``term`` (iterative: terms can
        be tens of thousands of nodes deep).  Every interned node caches
        its state, so shared subtrees are one dict probe."""
        node_states = gen.node_states
        cached = node_states.get(term)
        if cached is not None:
            return cached
        is_tc = self.symbols.is_type_constructor
        transitions = gen.transitions
        stack: List[Struct] = [term]
        while stack:
            node = stack[-1]
            if node in node_states:
                stack.pop()
                continue
            if is_tc(node.functor):
                node_states[node] = _IMPURE
                stack.pop()
                continue
            args = node.args
            missing = [child for child in args if child not in node_states]
            if missing:
                stack.extend(missing)  # type: ignore[arg-type]
                continue
            stack.pop()
            child_ids = tuple(node_states[child] for child in args)  # type: ignore[index]
            if _IMPURE in child_ids:
                node_states[node] = _IMPURE
                continue
            key = (node.functor, len(args), child_ids)
            state_id = transitions.get(key)
            if state_id is None:
                state_id = self._transition(gen, key)
            node_states[node] = state_id
        return node_states[term]

    def _member(self, supertype: Struct, subtype: Struct) -> Optional[bool]:
        """``supertype ⪰ subtype`` by table walk, or ``None`` when out of
        scope (refused root, or the subtype mentions a type constructor)."""
        if not self._register(supertype):
            return None
        gen = self._gen  # after _register: the current generation
        state_id = self._node_state(gen, subtype)
        if state_id == _IMPURE:
            return None
        self.member_decided += 1
        return supertype in gen.dsets[state_id]

    # -- the product construction (ground subtype) ---------------------------

    def _alternatives(
        self, supertype: Struct, subtype: Struct
    ) -> List[Tuple[Tuple[Term, Term], ...]]:
        """Theorem 1/2 disjuncts for a ground pair — the engine's
        ``_ground_alternatives``, verbatim semantics."""
        alternatives: List[Tuple[Tuple[Term, Term], ...]] = []
        same_symbol = (
            supertype.functor == subtype.functor
            and len(supertype.args) == len(subtype.args)
        )
        if not self.symbols.is_type_constructor(supertype.functor):
            if same_symbol:
                alternatives.append(tuple(zip(supertype.args, subtype.args)))
            return alternatives
        if same_symbol:
            alternatives.append(tuple(zip(supertype.args, subtype.args)))
        for expansion in self._expansions_of(supertype):
            alternatives.append(((expansion, subtype),))
        return alternatives

    def _maybe_evict(self) -> None:
        """Entry-point cache-cap check (never mid-walk: walks rely on
        their tables staying populated until they return)."""
        gen = self._gen
        if len(gen.node_states) > self.max_cache_entries:
            with self._lock:
                if self._gen is gen:
                    self._gen = _Generation()
                    self.evictions += 1
        for table in (self._pair, self._match_memo, self._cmatch_memo):
            if len(table) > self.max_cache_entries:
                table.clear()
                self.evictions += 1

    def holds(self, supertype: Struct, subtype: Struct) -> bool:
        """Ground ``supertype ⪰_C subtype`` — identical to the engine's
        ``_holds_ground`` verdict, decided from the tables."""
        self.holds_calls += 1
        if supertype == subtype:
            return True
        self._maybe_evict()
        pair = self._pair
        root = (supertype, subtype)
        cached = pair.get(root)
        if cached is not None:
            return cached
        quick = self._member(supertype, subtype)
        if quick is not None:
            pair[root] = quick
            return quick
        stack = [_PairFrame(root, self._alternatives(supertype, subtype))]
        while stack:
            frame = stack[-1]
            if frame.alt_index >= len(frame.alternatives):
                pair[frame.key] = False
                stack.pop()
                continue
            alternative = frame.alternatives[frame.alt_index]
            if frame.pair_index >= len(alternative):
                pair[frame.key] = True
                stack.pop()
                continue
            child_sup, child_sub = alternative[frame.pair_index]
            if child_sup == child_sub:
                frame.pair_index += 1
                continue
            assert isinstance(child_sup, Struct) and isinstance(child_sub, Struct)
            child_key = (child_sup, child_sub)
            value = pair.get(child_key)
            if value is None:
                value = self._member(child_sup, child_sub)
                if value is not None:
                    pair[child_key] = value
            if value is None:
                stack.append(
                    _PairFrame(child_key, self._alternatives(child_sup, child_sub))
                )
                continue
            if value:
                frame.pair_index += 1
            else:
                frame.alt_index += 1
                frame.pair_index = 0
        return pair[root]

    # -- the ground match walk ------------------------------------------------

    def match_ground(
        self, type_term: Struct, term: Struct, constraint_mode: bool = False
    ) -> MatchVerdict:
        """Definition 13 restricted to ground ``τ`` and ``t``.

        With both sides ground clause 1 (variable term) and clause 2
        (variable type) never fire, every typing is empty, and the result
        collapses to three-valued logic.  ``constraint_mode`` selects the
        Section 7 matcher's clause-3 evaluation order: it short-circuits
        on the *first* non-typing component (so ⊥ before a later fail
        wins), where Definition 13's matcher lets fail dominate ⊥.
        """
        self.match_calls += 1
        self._maybe_evict()
        memo = self._cmatch_memo if constraint_mode else self._match_memo
        return self._match_walk(type_term, term, memo, constraint_mode)

    def _match_walk(
        self,
        type_term: Struct,
        term: Struct,
        memo: Dict[Tuple[Struct, Struct], MatchVerdict],
        constraint_mode: bool,
    ) -> MatchVerdict:
        key = (type_term, term)
        verdict = memo.get(key)
        if verdict is not None:
            return verdict
        if not self.symbols.is_type_constructor(type_term.functor):
            # Clause 3: function symbol at the top of the type.
            if (
                type_term.functor != term.functor
                or len(type_term.args) != len(term.args)
            ):
                verdict = "fail"
            elif constraint_mode:
                verdict = "typing"
                for tau, sub_term in zip(type_term.args, term.args):
                    inner = self._match_walk(tau, sub_term, memo, constraint_mode)  # type: ignore[arg-type]
                    if inner != "typing":
                        verdict = inner
                        break
            else:
                verdict = "typing"
                saw_bottom = False
                for tau, sub_term in zip(type_term.args, term.args):
                    inner = self._match_walk(tau, sub_term, memo, constraint_mode)  # type: ignore[arg-type]
                    if inner == "fail":
                        verdict = "fail"
                        break
                    if inner == "bottom":
                        saw_bottom = True
                if verdict == "typing" and saw_bottom:
                    verdict = "bottom"
        else:
            # Clause 4: outcome *set* over the one-step expansions.  With
            # ground arguments the distinct outcomes are ⊆ {typing, fail,
            # ⊥}: any ⊥ forecloses a unique non-fail result, else a
            # typing wins, else all-fail is fail, and no expansions at
            # all is the definition's else-branch ⊥.
            saw_typing = saw_fail = saw_bottom = False
            for expansion in self._expansions_of(type_term):
                inner = self._match_walk(expansion, term, memo, constraint_mode)
                if inner == "bottom":
                    saw_bottom = True
                    break
                if inner == "typing":
                    saw_typing = True
                else:
                    saw_fail = True
            if saw_bottom:
                verdict = "bottom"
            elif saw_typing:
                verdict = "typing"
            elif saw_fail:
                verdict = "fail"
            else:
                verdict = "bottom"
        memo[key] = verdict
        return verdict

    # -- introspection / persistence ------------------------------------------

    def stats(self) -> Dict[str, int]:
        gen = self._gen
        return {
            "states": len(self._states),
            "rules": sum(len(rows) for rows in self._rules.values()),
            "dstates": len(gen.dsets),
            "transitions": len(gen.transitions),
            "node_entries": len(gen.node_states),
            "pair_entries": len(self._pair),
            "match_entries": len(self._match_memo) + len(self._cmatch_memo),
            "holds_calls": self.holds_calls,
            "member_decided": self.member_decided,
            "match_calls": self.match_calls,
            "refusals": self.refusals,
            "flushes": self.flushes,
            "evictions": self.evictions,
            "saturated": int(self._saturated),
        }

    def __getstate__(self) -> Dict[str, object]:
        # Spill the compiled structure only.  The per-term caches key on
        # arbitrarily deep terms (recursive pickling) and rebuild in one
        # walk; the lock is process-local.
        with self._lock:
            return {
                "constraints": self.constraints,
                "max_states": self.max_states,
                "root_state_budget": self.root_state_budget,
                "max_cache_entries": self.max_cache_entries,
                "states": set(self._states),
                "rules": {key: list(rows) for key, rows in self._rules.items()},
                "refused": set(self._refused),
                "saturated": self._saturated,
                "expansions": dict(self._expansions),
            }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.constraints = state["constraints"]  # type: ignore[assignment]
        self.symbols = self.constraints.symbols
        self.fingerprint = self.constraints.fingerprint()
        self.max_states = state["max_states"]  # type: ignore[assignment]
        self.root_state_budget = state["root_state_budget"]  # type: ignore[assignment]
        self.max_cache_entries = state["max_cache_entries"]  # type: ignore[assignment]
        self._lock = threading.RLock()
        self._states = state["states"]  # type: ignore[assignment]
        self._rules = state["rules"]  # type: ignore[assignment]
        self._refused = state["refused"]  # type: ignore[assignment]
        self._saturated = state["saturated"]  # type: ignore[assignment]
        self._expansions = state["expansions"]  # type: ignore[assignment]
        self._gen = _Generation()
        self._pair = {}
        self._match_memo = {}
        self._cmatch_memo = {}
        self.holds_calls = 0
        self.member_decided = 0
        self.match_calls = 0
        self.refusals = 0
        self.flushes = 0
        self.evictions = 0


class AutomataStore:
    """Process-wide compiled automata, keyed by constraint-set fingerprint.

    Mirrors the :class:`~repro.core.shared_memo.SharedSubtypeMemo`
    discipline: version fencing via :meth:`ensure_version`, an
    ``enabled`` escape hatch (``TLP_NO_AUTOMATA`` / ``--no-automata``),
    and rejection caching — a non-uniform or unguarded fingerprint is
    remembered as ``None`` so repeated attachment attempts stay O(1).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._automata: Dict[str, Optional[TreeAutomaton]] = {}
        self._version: Optional[str] = None
        self.enabled = os.environ.get("TLP_NO_AUTOMATA", "") == ""
        self.compiles = 0
        self.rejections = 0
        self.attachments = 0
        self.invalidations = 0
        self.spills = 0
        self.loads = 0

    def set_enabled(self, on: bool) -> bool:
        """Enable/disable the store; returns the previous setting.

        Disabling affects future :meth:`automaton_for` calls only —
        engines already holding an automaton keep it (compilation is a
        performance property, never a semantic one)."""
        previous = self.enabled
        self.enabled = bool(on)
        return previous

    def ensure_version(self, tag: str) -> None:
        """Fence the store on ``tag``; a changed tag drops every automaton."""
        with self._lock:
            if self._version != tag:
                if self._automata:
                    self.invalidations += 1
                self._automata.clear()
                self._version = tag

    def automaton_for(self, constraints: ConstraintSet) -> Optional[TreeAutomaton]:
        """The compiled automaton for ``constraints``' declaration scope.

        ``None`` when the store is disabled or the set is non-uniform /
        unguarded (callers fall back to the template-expansion path)."""
        if not self.enabled:
            return None
        key = constraints.fingerprint()
        with self._lock:
            if key in self._automata:
                automaton = self._automata[key]
                if automaton is not None:
                    self.attachments += 1
                return automaton
        automaton = self._compile(constraints)
        with self._lock:
            if key not in self._automata:
                self._automata[key] = automaton
                if automaton is None:
                    self.rejections += 1
                else:
                    self.compiles += 1
            automaton = self._automata[key]
            if automaton is not None:
                self.attachments += 1
            return automaton

    @staticmethod
    def _compile(constraints: ConstraintSet) -> Optional[TreeAutomaton]:
        from .restrictions import is_guarded, is_uniform_polymorphic

        start = time.perf_counter()
        if not is_uniform_polymorphic(constraints) or not is_guarded(constraints):
            return None
        automaton = TreeAutomaton(constraints)
        if METRICS.enabled:
            METRICS.inc("subtype.automaton.compiles")
            METRICS.observe("subtype.automaton.compile", time.perf_counter() - start)
        return automaton

    def clear(self) -> None:
        """Drop every automaton and zero the traffic counters (tests)."""
        with self._lock:
            self._automata.clear()
            self.compiles = 0
            self.rejections = 0
            self.attachments = 0
            self.invalidations = 0
            self.spills = 0
            self.loads = 0

    def stats(self) -> Dict[str, int]:
        """A snapshot: scope count, aggregate table sizes, traffic."""
        with self._lock:
            automata = [a for a in self._automata.values() if a is not None]
            per = [a.stats() for a in automata]
            return {
                "enabled": int(self.enabled),
                "scopes": len(automata),
                "rejected_scopes": sum(
                    1 for a in self._automata.values() if a is None
                ),
                "states": sum(s["states"] for s in per),
                "rules": sum(s["rules"] for s in per),
                "dstates": sum(s["dstates"] for s in per),
                "transitions": sum(s["transitions"] for s in per),
                "cache_entries": sum(
                    s["node_entries"] + s["pair_entries"] + s["match_entries"]
                    for s in per
                ),
                "holds_calls": sum(s["holds_calls"] for s in per),
                "match_calls": sum(s["match_calls"] for s in per),
                "refusals": sum(s["refusals"] for s in per),
                "compiles": self.compiles,
                "rejections": self.rejections,
                "attachments": self.attachments,
                "invalidations": self.invalidations,
                "spills": self.spills,
                "loads": self.loads,
            }

    # -- persistence alongside the result cache -------------------------------

    def save_spill(self, directory: "os.PathLike[str] | str") -> Optional[str]:
        """Pickle every compiled automaton under ``directory``.

        Best-effort and atomic (tmp file + rename): a failed spill never
        corrupts an existing one and never fails the surrounding batch.
        Returns the spill path, or ``None`` when nothing was written."""
        if not self.enabled:
            return None
        with self._lock:
            compiled = {
                key: automaton
                for key, automaton in self._automata.items()
                if automaton is not None
            }
            version = self._version
        if not compiled:
            return None
        path = os.path.join(str(directory), SPILL_FILENAME)
        tmp = f"{path}.tmp{os.getpid()}"
        payload = {"schema": SPILL_SCHEMA, "version": version, "automata": compiled}
        try:
            os.makedirs(str(directory), exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError):
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return None
        self.spills += 1
        return path

    def load_spill(self, directory: "os.PathLike[str] | str") -> int:
        """Adopt automata spilled by an earlier process; returns the count.

        The spill must carry the store's current version tag (callers
        :meth:`ensure_version` first) — a stale spill is ignored, exactly
        as the result cache ignores entries from an older checker.
        Corrupt files are ignored too: the spill is a warm-start, never a
        correctness dependency."""
        if not self.enabled:
            return 0
        path = os.path.join(str(directory), SPILL_FILENAME)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, Exception):  # noqa: BLE001 — corrupt spill = cold start
            return 0
        if not isinstance(payload, dict) or payload.get("schema") != SPILL_SCHEMA:
            return 0
        with self._lock:
            if payload.get("version") != self._version:
                return 0
            loaded = 0
            for key, automaton in payload.get("automata", {}).items():
                if key not in self._automata and isinstance(automaton, TreeAutomaton):
                    self._automata[key] = automaton
                    loaded += 1
            self.loads += loaded
        return loaded


#: The process-wide store used by the engine, matchers, and services.
AUTOMATA = AutomataStore()
