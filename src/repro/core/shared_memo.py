"""A process-wide subtype memo shared across engines.

The batch service builds one :class:`~repro.core.subtype.SubtypeEngine`
per checked file, and corpus files overwhelmingly share one declaration
prelude — so every per-file engine re-derives the same ``τ ⪰_C τ′``
verdicts from a cold memo.  :class:`SharedSubtypeMemo` fixes that: it
hands engines a memo *table* keyed by the declaration scope, so file N's
engine starts with every verdict files 1..N-1 already derived.

Keying and safety
-----------------

* Tables are keyed by ``ConstraintSet.fingerprint()`` — a digest of both
  symbol alphabets and every constraint.  Engines over different
  declaration scopes can never observe each other's entries.
* The whole store is invalidated when the schema version changes:
  :meth:`ensure_version` is called by the batch runner with the result
  cache's ``CHECKER_VERSION`` (and anything else that should fence the
  memo, e.g. a lint ruleset fingerprint), so bumping the checker version
  drops stale verdicts exactly as it drops stale cached results.
* Entries are plain ``(supertype, subtype) -> bool`` verdicts — facts
  about ``C``, independent of which engine derived them, so cross-engine
  reuse cannot change any answer (the differential tests in
  ``tests/core/test_shared_memo.py`` pin this).
* Thread pools share the process, hence the memo.  Engines read and
  write the table directly (no lock on the hot path); CPython dict
  operations are atomic, and because any engine would write the *same*
  verdict under a key, a lost race costs one redundant derivation, never
  a wrong answer.  Table creation/lookup is locked.
* Each table has a soft entry cap, checked when an engine attaches: a
  table that outgrew the cap is dropped and restarted cold (counted in
  ``evictions``), bounding daemon memory.

Escape hatch: ``TLP_NO_SHARED_MEMO=1`` in the environment (or the
``--no-shared-memo`` flag on ``tlp-check``/``tlp-batch``) disables
sharing — ``table_for`` returns ``None`` and every engine keeps its own
cold memo, which is the seed behaviour.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional, Tuple

from ..terms.term import Term
from .declarations import ConstraintSet

__all__ = ["SharedSubtypeMemo", "SHARED_MEMO"]

#: Soft per-scope entry cap (see module docstring).  Generous: entries are
#: small (two interned term references and a bool), and real corpora share
#: a handful of declaration scopes.
DEFAULT_MAX_ENTRIES_PER_SCOPE = 1_000_000


class SharedSubtypeMemo:
    """The process-wide store of per-declaration-scope memo tables."""

    def __init__(
        self, max_entries_per_scope: int = DEFAULT_MAX_ENTRIES_PER_SCOPE
    ) -> None:
        self._lock = threading.Lock()
        self._tables: Dict[str, Dict[Tuple[Term, Term], bool]] = {}
        self._version: Optional[str] = None
        self.max_entries_per_scope = max_entries_per_scope
        self.enabled = os.environ.get("TLP_NO_SHARED_MEMO", "") == ""
        self.attachments = 0
        self.evictions = 0
        self.invalidations = 0

    def set_enabled(self, on: bool) -> bool:
        """Enable/disable sharing; returns the previous setting.

        Disabling affects future :meth:`table_for` calls only — engines
        already holding a table keep it (their entries stay correct;
        sharing is a performance property, not a semantic one).
        """
        previous = self.enabled
        self.enabled = bool(on)
        return previous

    def ensure_version(self, tag: str) -> None:
        """Fence the store on ``tag``; a changed tag drops every table.

        The batch runner passes the result cache's ``CHECKER_VERSION``
        combined with whatever rulesets feed verdicts, mirroring the
        persistent cache's invalidation discipline.

        The compiled-automata store rides the same fence: every caller
        that versions the memo implicitly versions the automata, so a
        checker upgrade can never serve pre-upgrade compiled tables.
        """
        with self._lock:
            if self._version != tag:
                if self._tables:
                    self.invalidations += 1
                self._tables.clear()
                self._version = tag
        from .automata import AUTOMATA

        AUTOMATA.ensure_version(tag)

    def table_for(
        self, constraints: ConstraintSet
    ) -> Optional[Dict[Tuple[Term, Term], bool]]:
        """The shared memo table for ``constraints``' declaration scope.

        Returns ``None`` when sharing is disabled (the engine then keeps
        its own private memo).  The table is returned by reference — the
        engine plugs it in as its ``_memo`` and reads/writes it directly.
        """
        if not self.enabled:
            return None
        key = constraints.fingerprint()
        with self._lock:
            table = self._tables.get(key)
            if table is not None and len(table) > self.max_entries_per_scope:
                self.evictions += 1
                table = None
            if table is None:
                table = {}
                self._tables[key] = table
            self.attachments += 1
            return table

    def clear(self) -> None:
        """Drop every table and zero the traffic counters (tests/daemons)."""
        with self._lock:
            self._tables.clear()
            self.attachments = 0
            self.evictions = 0
            self.invalidations = 0

    def stats(self) -> Dict[str, int]:
        """A snapshot: scope count, total entries, attach/evict traffic."""
        with self._lock:
            return {
                "enabled": int(self.enabled),
                "scopes": len(self._tables),
                "entries": sum(len(t) for t in self._tables.values()),
                "attachments": self.attachments,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }


#: The singleton used by the checker frontend and the batch service.
SHARED_MEMO = SharedSubtypeMemo()
