"""Input/output modes — the Section 7 extension, after [DH88].

The concluding remarks observe that subtypes and logic programming mix
uneasily: with ``PRED p(nat)`` and ``PRED q(int)``, the query
``:- p(X), q(X).`` would be fine when information flows sub→supertype
(``p`` binds ``X`` to a ``nat`` which ``q`` accepts) but unsound the
other way (``q`` binds ``X`` to ``pred(0)`` which ``p`` must never see).
One proposed solution is mode declarations ensuring information flows in
the appropriate direction::

    PRED p(OUT nat).
    PRED q(IN int).

This module is a faithful *reconstruction* of that sketch (the paper only
gives the example above; [DH88] is the reference design).  The rules:

* Goals are processed left to right (the standard computation rule).
* An ``OUT`` argument position of a body goal *produces* its variables at
  the position's declared type; an ``IN`` position *consumes* them.
* In a clause, the head's ``IN`` positions produce (the caller supplies
  well-typed inputs) and its ``OUT`` positions consume at the end of the
  body (the clause must deliver them).
* A consumer occurrence of ``x`` at declared type ``τ`` is direction-safe
  iff ``x`` was already produced and **every** production type ``σ`` of
  ``x`` satisfies ``τ ⪰_C σ`` — information only ever flows from a
  subtype to a supertype.

The check is per-variable and per-argument-position; non-variable
argument terms are treated as produced/consumed atomically using the
clause's typing for their variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..lp.clause import Clause, Program, Query
from ..terms.pretty import pretty
from ..terms.term import Struct, Term, Var, variables_of
from .declarations import ConstraintSet, DeclarationError
from .predicate_types import PredicateTypeEnv
from .subtype import SubtypeEngine

__all__ = [
    "IN",
    "OUT",
    "FLOW",
    "UNPRODUCED",
    "ModeEnv",
    "ModeViolation",
    "ModeChecker",
    "ModeReport",
]

IN = "IN"
OUT = "OUT"

_Indicator = Tuple[str, int]


class ModeEnv:
    """Mode declarations ``MODE p(IN, ..., OUT).`` — one per predicate."""

    def __init__(self) -> None:
        self._modes: Dict[_Indicator, Tuple[str, ...]] = {}

    def declare(self, name: str, modes: Sequence[str]) -> None:
        for mode in modes:
            if mode not in (IN, OUT):
                raise DeclarationError(f"mode must be IN or OUT, got {mode}")
        indicator = (name, len(modes))
        existing = self._modes.get(indicator)
        if existing is not None and existing != tuple(modes):
            raise DeclarationError(f"conflicting mode declarations for {name}/{len(modes)}")
        self._modes[indicator] = tuple(modes)

    def modes_of(self, atom: Struct) -> Optional[Tuple[str, ...]]:
        """Declared modes for ``atom``'s predicate, or ``None``."""
        return self._modes.get(atom.indicator)

    def items(self) -> List[Tuple[_Indicator, Tuple[str, ...]]]:
        """All declarations as ``((name, arity), modes)`` pairs."""
        return list(self._modes.items())

    def __len__(self) -> int:
        return len(self._modes)


#: :attr:`ModeViolation.kind` values.
FLOW = "flow"  # produced at a type that does not flow into the consumer
UNPRODUCED = "unproduced"  # consumed before any production


@dataclass
class ModeViolation:
    """One direction-safety failure.

    Beyond the human-readable ``reason``, the violation carries the
    structured facts tooling needs to *repair* the program: the failure
    ``kind``, the production type ``produced_type`` / consumer type
    ``consumer_type`` of a :data:`FLOW` failure (the filter predicate to
    insert is ``produced_type``→``consumer_type``), and whether the
    consuming occurrence is the clause head's ``OUT`` epilogue
    (``at_head``) or a body goal.  ``TLP502``'s machine-applicable
    fix-its are generated from exactly these fields.
    """

    atom: Struct
    position: int  # 0-based argument position
    variable: Var
    reason: str
    kind: str = FLOW  # FLOW | UNPRODUCED
    produced_type: Optional[Term] = None  # σ of a FLOW failure
    consumer_type: Optional[Term] = None  # τ of a FLOW failure
    at_head: bool = False  # consumer is the head's OUT epilogue

    def __str__(self) -> str:
        return (
            f"{pretty(self.atom)} argument {self.position + 1}: "
            f"variable {self.variable}: {self.reason}"
        )


@dataclass
class ModeReport:
    """All violations found in one clause/query (empty means mode-correct)."""

    violations: List[ModeViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok


class ModeChecker:
    """Direction-safety of clauses and queries under mode declarations.

    Predicates without a mode declaration default to all-``OUT`` on body
    occurrences and all-``IN`` on head occurrences — the permissive
    reading that reproduces the unmoded system's behaviour.
    """

    def __init__(
        self,
        constraints: ConstraintSet,
        predicate_types: PredicateTypeEnv,
        modes: ModeEnv,
        engine: Optional[SubtypeEngine] = None,
    ) -> None:
        self.constraints = constraints
        self.predicate_types = predicate_types
        self.modes = modes
        self.engine = engine or SubtypeEngine(constraints)

    # -- public API ---------------------------------------------------------

    def check_query(self, query: Query) -> ModeReport:
        """Direction-safety of a query's left-to-right execution."""
        report = ModeReport()
        produced: Dict[Var, List[Term]] = {}
        for goal in query.goals:
            self._process_goal(goal, produced, report)
        return report

    def check_clause(self, clause: Clause) -> ModeReport:
        """Direction-safety of one clause: head INs produce, body runs
        left-to-right, head OUTs consume at the end."""
        report = ModeReport()
        produced: Dict[Var, List[Term]] = {}
        head_modes = self.modes.modes_of(clause.head)
        declared = self.predicate_types.type_of(clause.head)
        # Head IN positions produce at their declared types.
        for position, (arg, arg_type) in enumerate(zip(clause.head.args, declared.args)):
            mode = head_modes[position] if head_modes else IN
            if mode == IN:
                for var in variables_of(arg):
                    produced.setdefault(var, []).append(arg_type)
        for goal in clause.body:
            self._process_goal(goal, produced, report)
        # Head OUT positions consume at the end.
        for position, (arg, arg_type) in enumerate(zip(clause.head.args, declared.args)):
            mode = head_modes[position] if head_modes else IN
            if mode == OUT:
                self._consume(
                    clause.head, position, arg, arg_type, produced, report,
                    at_head=True,
                )
        return report

    def check_program(self, program: Program) -> List[Tuple[Clause, ModeReport]]:
        """Check every clause; returns (clause, report) pairs."""
        return [(clause, self.check_clause(clause)) for clause in program]

    # -- the dataflow pass -----------------------------------------------------

    def _process_goal(
        self,
        goal: Struct,
        produced: Dict[Var, List[Term]],
        report: ModeReport,
    ) -> None:
        goal_modes = self.modes.modes_of(goal)
        declared = self.predicate_types.type_of(goal)
        # Consumers first: the goal reads its IN arguments before binding
        # its OUT arguments.
        for position, (arg, arg_type) in enumerate(zip(goal.args, declared.args)):
            mode = goal_modes[position] if goal_modes else OUT
            if mode == IN:
                self._consume(goal, position, arg, arg_type, produced, report)
        for position, (arg, arg_type) in enumerate(zip(goal.args, declared.args)):
            mode = goal_modes[position] if goal_modes else OUT
            if mode == OUT:
                for var in variables_of(arg):
                    produced.setdefault(var, []).append(arg_type)

    def _consume(
        self,
        atom: Struct,
        position: int,
        arg: Term,
        arg_type: Term,
        produced: Dict[Var, List[Term]],
        report: ModeReport,
        at_head: bool = False,
    ) -> None:
        for var in variables_of(arg):
            productions = produced.get(var)
            if not productions:
                report.violations.append(
                    ModeViolation(
                        atom,
                        position,
                        var,
                        "consumed in an IN position before being produced",
                        kind=UNPRODUCED,
                        consumer_type=arg_type,
                        at_head=at_head,
                    )
                )
                continue
            for sigma in productions:
                if not self.engine.more_general(arg_type, sigma):
                    report.violations.append(
                        ModeViolation(
                            atom,
                            position,
                            var,
                            f"produced at type {pretty(sigma)}, which does not "
                            f"flow into consumer type {pretty(arg_type)}",
                            kind=FLOW,
                            produced_type=sigma,
                            consumer_type=arg_type,
                            at_head=at_head,
                        )
                    )
