"""Variable typings (Definitions 10–12).

A *typing* for a term ``t`` under a type ``τ`` is a substitution mapping
each variable of ``t`` to a type such that ``τ ⪰_C t̄θ`` — i.e. freezing
the typed term still leaves it below ``τ`` (possibly after instantiating
``τ``'s own variables).  The typing is *respectful* when even the frozen
``τ̄`` is above ``t̄θ`` (no instantiation of ``τ`` needed), where the bar
freezes variables consistently across both terms.

The paper's Section 4 examples, which the tests replay verbatim:

* ``{X ↦ list(A)}``, ``{X ↦ nelist(A)}``, ``{X ↦ list(int)}`` and
  ``{X ↦ list(B)}`` are all typings for ``X`` under ``list(A)``; only the
  first two are respectful.
* every substitution over ``{X}`` is a typing for ``f(X)`` under a type
  variable ``A``, but none is respectful.

Definition 11 lifts "more general" (Definition 5) pointwise to typings,
and Definition 12 defines *agreement*: typings agree when they give
syntactically equal types to common variables (type equivalence is
name-based, hence syntactic).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable

from ..terms.freeze import freeze, freeze_many
from ..terms.substitution import Substitution
from ..terms.term import Term, Var, variables_of
from .subtype import SubtypeEngine

__all__ = [
    "is_typing",
    "is_respectful_typing",
    "more_general_typing",
    "in_agreement",
    "merge_typings",
]


def is_typing(
    engine: SubtypeEngine, type_term: Term, term: Term, theta: Substitution
) -> bool:
    """Definition 10: ``θ`` types ``t`` under ``τ`` iff ``τ ⪰_C t̄θ``.

    ``θ`` must cover every variable of ``t`` (it "maps each variable in t
    to a type"); a partial substitution is not a typing.
    """
    if not variables_of(term) <= theta.domain:
        return False
    return engine.holds(type_term, freeze(theta.apply(term)))


def is_respectful_typing(
    engine: SubtypeEngine, type_term: Term, term: Term, theta: Substitution
) -> bool:
    """Definition 10 (second half): respectful iff ``τ̄ ⪰_C t̄θ``.

    The two bars share one variable → constant mapping: a type variable
    occurring both in ``τ`` and in ``tθ`` freezes to the same constant
    (otherwise ``{X ↦ list(A)}`` would not be respectful for ``X`` under
    ``list(A)``, contradicting the paper's own example).
    """
    if not variables_of(term) <= theta.domain:
        return False
    frozen_tau, frozen_t_theta = freeze_many([type_term, theta.apply(term)])
    return engine.holds(frozen_tau, frozen_t_theta)


def more_general_typing(
    engine: SubtypeEngine, general: Substitution, specific: Substitution, term: Term
) -> bool:
    """Definition 11: ``θ1`` is more general than ``θ2`` for ``t`` iff for
    all ``x ∈ var(t)``, ``xθ1`` is more general than ``xθ2`` (Definition 5,
    checked per variable)."""
    for var in variables_of(term):
        if not engine.more_general(general.apply(var), specific.apply(var)):
            return False
    return True


def in_agreement(typings: Iterable[Substitution]) -> bool:
    """Definition 12: pairwise agreement — syntactically equal types for
    common variables."""
    typings = list(typings)
    for first, second in combinations(typings, 2):
        for var in first.domain & second.domain:
            if first[var] != second[var]:
                return False
    return True


def merge_typings(typings: Iterable[Substitution]) -> Substitution:
    """``∪S`` for a set of typings in agreement (Definition 13, clause 3)."""
    merged: Dict[Var, Term] = {}
    for typing in typings:
        for var, value in typing.items():
            existing = merged.get(var)
            if existing is not None and existing != value:
                raise ValueError(
                    f"cannot merge typings: {var} mapped to both {existing} and {value}"
                )
            merged[var] = value
    return Substitution(merged)
