"""Typed execution: Theorem 6 made observable.

Theorem 6 (Consistency): *every resolvent of a well-typed negative clause
and a well-typed program clause is well-typed* — hence, by induction,
every resolvent produced during the execution of a well-typed program.
The corollary: every computed answer substitution is type consistent.

:class:`TypedInterpreter` runs a query with the stock SLD engine while
re-checking the well-typedness of **every** resolvent through the
Definition 16 checker.  On a well-typed program/query the expected number
of violations is exactly zero; the experiment harness (E7) asserts this
over the canonical and randomly generated workloads and measures the
cost of the per-step re-checking against plain execution.

Because the checker is (deliberately, like the paper's ``match``)
conservative in its ``⊥`` corners, a re-check could in principle reject a
genuinely well-typed resolvent; violations therefore record the checker's
reason so the experiment can distinguish "type inconsistency" from
"checker incompleteness".  On the paper's own examples neither occurs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..lp.clause import Program, Query
from ..lp.database import Database
from ..lp.resolution import SLDEngine
from ..obs import METRICS, TRACER, ResolventCheckEvent
from ..terms.pretty import pretty
from ..terms.substitution import Substitution
from ..terms.term import Struct
from .welltyped import ClauseReport, WellTypedChecker

__all__ = ["TypedExecutionError", "TypedExecutionResult", "TypedInterpreter"]


class TypedExecutionError(Exception):
    """Raised when asked to run a program/query that is not well-typed."""

    def __init__(self, message: str, report: Optional[ClauseReport] = None) -> None:
        super().__init__(message)
        self.report = report


@dataclass
class TypedExecutionResult:
    """Answers plus the consistency evidence collected along the way."""

    answers: List[Substitution] = field(default_factory=list)
    resolvents_checked: int = 0
    violations: List[Tuple[Tuple[Struct, ...], str]] = field(default_factory=list)
    answers_checked: int = 0
    answer_violations: List[Tuple[Substitution, str]] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        """True iff no resolvent or answer failed its well-typedness check."""
        return not self.violations and not self.answer_violations


class TypedInterpreter:
    """SLD execution with per-resolvent Definition 16 re-checking."""

    def __init__(
        self,
        checker: WellTypedChecker,
        program: Program,
        check_program: bool = True,
        first_arg_indexing: bool = True,
    ) -> None:
        self.checker = checker
        self.program = program
        if check_program:
            program_report = checker.check_program(program)
            if not program_report.well_typed:
                clause, report = program_report.failures()[0]
                raise TypedExecutionError(
                    f"program clause is not well-typed: {clause} — {report.reason}",
                    report,
                )
        self.database = Database(program, first_arg_indexing=first_arg_indexing)

    def run(
        self,
        query: Query,
        max_answers: Optional[int] = None,
        depth_limit: Optional[int] = None,
        check_resolvents: bool = True,
        check_answers: bool = True,
        check_query: bool = True,
    ) -> TypedExecutionResult:
        """Execute ``query``; collect answers and consistency evidence."""
        if check_query:
            query_report = self.checker.check_query(query)
            if not query_report.well_typed:
                raise TypedExecutionError(
                    f"query is not well-typed: {query} — {query_report.reason}",
                    query_report,
                )
        result = TypedExecutionResult()

        def on_resolvent(goals: Tuple[Struct, ...]) -> None:
            result.resolvents_checked += 1
            if METRICS.enabled:
                METRICS.inc("typed.resolvents_checked")
            if not goals:
                return  # the empty clause is trivially well-typed
            report = self.checker.check_resolvent(goals)
            if not report.well_typed:
                result.violations.append((goals, report.reason or "unknown"))
                if METRICS.enabled:
                    METRICS.inc("typed.violations")
            if TRACER.enabled:
                TRACER.point(
                    ResolventCheckEvent,
                    size=len(goals),
                    well_typed=report.well_typed,
                    reason=report.reason,
                )

        engine = SLDEngine(
            self.database,
            on_resolvent=on_resolvent if check_resolvents else None,
        )
        if METRICS.enabled:
            METRICS.inc("typed.queries")
        detail = (
            ", ".join(pretty(goal) for goal in query.goals)
            if TRACER.enabled
            else ""
        )
        with METRICS.time("typed.query"), TRACER.span("typed_query", detail):
            for answer in engine.solve(query.goals, depth_limit=depth_limit):
                result.answers.append(answer)
                if check_answers:
                    result.answers_checked += 1
                    instantiated = tuple(answer.apply(goal) for goal in query.goals)
                    report = self.checker.check_resolvent(instantiated)  # type: ignore[arg-type]
                    if not report.well_typed:
                        result.answer_violations.append(
                            (answer, report.reason or "unknown")
                        )
                        if METRICS.enabled:
                            METRICS.inc("typed.answer_violations")
                if max_answers is not None and len(result.answers) >= max_answers:
                    break
        if METRICS.enabled:
            METRICS.inc("typed.answers", len(result.answers))
            METRICS.gauge_max("typed.max_resolvents_per_query", result.resolvents_checked)
        return result
