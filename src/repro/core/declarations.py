"""Type declarations: symbol tables, subtype constraints, constraint sets.

This module implements Section 2 of the paper.

* A :class:`SymbolTable` holds the disjoint symbol alphabets ``F``
  (function symbols) and ``T`` (type constructor symbols), each with a
  fixed arity.  Predicate symbols live in ``repro.core.predicate_types``.
* A :class:`SubtypeConstraint` is ``c(τ1,...,τn) >= τ`` with the
  Definition 2 side condition ``var(τ) ⊆ var(c(τ1,...,τn))``.
* A :class:`ConstraintSet` is the paper's ``C``: the declared constraints
  plus (by default) the predefined polymorphic union type ``+`` with its
  two constraints ``A+B >= A.`` and ``A+B >= B.``

The constraint set also provides the one-step expansion relation
``c(τ1,...,τn) →_C σ`` used by Definition 13's fourth clause and by the
deterministic subtype engine: ``σ = τ{α_i ↦ τ_i}`` for some constraint
``c(α_1,...,α_n) >= τ`` in ``C``.  That notation only makes sense for
*uniform polymorphic* constraints (Definition 6); for non-uniform ones
(which the paper assigns meaning to but excludes from the algorithms) the
expansion falls back to unification against a renamed-apart left-hand
side.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..terms.pretty import UNION_TYPE, pretty
from ..terms.substitution import Substitution
from ..terms.term import Struct, Term, Var, rename_apart, subterms, variables_of
from ..terms.unify import unify

__all__ = [
    "DeclarationError",
    "SymbolKind",
    "SymbolTable",
    "SubtypeConstraint",
    "ConstraintSet",
    "UNION_CONSTRAINTS",
]


class DeclarationError(Exception):
    """Raised for malformed declarations (arity clashes, unknown symbols,
    violated Definition 2 side conditions, ...)."""


class SymbolKind:
    """Classification of a symbol occurrence."""

    FUNCTION = "function"
    TYPE_CONSTRUCTOR = "type"


class SymbolTable:
    """The alphabets ``F`` and ``T`` with fixed arities.

    The paper keeps ``V``, ``F`` and ``T`` disjoint; we enforce that a
    name is declared in at most one alphabet and always with the same
    arity.
    """

    def __init__(self) -> None:
        self.functions: Dict[str, int] = {}
        self.type_constructors: Dict[str, int] = {}

    # -- declaration -------------------------------------------------------

    def declare_function(self, name: str, arity: int) -> None:
        """Add ``name/arity`` to ``F``."""
        self._declare(self.functions, self.type_constructors, name, arity, "function symbol")

    def declare_type_constructor(self, name: str, arity: int) -> None:
        """Add ``name/arity`` to ``T``."""
        self._declare(self.type_constructors, self.functions, name, arity, "type constructor")

    @staticmethod
    def _declare(
        target: Dict[str, int], other: Dict[str, int], name: str, arity: int, what: str
    ) -> None:
        if arity < 0:
            raise DeclarationError(f"negative arity for {what} {name}")
        if name in other:
            raise DeclarationError(f"{name} already declared in the other alphabet")
        existing = target.get(name)
        if existing is not None and existing != arity:
            raise DeclarationError(
                f"{what} {name} redeclared with arity {arity} (was {existing})"
            )
        target[name] = arity

    # -- queries -----------------------------------------------------------

    def kind_of(self, name: str) -> Optional[str]:
        """``SymbolKind`` of ``name``, or ``None`` if undeclared."""
        if name in self.functions:
            return SymbolKind.FUNCTION
        if name in self.type_constructors:
            return SymbolKind.TYPE_CONSTRUCTOR
        return None

    def is_function(self, name: str) -> bool:
        """True iff ``name ∈ F``."""
        return name in self.functions

    def is_type_constructor(self, name: str) -> bool:
        """True iff ``name ∈ T``."""
        return name in self.type_constructors

    def arity_of(self, name: str) -> int:
        """Declared arity of ``name`` (in either alphabet)."""
        if name in self.functions:
            return self.functions[name]
        if name in self.type_constructors:
            return self.type_constructors[name]
        raise DeclarationError(f"undeclared symbol {name}")

    def check_type(self, term: Term) -> None:
        """Check ``term`` is a well-formed type: a term over ``F ∪ T``
        (Definition 1) respecting declared arities."""
        for sub in subterms(term):
            if isinstance(sub, Var):
                continue
            kind = self.kind_of(sub.functor)
            if kind is None:
                raise DeclarationError(f"undeclared symbol {sub.functor} in type {pretty(term)}")
            if self.arity_of(sub.functor) != len(sub.args):
                raise DeclarationError(
                    f"symbol {sub.functor} used with arity {len(sub.args)} "
                    f"but declared with arity {self.arity_of(sub.functor)}"
                )

    def check_object_term(self, term: Term) -> None:
        """Check ``term`` is a term over ``F`` only (the object language)."""
        for sub in subterms(term):
            if isinstance(sub, Var):
                continue
            if not self.is_function(sub.functor):
                raise DeclarationError(
                    f"symbol {sub.functor} is not a declared function symbol"
                )
            if self.functions[sub.functor] != len(sub.args):
                raise DeclarationError(
                    f"function symbol {sub.functor} used with arity {len(sub.args)} "
                    f"but declared with arity {self.functions[sub.functor]}"
                )

    def copy(self) -> "SymbolTable":
        """An independent copy."""
        out = SymbolTable()
        out.functions = dict(self.functions)
        out.type_constructors = dict(self.type_constructors)
        return out


@dataclass(frozen=True)
class SubtypeConstraint:
    """``lhs >= rhs`` where ``lhs = c(τ1,...,τn)`` for some ``c ∈ T``.

    Definition 2 requires ``var(rhs) ⊆ var(lhs)``; the constructor checks
    it, so an ill-formed constraint cannot be built.
    """

    lhs: Struct
    rhs: Term
    #: Compiled expansion template (lazily built, see ``_template_of``).
    #: Not part of equality/hash — it is derived from lhs/rhs.
    _template: object = field(
        default=None, init=False, repr=False, compare=False
    )
    _template_ready: bool = field(
        default=False, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not variables_of(self.rhs) <= variables_of(self.lhs):
            raise DeclarationError(
                f"constraint {self} violates var(rhs) ⊆ var(lhs) (Definition 2)"
            )
        args = self.lhs.args
        uniform = (
            all(isinstance(a, Var) for a in args) and len(set(args)) == len(args)
        )
        object.__setattr__(self, "_uniform", uniform)

    @property
    def constructor(self) -> str:
        """The defined type constructor ``c``."""
        return self.lhs.functor

    @property
    def is_uniform(self) -> bool:
        """Definition 6: the lhs arguments are distinct variables."""
        return self._uniform  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"{pretty(self.lhs)} >= {pretty(self.rhs)}."


# -- compiled expansion templates ------------------------------------------------
#
# For a *uniform* constraint ``c(α1,...,αn) >= τ`` the one-step expansion of
# ``c(τ1,...,τn)`` is ``τ{α_i ↦ τ_i}`` — a pure positional rewrite.  Instead
# of running a generic substitution walk per expansion (building a mapping
# dict, traversing τ, re-checking groundness along the way), the rhs is
# compiled once per constraint into a *template* tree whose nodes are
#
# * ``int i``   — copy the supertype's i-th argument into this slot,
# * a ``Term``  — a ground subtree of τ, shared verbatim across expansions,
# * ``(functor, children)`` — build a struct around recursively
#   instantiated children.
#
# Instantiating a template is then a handful of tuple builds proportional to
# the *non-ground* part of τ — the inner-loop cost the subtype engine's
# Theorem 2 rule actually pays.  Non-uniform constraints (excluded from the
# paper's algorithms) have no template and keep the rename+unify path.

def _compile_rhs(rhs: Term, slots: Dict[Var, int]) -> object:
    if isinstance(rhs, Var):
        return slots[rhs]
    if rhs.ground:
        return rhs
    return (rhs.functor, tuple(_compile_rhs(arg, slots) for arg in rhs.args))


def _instantiate(node: object, args: Tuple[Term, ...]) -> Term:
    kind = type(node)
    if kind is int:
        return args[node]  # type: ignore[index]
    if kind is tuple:
        functor, children = node  # type: ignore[misc]
        return Struct(
            functor, tuple(_instantiate(child, args) for child in children)
        )
    return node  # type: ignore[return-value]


def _template_of(constraint: SubtypeConstraint) -> object:
    """The compiled template of ``constraint`` (``None`` if non-uniform).

    Cached on the constraint itself: the template depends only on the
    constraint's two sides, so one compilation serves every constraint
    set the object participates in.
    """
    if constraint._template_ready:
        return constraint._template
    if constraint.is_uniform:
        slots = {var: i for i, var in enumerate(constraint.lhs.args)}
        template: object = _compile_rhs(constraint.rhs, slots)
    else:
        template = None
    object.__setattr__(constraint, "_template", template)
    object.__setattr__(constraint, "_template_ready", True)
    return template


def _union_constraints() -> Tuple[SubtypeConstraint, ...]:
    a, b = Var("A"), Var("B")
    union = Struct(UNION_TYPE, (a, b))
    return (SubtypeConstraint(union, a), SubtypeConstraint(union, b))


UNION_CONSTRAINTS = _union_constraints()


class ConstraintSet:
    """The paper's ``C``: a set of subtype constraints over a symbol table."""

    def __init__(
        self,
        symbols: SymbolTable,
        constraints: Iterable[SubtypeConstraint] = (),
        include_union: bool = True,
    ) -> None:
        self.symbols = symbols.copy()
        self.constraints: List[SubtypeConstraint] = []
        self._by_constructor: Dict[str, List[SubtypeConstraint]] = {}
        #: Per-constructor dispatch table for the compiled expansion path:
        #: ``constructor -> [(arity, template-or-None, constraint), ...]``.
        self._compiled: Dict[str, List[Tuple[int, object, SubtypeConstraint]]] = {}
        self._fingerprint: Optional[str] = None
        if include_union and not self.symbols.is_type_constructor(UNION_TYPE):
            self.symbols.declare_type_constructor(UNION_TYPE, 2)
        for constraint in constraints:
            self.add(constraint)
        if include_union:
            for constraint in UNION_CONSTRAINTS:
                if constraint not in self.constraints:
                    self.add(constraint)

    def add(self, constraint: SubtypeConstraint) -> None:
        """Add ``constraint``, checking both sides against the alphabets."""
        if not self.symbols.is_type_constructor(constraint.constructor):
            raise DeclarationError(
                f"constraint head {constraint.constructor} is not a declared type constructor"
            )
        self.symbols.check_type(constraint.lhs)
        self.symbols.check_type(constraint.rhs)
        self.constraints.append(constraint)
        self._by_constructor.setdefault(constraint.constructor, []).append(constraint)
        self._compiled.setdefault(constraint.constructor, []).append(
            (len(constraint.lhs.args), _template_of(constraint), constraint)
        )
        self._fingerprint = None

    def fingerprint(self) -> str:
        """A stable digest of the whole declaration scope.

        Covers both alphabets (with arities) and every constraint, in
        insertion order.  Two constraint sets with equal fingerprints
        answer every ``⪰_C`` query identically, which is what lets the
        process-wide shared subtype memo key its tables by this value
        (see ``repro.core.shared_memo``).  Cached until the next ``add``.
        """
        cached = self._fingerprint
        if cached is not None:
            return cached
        hasher = hashlib.sha256()
        for name in sorted(self.symbols.functions):
            hasher.update(f"f {name}/{self.symbols.functions[name]}\n".encode())
        for name in sorted(self.symbols.type_constructors):
            hasher.update(
                f"t {name}/{self.symbols.type_constructors[name]}\n".encode()
            )
        for constraint in self.constraints:
            hasher.update(f"c {constraint}\n".encode())
        digest = hasher.hexdigest()
        self._fingerprint = digest
        return digest

    def __iter__(self) -> Iterator[SubtypeConstraint]:
        return iter(self.constraints)

    def __len__(self) -> int:
        return len(self.constraints)

    def constraints_for(self, constructor: str) -> List[SubtypeConstraint]:
        """All constraints whose lhs constructor is ``constructor``."""
        return self._by_constructor.get(constructor, [])

    def defined_constructors(self) -> Set[str]:
        """Type constructors with at least one constraint."""
        return set(self._by_constructor)

    # -- the one-step expansion relation →_C --------------------------------

    def expansions(self, type_term: Struct) -> List[Term]:
        """All ``σ`` with ``type_term →_C σ``.

        For a uniform constraint ``c(α1,...,αn) >= τ`` this is the direct
        substitution ``τ{α_i ↦ τ_i}`` of Definition 13.  For a non-uniform
        constraint the lhs is renamed apart and unified with ``type_term``
        (this is exactly the "two-step application" resolvent in the
        general case); expansions that would instantiate variables of
        ``type_term`` itself are skipped, conservatively — the algorithms
        of Sections 3-6 are only defined for uniform sets anyway.
        """
        compiled = self._compiled.get(type_term.functor)
        if not compiled:
            return []
        args = type_term.args
        arity = len(args)
        out: List[Term] = []
        for expected_arity, template, constraint in compiled:
            if expected_arity != arity:
                continue
            if template is not None:
                out.append(_instantiate(template, args))
                continue
            expansion = self._expand_general(type_term, constraint)
            if expansion is not None:
                out.append(expansion)
        return out

    def expand_with(
        self, type_term: Struct, constraint: SubtypeConstraint
    ) -> Optional[Term]:
        """``σ`` with ``type_term →_C σ`` via ``constraint``, or ``None``."""
        if constraint.constructor != type_term.functor:
            return None
        if len(constraint.lhs.args) != len(type_term.args):
            return None
        template = _template_of(constraint)
        if template is not None:
            return _instantiate(template, type_term.args)
        return self._expand_general(type_term, constraint)

    @staticmethod
    def _expand_general(
        type_term: Struct, constraint: SubtypeConstraint
    ) -> Optional[Term]:
        """The non-uniform fallback: rename the lhs apart and unify."""
        renamed_lhs, mapping = rename_apart(constraint.lhs)
        renamed_rhs = Substitution(dict(mapping)).apply(constraint.rhs)
        theta = unify(renamed_lhs, type_term)
        if theta is None:
            return None
        if any(var in theta for var in variables_of(type_term)):
            return None
        return theta.apply(renamed_rhs)

    def __str__(self) -> str:
        return "\n".join(str(c) for c in self.constraints)
