"""Well-typedness of clauses, queries and programs (Definition 16).

A program clause ``A0 :- A1,...,Ak`` is well-typed iff there exist
substitutions ``η_1,...,η_k`` (over the *body* atoms' predicate-type
variables only — the head may not commit its type variables) such that

* ``match(type(A0), A0)`` and
* ``match(type(A_i) η_i, A_i)`` for ``1 ≤ i ≤ k``

are all typings (not ``fail``/``⊥``) and are in agreement.  A query is the
same without the head.  Theorem 6 proves these conditions are preserved by
SLD-resolution.

The checker makes the existential ``η_i`` effective the way the paper's
Section 7 describes:

1. rename each body atom's predicate-type variables apart — those renamed
   variables are *solvable*; the head's predicate-type variables stay
   *rigid*;
2. run the constraint-collecting match of
   ``repro.core.constraint_match`` on every atom, producing a symbolic
   typing plus shape equations;
3. collect all equations — the shape equations and, for every clause
   variable that occurs in several atoms, the agreement equations between
   its symbolic types — and solve them by unification, with rigid
   variables frozen into constants so they cannot be instantiated;
4. re-verify: instantiate each atom's predicate type with the solved
   ``η_i`` and re-run the *plain* ``match`` of Definition 13; accept only
   if every result is a typing and all results agree.  (Lemma 1 —
   instantiation propagates through ``match`` — guarantees this step
   succeeds whenever step 3 did, but running it means an "accepted"
   verdict literally exhibits the Definition 16 witnesses.)

The result object records the witnesses (``η_i`` and the final typings),
which the typed-execution experiment (Theorem 6) and the tests inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lp.clause import Clause, Program, Query
from ..terms.pretty import pretty
from ..terms.substitution import Substitution
from ..terms.term import Struct, Term, Var, fresh_variable, variables_of
from ..terms.unify import unify
from .constraint_match import ConstraintMatcher, CoverConstraint, ShapeEquation
from .declarations import ConstraintSet, DeclarationError
from .infer import CommonTypeInference
from .match import MATCH_BOTTOM, MATCH_FAIL, Matcher, MatchResult
from .predicate_types import PredicateTypeEnv
from .typing import in_agreement

__all__ = ["AtomCheck", "ClauseReport", "ProgramReport", "WellTypedChecker"]

_RIGID_PREFIX = "'$rigid"


@dataclass
class AtomCheck:
    """Per-atom evidence gathered during a clause check."""

    atom: Struct
    declared_type: Struct
    working_type: Struct  # declared type with body renaming applied (η_i domain)
    renaming: Dict[Var, Var]  # declared type var -> solvable fresh var ({} for head)
    symbolic_typing: MatchResult = MATCH_BOTTOM
    equations: Tuple[ShapeEquation, ...] = ()
    covers: Tuple[CoverConstraint, ...] = ()
    eta: Optional[Substitution] = None  # solved commitment η_i (None for head)
    final_typing: Optional[Substitution] = None


@dataclass
class ClauseReport:
    """Verdict for one clause/query, with the Definition 16 witnesses."""

    well_typed: bool
    reason: Optional[str] = None
    atom_checks: List[AtomCheck] = field(default_factory=list)
    has_head: bool = False

    def __bool__(self) -> bool:
        return self.well_typed

    @property
    def typings(self) -> List[Substitution]:
        """Final (agreed) typings, one per atom — only when well-typed."""
        return [c.final_typing for c in self.atom_checks if c.final_typing is not None]

    def explain(self) -> str:
        """A human-readable account of the check: per atom, the working
        predicate type, the solved commitment η (body atoms), and the
        resulting variable typing — or, on rejection, how far the check
        got and why it stopped."""
        lines: List[str] = []
        verdict = "well-typed" if self.well_typed else "NOT well-typed"
        lines.append(f"{verdict}" + (f": {self.reason}" if self.reason else ""))
        for index, check in enumerate(self.atom_checks):
            if self.has_head:
                role = "head" if index == 0 else f"goal {index}"
            else:
                role = f"goal {index + 1}"
            lines.append(f"  {role}: {pretty(check.atom)} : {pretty(check.declared_type)}")
            if check.eta is not None and len(check.eta):
                committed = ", ".join(
                    f"{var} := {pretty(value)}" for var, value in sorted(
                        check.eta.items(), key=lambda p: p[0].name
                    )
                )
                lines.append(f"    commits {committed}")
            typing = check.final_typing
            if typing is None and isinstance(check.symbolic_typing, Substitution):
                typing = check.symbolic_typing
            if isinstance(typing, Substitution) and len(typing):
                rendered = ", ".join(
                    f"{var} : {pretty(value)}" for var, value in sorted(
                        typing.items(), key=lambda p: p[0].name
                    )
                )
                lines.append(f"    types {rendered}")
            elif not isinstance(check.symbolic_typing, Substitution):
                lines.append(f"    match returned {check.symbolic_typing!r}")
        return "\n".join(lines)


@dataclass
class ProgramReport:
    """Verdict for a whole program: per-clause reports in program order."""

    clause_reports: List[Tuple[Clause, ClauseReport]] = field(default_factory=list)

    @property
    def well_typed(self) -> bool:
        return all(report.well_typed for _, report in self.clause_reports)

    def __bool__(self) -> bool:
        return self.well_typed

    def failures(self) -> List[Tuple[Clause, ClauseReport]]:
        """The rejected clauses with their reports."""
        return [(c, r) for c, r in self.clause_reports if not r.well_typed]


class WellTypedChecker:
    """Definition 16, made effective via constraint solving."""

    def __init__(self, constraints: ConstraintSet, predicate_types: PredicateTypeEnv) -> None:
        self.constraints = constraints
        self.predicate_types = predicate_types
        self.matcher = Matcher(constraints)
        self.constraint_matcher = ConstraintMatcher(constraints, validate=False)

    # -- public API -------------------------------------------------------------

    def check_clause(self, clause: Clause) -> ClauseReport:
        """Well-typedness of a program clause (head + body)."""
        return self._check(clause.head, clause.body)

    def check_query(self, query: Query) -> ClauseReport:
        """Well-typedness of a negative clause (body only)."""
        return self._check(None, query.goals)

    def check_resolvent(self, goals: Sequence[Struct]) -> ClauseReport:
        """Well-typedness of a resolvent (used by typed execution)."""
        return self._check(None, tuple(goals))

    def check_program(self, program: Program) -> ProgramReport:
        """Check every clause of ``program``."""
        report = ProgramReport()
        for clause in program:
            report.clause_reports.append((clause, self.check_clause(clause)))
        return report

    # -- the algorithm ------------------------------------------------------------

    def _check(self, head: Optional[Struct], body: Tuple[Struct, ...]) -> ClauseReport:
        report = ClauseReport(well_typed=False, has_head=head is not None)
        solvable: Set[Var] = set()
        rigid: Set[Var] = set()

        # Step 1+2: per-atom constraint matching.
        atoms: List[Tuple[Struct, bool]] = []
        if head is not None:
            atoms.append((head, True))
        atoms.extend((goal, False) for goal in body)
        for atom, is_head in atoms:
            try:
                declared = self.predicate_types.type_of(atom)
            except DeclarationError as error:
                report.reason = str(error)
                return report
            if is_head:
                working = declared
                renaming: Dict[Var, Var] = {}
                rigid |= variables_of(declared)
            else:
                renaming = {
                    var: fresh_variable("_E") for var in variables_of(declared)
                }
                for fresh in renaming.values():
                    solvable.add(fresh)
                working_term = Substitution(dict(renaming)).apply(declared)
                assert isinstance(working_term, Struct)
                working = working_term
            check = AtomCheck(atom, declared, working, renaming)
            outcome = self.constraint_matcher.match(working, atom, solvable)
            check.symbolic_typing = outcome.result
            check.equations = outcome.equations
            check.covers = outcome.covers
            report.atom_checks.append(check)
            if outcome.result is MATCH_FAIL:
                report.reason = (
                    f"atom {pretty(atom)} has no typing under {pretty(working)} (fail)"
                )
                return report
            if outcome.result is MATCH_BOTTOM:
                report.reason = (
                    f"match cannot determine a typing for {pretty(atom)} "
                    f"under {pretty(working)} (⊥)"
                )
                return report

        # Step 3: collect and solve the equations.
        equations: List[Tuple[Term, Term]] = []
        for check in report.atom_checks:
            equations.extend(check.equations)
        occurrences: Dict[Var, List[Tuple[Struct, Term]]] = {}
        for check in report.atom_checks:
            typing = check.symbolic_typing
            assert isinstance(typing, Substitution)
            for var, type_term in typing.items():
                occurrences.setdefault(var, []).append((check.atom, type_term))
        for var, typed_at in occurrences.items():
            for (_, first), (_, second) in zip(typed_at, typed_at[1:]):
                equations.append((first, second))
        solution = self._solve(equations, rigid)
        if solution is None:
            clashes = self._describe_clashes(occurrences)
            report.reason = (
                "type-variable constraints are unsolvable"
                + (f": {clashes}" if clashes else "")
            )
            return report

        # Step 3b: resolve the cover constraints.  A committed variable
        # still free after unification but required to cover ground terms
        # gets a common type inferred (name-based union, see
        # ``repro.core.infer``); an already-bound one is verified.
        solution, failure = self._resolve_covers(report, solution, rigid)
        if failure is not None:
            report.reason = failure
            return report

        # Step 4: re-verify with the plain Definition 13 match.
        final_typings: List[Substitution] = []
        for check in report.atom_checks:
            eta = Substitution(
                {
                    declared_var: solution.apply(fresh)
                    for declared_var, fresh in check.renaming.items()
                }
            )
            check.eta = eta
            committed = eta.apply(check.declared_type)
            result = self.matcher.match(committed, check.atom)
            if not isinstance(result, Substitution):
                report.reason = (
                    f"re-verification failed for {pretty(check.atom)} under "
                    f"{pretty(committed)}: match returned {result!r}"
                )
                return report
            check.final_typing = result
            final_typings.append(result)
        if not in_agreement(final_typings):
            report.reason = "final typings do not agree"
            return report
        report.well_typed = True
        return report

    # -- cover-constraint resolution ---------------------------------------------------

    def _resolve_covers(
        self,
        report: ClauseReport,
        solution: Substitution,
        rigid: Set[Var],
    ) -> Tuple[Substitution, Optional[str]]:
        """Infer or verify the covers collected by the constraint match.

        Returns the (possibly extended) solution and an error message, or
        ``None`` on success.
        """
        all_covers: List[CoverConstraint] = []
        for check in report.atom_checks:
            all_covers.extend(check.covers)
        if not all_covers:
            return solution, None
        # Group the covered terms by the representative of each variable
        # under the current solution.
        free_groups: Dict[Var, List[Term]] = {}
        bound_targets: List[Tuple[Term, Term]] = []
        for var, term in all_covers:
            representative = solution.apply(var)
            if isinstance(representative, Var):
                if representative in rigid:
                    return solution, (
                        f"head type variable {representative} would have to be "
                        f"committed to cover {pretty(term)}"
                    )
                free_groups.setdefault(representative, []).append(term)
            else:
                bound_targets.append((representative, term))
        if free_groups:
            inference = CommonTypeInference(self.constraints, self.constraint_matcher)
            inferred_bindings: Dict[Var, Term] = {}
            for var, terms in free_groups.items():
                inferred = inference.infer(terms)
                if inferred is None:
                    listing = ", ".join(pretty(t) for t in terms)
                    return solution, (
                        f"no common type found covering {{{listing}}} for a "
                        "committed type variable"
                    )
                inferred_bindings[var] = inferred
            solution = solution.compose(Substitution(inferred_bindings))
        for target, term in bound_targets:
            resolved = solution.apply(target)
            result = self.matcher.match(resolved, term)
            if not isinstance(result, Substitution):
                return solution, (
                    f"committed type {pretty(resolved)} does not cover "
                    f"{pretty(term)} ({result!r})"
                )
        return solution, None

    # -- equation solving -----------------------------------------------------------

    def _solve(
        self, equations: List[Tuple[Term, Term]], rigid: Set[Var]
    ) -> Optional[Substitution]:
        """Unify all equations with ``rigid`` variables treated as constants.

        Rigid variables are temporarily replaced by reserved constants, so
        unification can bind only solvable variables; afterwards the
        constants are melted back into the original variables so solved
        types may still mention the head's type variables.
        """
        rigid_to_const = {var: Struct(f"{_RIGID_PREFIX}:{var.name}", ()) for var in rigid}
        const_to_rigid = {const: var for var, const in rigid_to_const.items()}
        hardening = Substitution(dict(rigid_to_const))

        current = Substitution()
        for left, right in equations:
            theta = unify(
                current.apply(hardening.apply(left)),
                current.apply(hardening.apply(right)),
            )
            if theta is None:
                return None
            current = current.compose(theta)

        def melt(term: Term) -> Term:
            if isinstance(term, Var):
                return term
            if term in const_to_rigid:
                return const_to_rigid[term]
            if not term.args:
                return term
            return Struct(term.functor, tuple(melt(a) for a in term.args))

        return Substitution({var: melt(value) for var, value in current.items()})

    @staticmethod
    def _describe_clashes(
        occurrences: Dict[Var, List[Tuple[Struct, Term]]]
    ) -> str:
        """Human-readable summary of variables typed differently by
        different atoms (best-effort, for diagnostics only)."""
        fragments: List[str] = []
        for var, typed_at in occurrences.items():
            distinct = []
            for _, type_term in typed_at:
                if type_term not in distinct:
                    distinct.append(type_term)
            if len(distinct) > 1:
                rendered = " vs ".join(pretty(t) for t in distinct)
                fragments.append(f"{var} appears in type contexts {rendered}")
        return "; ".join(fragments)
