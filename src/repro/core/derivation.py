"""Explicit SLD-refutations for subtype goals.

Definition 3 says ``τ1 ⪰_C τ2`` *means* there is an SLD-refutation of
``H_C ∪ {:- τ1 >= τ2}``, and Section 2 displays one such refutation for
``cons(foo, nil) ∈ M[[list(A)]]``.  The deterministic engine of
``repro.core.subtype`` only answers yes/no; this module produces the
*evidence*: a step-by-step refutation in which every step names the
``H_C`` clause applied (a constraint fact, a substitution axiom, or the
transitivity axiom) and shows the resolvent it produces — exactly the
paper's display format.

The builder searches with the same strategy as the engine (supertype-
directed clause selection, Theorems 1–2; two-step applications become the
two SLD steps they abbreviate), so a derivation exists whenever the
engine says yes.  :func:`verify_derivation` independently replays a
derivation against ``H_C`` with nothing but unification — each step must
be a legal SLD-resolution step and the final resolvent must be empty —
giving the tests an end-to-end check that the strategy really produces
refutations of the paper's Horn theory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..lp.clause import Clause, rename_clause_apart
from ..terms.pretty import pretty
from ..terms.term import Struct, Term, Var, fresh_variable, variables_of
from ..terms.unify import unify
from .declarations import ConstraintSet
from .horn import SUBTYPE_PREDICATE, subtype_goal
from .recursion import ensure_recursion_capacity
from .restrictions import validate_restrictions

__all__ = ["DerivationStep", "Derivation", "DerivationBuilder", "verify_derivation"]


@dataclass(frozen=True)
class DerivationStep:
    """One SLD-resolution step: the clause applied and the resolvent."""

    rule: str  # "constraint" | "substitution" | "transitivity"
    clause: Clause  # the H_C clause (unrenamed, as in the theory)
    resolvent: Tuple[Struct, ...]  # goals after the step, fully instantiated

    def describe(self) -> str:
        goals = ", ".join(_render_goal(g) for g in self.resolvent) or "□"
        return f"[{self.rule}: {self.clause}]  :- {goals}."


@dataclass
class Derivation:
    """A complete refutation of ``:- goal.`` from ``H_C``."""

    goal: Struct
    steps: List[DerivationStep]

    @property
    def length(self) -> int:
        return len(self.steps)

    def render(self) -> str:
        """The paper's display: the initial goal, then each resolvent."""
        lines = [f":- {_render_goal(self.goal)}."]
        for step in self.steps:
            lines.append(step.describe())
        return "\n".join(lines)


def _render_goal(goal: Struct) -> str:
    if goal.functor == SUBTYPE_PREDICATE and len(goal.args) == 2:
        return f"{pretty(goal.args[0])} >= {pretty(goal.args[1])}"
    return pretty(goal)


class DerivationBuilder:
    """Search for refutations with the Theorem 1–2 strategy, recording
    every SLD step taken on the successful branch."""

    def __init__(self, constraints: ConstraintSet, validate: bool = True) -> None:
        if validate:
            validate_restrictions(constraints)
        self.constraints = constraints
        self.symbols = constraints.symbols
        self._bindings: Dict[Var, Term] = {}
        self._trail: List[Var] = []

    # -- public -------------------------------------------------------------------

    def derive(self, supertype: Term, subtype: Term) -> Optional[Derivation]:
        """A refutation of ``:- supertype >= subtype.``, or ``None``."""
        ensure_recursion_capacity(supertype, subtype)
        self._bindings.clear()
        self._trail.clear()
        goal = subtype_goal(supertype, subtype)
        for steps in self._prove_goals((goal,)):
            # Resolve all recorded resolvents under the final bindings so
            # the displayed derivation is fully instantiated (the paper
            # shows the composed answer substitution applied).
            resolved_steps = [
                DerivationStep(
                    step.rule,
                    step.clause,
                    tuple(self._deep_resolve(g) for g in step.resolvent),  # type: ignore[misc]
                )
                for step in steps
            ]
            return Derivation(self._deep_resolve(goal), resolved_steps)  # type: ignore[arg-type]
        return None

    # -- bindings ----------------------------------------------------------------------

    def _walk(self, term: Term) -> Term:
        while isinstance(term, Var) and term in self._bindings:
            term = self._bindings[term]
        return term

    def _deep_resolve(self, term: Term) -> Term:
        term = self._walk(term)
        if isinstance(term, Var):
            return term
        if not term.args:
            return term
        return Struct(term.functor, tuple(self._deep_resolve(a) for a in term.args))

    def _occurs(self, var: Var, term: Term) -> bool:
        stack = [term]
        while stack:
            current = self._walk(stack.pop())
            if current == var:
                return True
            if isinstance(current, Struct):
                stack.extend(current.args)
        return False

    def _bind(self, var: Var, term: Term) -> bool:
        if self._occurs(var, term):
            return False
        self._bindings[var] = term
        self._trail.append(var)
        return True

    def _undo_to(self, mark: int) -> None:
        while len(self._trail) > mark:
            del self._bindings[self._trail.pop()]

    # -- H_C clause constructors (for the step records) ------------------------------------

    def _substitution_axiom(self, name: str, arity: int) -> Clause:
        if arity == 0:
            constant = Struct(name, ())
            return Clause(subtype_goal(constant, constant))
        alphas = tuple(Var(f"A{i}") for i in range(arity))
        betas = tuple(Var(f"B{i}") for i in range(arity))
        head = subtype_goal(Struct(name, alphas), Struct(name, betas))
        return Clause(head, tuple(subtype_goal(a, b) for a, b in zip(alphas, betas)))

    def _transitivity_axiom(self) -> Clause:
        a, b, c = Var("A"), Var("B"), Var("C")
        return Clause(subtype_goal(a, c), (subtype_goal(a, b), subtype_goal(b, c)))

    # -- the strategy, with step recording ----------------------------------------------------

    def _prove_goals(
        self, goals: Tuple[Struct, ...]
    ) -> Iterator[List[DerivationStep]]:
        """Yield step lists refuting ``goals`` (leftmost selection)."""
        if not goals:
            yield []
            return
        first, rest = goals[0], goals[1:]
        supertype = self._walk(first.args[0])
        subtype = self._walk(first.args[1])
        for head_steps in self._prove_one(supertype, subtype, rest):
            yield head_steps

    def _prove_one(
        self, supertype: Term, subtype: Term, rest: Tuple[Struct, ...]
    ) -> Iterator[List[DerivationStep]]:
        # Variable cases: apply the substitution axiom of the other side's
        # outermost symbol (binding the variable), mirroring the engine.
        if isinstance(supertype, Var) or isinstance(subtype, Var):
            yield from self._prove_variable(supertype, subtype, rest)
            return
        assert isinstance(supertype, Struct) and isinstance(subtype, Struct)
        if not self.symbols.is_type_constructor(supertype.functor):
            # Theorem 1: only the substitution axiom for this symbol.
            if (
                supertype.functor == subtype.functor
                and len(supertype.args) == len(subtype.args)
            ):
                yield from self._apply_substitution(supertype, subtype, rest)
            return
        # Theorem 2: substitution axiom (same constructor) ...
        if (
            supertype.functor == subtype.functor
            and len(supertype.args) == len(subtype.args)
        ):
            yield from self._apply_substitution(supertype, subtype, rest)
        # ... and the two-step application of each constraint.
        for constraint in self.constraints.constraints_for(supertype.functor):
            expansion = self.constraints.expand_with(
                Struct(supertype.functor, tuple(self._deep_resolve(a) for a in supertype.args)),
                constraint,
            )
            if expansion is None:
                continue
            transitivity = self._transitivity_axiom()
            fact = Clause(subtype_goal(constraint.lhs, constraint.rhs))
            bridge = fresh_variable("_B")
            step_one = DerivationStep(
                "transitivity",
                transitivity,
                (subtype_goal(supertype, bridge), subtype_goal(bridge, subtype))
                + rest,
            )
            new_goal = subtype_goal(expansion, subtype)
            step_two = DerivationStep("constraint", fact, (new_goal,) + rest)
            for tail_steps in self._prove_goals((new_goal,) + rest):
                yield [step_one, step_two] + tail_steps

    def _prove_variable(
        self, supertype: Term, subtype: Term, rest: Tuple[Struct, ...]
    ) -> Iterator[List[DerivationStep]]:
        variable, other = (
            (supertype, subtype) if isinstance(supertype, Var) else (subtype, supertype)
        )
        assert isinstance(variable, Var)
        if isinstance(other, Var):
            # Both variables: bind them together; any reflexivity fact
            # would do, use transitivity-free binding via the substitution
            # axiom of a fresh constant is overkill — record as the
            # degenerate substitution axiom of the bound value once known.
            mark = len(self._trail)
            if variable == other or self._bind(variable, other):
                # A >= A succeeds by the substitution axiom of whatever A
                # becomes; record nothing extra by resolving it as a
                # reflexivity application on a fresh constant.
                constant = Struct("'$any", ())
                if isinstance(self._walk(other), Var):
                    self._bind(other if isinstance(other, Var) else variable, constant)
                axiom = self._substitution_axiom(constant.functor, 0)
                step = DerivationStep("substitution", axiom, rest)
                for tail in self._prove_goals(rest):
                    yield [step] + tail
            self._undo_to(mark)
            return
        assert isinstance(other, Struct)
        mark = len(self._trail)
        if self._bind(variable, other):
            # The goal is now other >= other (or the symmetric); refute it
            # through the substitution axiom chain.
            resolved = self._deep_resolve(other)
            yield from self._apply_substitution(resolved, resolved, rest)  # type: ignore[arg-type]
        self._undo_to(mark)

    def _apply_substitution(
        self, supertype: Struct, subtype: Struct, rest: Tuple[Struct, ...]
    ) -> Iterator[List[DerivationStep]]:
        axiom = self._substitution_axiom(supertype.functor, len(supertype.args))
        component_goals = tuple(
            subtype_goal(sup_arg, sub_arg)
            for sup_arg, sub_arg in zip(supertype.args, subtype.args)
        )
        step = DerivationStep("substitution", axiom, component_goals + rest)
        for tail in self._prove_goals(component_goals + rest):
            yield [step] + tail


# -- independent verification ------------------------------------------------------------------


def _canonical(goals: Tuple[Struct, ...]) -> Tuple:
    numbering: Dict[Var, int] = {}

    def walk(term: Term) -> Tuple:
        if isinstance(term, Var):
            if term not in numbering:
                numbering[term] = len(numbering)
            return ("v", numbering[term])
        assert isinstance(term, Struct)
        return (term.functor, tuple(walk(a) for a in term.args))

    return tuple(walk(g) for g in goals)


def verify_derivation(derivation: Derivation) -> bool:
    """Replay ``derivation`` as plain SLD-resolution.

    Each step must resolve the current leftmost goal against a
    renamed-apart copy of the step's clause, and the recorded resolvent
    must be an *instance* of the computed one (the builder records
    resolvents with the final answer substitution applied, which is a
    legal instance of every intermediate resolvent).  The last resolvent
    must be empty.
    """
    current: Tuple[Struct, ...] = (derivation.goal,)
    for step in derivation.steps:
        if not current:
            return False
        renamed = rename_clause_apart(step.clause)
        theta = unify(current[0], renamed.head)
        if theta is None:
            return False
        computed = tuple(theta.apply(g) for g in renamed.body + current[1:])
        if len(computed) != len(step.resolvent):
            return False
        # The recorded resolvent must be a simultaneous instance of the
        # computed one.
        instance = unify(
            Struct("'$goals", computed), Struct("'$goals", tuple(step.resolvent))
        )
        if instance is None:
            return False
        # Only variables of the *computed* resolvent may be instantiated.
        recorded_vars = set()
        for goal in step.resolvent:
            recorded_vars |= variables_of(goal)
        if any(var in instance for var in recorded_vars):
            return False
        current = tuple(step.resolvent)
    return not current
