"""Naive, definitional subtype prover (Definition 3, literally).

``τ1 ⪰_C τ2`` *is defined as* the existence of an SLD-refutation of
``H_C ∪ {:- τ1 >= τ2}``.  This module runs exactly that: it builds the
Horn program ``H_C`` and searches it with the generic SLD engine.
Nothing strategy-like happens here on purpose — this is the semantic
oracle against which the deterministic strategy of Section 3
(``repro.core.subtype``) is differentially tested (experiment E2).

Search configuration and its consequences:

* depth-first with a depth bound and a step budget, plus the sound
  variant loop check (a branch whose resolvent is a variant of an
  ancestor resolvent cannot be on a *shortest* refutation);
* **positive answers are definitive**: a refutation found is a refutation
  of ``H_C``;
* **negative answers are only definitive when the bounded tree was
  exhausted** (``False``); otherwise the result is ``None`` (unknown at
  this budget).  Because the transitivity axiom gives ``H_C`` an
  infinitely deep SLD tree under any failing goal, a naive prover can
  essentially never *refute* a subtyping — which is precisely the problem
  Theorems 1–3 exist to solve: the deterministic strategy decides both
  directions, and experiment E2 measures the gap.

An unknown verdict (``None``) always carries a machine-readable
exhaustion reason: :attr:`NaiveSubtypeProver.last_exhaustion` is
``"steps"`` when the step budget aborted the search and ``"depth"`` when
only the depth bound pruned branches; :meth:`NaiveSubtypeProver
.holds_detailed` returns verdict and reason together.  The E2
differential tests assert the reason on every unknown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Set

from ..lp.database import Database
from ..lp.resolution import SLDResult, solve, solve_iterative_deepening
from ..obs import METRICS, TRACER, SubtypeGoalEvent
from ..terms.freeze import freeze
from ..terms.pretty import pretty
from ..terms.term import Struct, Term, subterms
from .declarations import ConstraintSet
from .horn import horn_program, subtype_goal

__all__ = ["NaiveVerdict", "NaiveSubtypeProver"]


@dataclass(frozen=True)
class NaiveVerdict:
    """A three-valued verdict plus the reason an unknown is unknown."""

    verdict: Optional[bool]
    exhaustion: Optional[str] = None  # "steps" | "depth" | None

    @property
    def unknown(self) -> bool:
        return self.verdict is None


class NaiveSubtypeProver:
    """Bounded SLD search over ``H_C``."""

    def __init__(
        self,
        constraints: ConstraintSet,
        max_depth: int = 24,
        step_limit: int = 60_000,
        variant_check: bool = True,
    ) -> None:
        self.constraints = constraints
        self.max_depth = max_depth
        self.step_limit = step_limit
        self.variant_check = variant_check
        # Why the most recent query came back unknown: "steps" | "depth"
        # (None after a definitive answer).
        self.last_exhaustion: Optional[str] = None
        # The base H_C database (no frozen constants) is cached; goals that
        # mention frozen constants trigger a rebuild with the extra
        # degenerate substitution axioms.
        self._base_database = Database(horn_program(constraints))

    # -- alphabet plumbing --------------------------------------------------

    def _undeclared_constants(self, *terms: Term) -> Set[str]:
        symbols = self.constraints.symbols
        extra: Set[str] = set()
        for term in terms:
            for sub in subterms(term):
                if isinstance(sub, Struct) and sub.functor not in (">=",):
                    if symbols.kind_of(sub.functor) is None:
                        if sub.args:
                            raise ValueError(
                                f"undeclared non-constant symbol {sub.functor}/{len(sub.args)}"
                            )
                        extra.add(sub.functor)
        return extra

    def _database_for(self, *terms: Term) -> Database:
        extra = self._undeclared_constants(*terms)
        if not extra:
            return self._base_database
        return Database(horn_program(self.constraints, extra_constants=sorted(extra)))

    # -- the three queries the paper builds on -------------------------------

    def _conclude(self, result: SLDResult) -> NaiveVerdict:
        """Turn a bounded SLD outcome into a verdict + exhaustion reason.

        When both bounds fired, ``steps`` wins: the step budget is what
        actually aborted the whole search (depth cutoffs alone leave the
        bounded tree fully explored round by round).
        """
        if result.answers:
            verdict = NaiveVerdict(True)
        elif result.complete:
            verdict = NaiveVerdict(False)
        elif result.hit_step_limit:
            verdict = NaiveVerdict(None, "steps")
        else:
            verdict = NaiveVerdict(None, "depth")
        self.last_exhaustion = verdict.exhaustion
        return verdict

    def holds(self, supertype: Term, subtype: Term) -> Optional[bool]:
        """``τ1 ⪰_C τ2`` (Definition 3), three-valued under the budget.

        On ``None`` (unknown), :attr:`last_exhaustion` records whether the
        ``"steps"`` budget or the ``"depth"`` bound gave out — use
        :meth:`holds_detailed` to get both together.
        """
        return self.holds_detailed(supertype, subtype).verdict

    def holds_detailed(self, supertype: Term, subtype: Term) -> NaiveVerdict:
        """Like :meth:`holds`, returning the verdict with its reason."""
        database = self._database_for(supertype, subtype)
        observing = METRICS.enabled or TRACER.enabled
        handle = TRACER.begin() if TRACER.enabled else None
        start = time.perf_counter() if observing else 0.0
        result = solve(
            database,
            [subtype_goal(supertype, subtype)],
            depth_limit=self.max_depth,
            step_limit=self.step_limit,
            max_answers=1,
            variant_check=self.variant_check,
        )
        verdict = self._conclude(result)
        if observing:
            self._record(handle, supertype, subtype, verdict, start)
        return verdict

    def _record(
        self,
        handle,
        supertype: Term,
        subtype: Term,
        verdict: NaiveVerdict,
        start: float,
    ) -> None:
        """Mirror one naive query into the telemetry registry/tracer."""
        if METRICS.enabled:
            METRICS.inc("naive.goals")
            if verdict.verdict is True:
                METRICS.inc("naive.true")
            elif verdict.verdict is False:
                METRICS.inc("naive.false")
            else:
                METRICS.inc("naive.unknown")
                METRICS.inc(f"naive.exhausted_{verdict.exhaustion}")
            METRICS.observe("naive.holds", time.perf_counter() - start)
        if handle is not None:
            TRACER.end(
                handle,
                SubtypeGoalEvent,
                supertype=pretty(supertype),
                subtype=pretty(subtype),
                engine="naive",
                result=verdict.verdict,
                reason=verdict.exhaustion,
            )

    def holds_iterative(
        self,
        supertype: Term,
        subtype: Term,
        start_depth: int = 4,
        depth_step: int = 4,
    ) -> Optional[bool]:
        """Like :meth:`holds` but via iterative deepening — shortest-proof
        search, used by the benchmark that characterises the naive
        prover's cost as a function of derivation depth."""
        database = self._database_for(supertype, subtype)
        observing = METRICS.enabled or TRACER.enabled
        handle = TRACER.begin() if TRACER.enabled else None
        start = time.perf_counter() if observing else 0.0
        result = solve_iterative_deepening(
            database,
            [subtype_goal(supertype, subtype)],
            max_depth=self.max_depth,
            start_depth=start_depth,
            depth_step=depth_step,
            step_limit_per_round=self.step_limit,
            max_answers=1,
            variant_check=self.variant_check,
        )
        verdict = self._conclude(result)
        if observing:
            self._record(handle, supertype, subtype, verdict, start)
        return verdict.verdict

    def contains(self, type_term: Term, ground_term: Term) -> Optional[bool]:
        """``t ∈ M_C[[τ]]`` (Definition 4): ``τ ⪰_C t`` for ground ``t``."""
        return self.holds(type_term, ground_term)

    def more_general(self, general: Term, specific: Term) -> Optional[bool]:
        """Definition 5: ``τ1`` is more general than ``τ2`` iff ``τ1 ⪰_C τ̄2``."""
        return self.holds(general, freeze(specific))
