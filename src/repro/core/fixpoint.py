"""The least model of ``H_C``, computed bottom-up (Section 2's other half).

The paper assigns meaning to types by reading the declarations as Horn
clauses: "This technique provides a (least) model for types and, at the
same time, a sound and complete proof system for deriving subtypes."  The
proof-system half is ``repro.core.subtype_sld`` (top-down SLD) and
``repro.core.subtype`` (the deterministic strategy); this module is the
*model* half: the least fixpoint of the immediate-consequence operator
``T_{H_C}``, restricted to a finite universe of ground types.

The universe must be **subterm- and expansion-closed**
(:func:`expansion_closed_universe`): every argument of a universe term
and every one-step constraint expansion of a universe term is again in
the universe.  Under that closure the deterministic derivation of any
``a ⪰ b`` with ``a, b`` in the universe only ever visits universe terms
(expansions for the supertype, subterms for the subtype), so the bounded
least model agrees *exactly* with ``⪰_C`` on universe pairs — which the
tests verify against both provers, closing the triangle

    bottom-up fixpoint  ==  top-down SLD  ==  deterministic strategy.

Iteration rules (the clauses of ``H_C``, applied as consequences):

* **constraint facts** — every instantiation of ``c(α…) >= τ`` whose
  both sides land in the universe;
* **substitution axioms** — ``s(a…) >= s(b…)`` once every ``a_i >= b_i``
  holds (reflexivity of constants is the 0-ary case);
* **transitivity** — relational composition.

Everything is finite and monotone, so the loop terminates at the least
fixpoint.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..terms.substitution import Substitution
from ..terms.term import Struct, Term, Var, variables_of
from .declarations import ConstraintSet
from .restrictions import validate_restrictions

__all__ = ["expansion_closed_universe", "LeastModel"]


def expansion_closed_universe(
    constraints: ConstraintSet,
    seeds: Iterable[Term],
    max_size: int = 2000,
) -> FrozenSet[Struct]:
    """The smallest subterm- and expansion-closed set of ground types
    containing ``seeds``.

    Requires a uniform, guarded set (Theorem 3 bounds the expansion
    closure).  ``max_size`` is a safety valve against accidentally huge
    universes.
    """
    validate_restrictions(constraints)
    universe: Set[Struct] = set()
    worklist: List[Term] = list(seeds)
    while worklist:
        term = worklist.pop()
        if isinstance(term, Var):
            raise ValueError("the bounded least model is defined over ground types")
        if term in universe:
            continue
        if len(universe) >= max_size:
            raise ValueError(f"universe exceeded max_size={max_size}")
        universe.add(term)
        worklist.extend(term.args)
        if constraints.symbols.is_type_constructor(term.functor):
            worklist.extend(constraints.expansions(term))  # ground: direct
    return frozenset(universe)


class LeastModel:
    """``lfp(T_{H_C})`` restricted to ``universe × universe``."""

    def __init__(self, constraints: ConstraintSet, universe: FrozenSet[Struct]) -> None:
        self.constraints = constraints
        self.universe = universe
        # supertype -> set of subtypes currently known below it.
        self.below: Dict[Struct, Set[Struct]] = {term: set() for term in universe}
        self.iterations = 0
        self._compute()

    # -- queries -----------------------------------------------------------------

    def holds(self, supertype: Struct, subtype: Struct) -> bool:
        """``supertype >= subtype`` is in the least model (both must be
        universe members)."""
        if supertype not in self.below or subtype not in self.universe:
            raise KeyError("both terms must belong to the model's universe")
        return supertype == subtype or subtype in self.below[supertype]

    def pairs(self) -> Set[Tuple[Struct, Struct]]:
        """All strict pairs of the model (reflexive pairs omitted)."""
        return {
            (sup, sub)
            for sup, subs in self.below.items()
            for sub in subs
            if sup != sub
        }

    # -- the fixpoint ----------------------------------------------------------------

    def _compute(self) -> None:
        self._seed_constraint_facts()
        by_indicator: Dict[Tuple[str, int], List[Struct]] = {}
        for term in self.universe:
            by_indicator.setdefault(term.indicator, []).append(term)
        changed = True
        while changed:
            changed = False
            self.iterations += 1
            # Substitution axioms (reflexivity falls out at arity 0).
            for group in by_indicator.values():
                for sup, sub in product(group, group):
                    if sub in self.below[sup]:
                        continue
                    if all(
                        sup_arg == sub_arg or sub_arg in self.below.get(sup_arg, ())
                        for sup_arg, sub_arg in zip(sup.args, sub.args)
                    ):
                        self.below[sup].add(sub)
                        changed = True
            # Transitivity: below[sup] ⊇ below of everything below sup.
            for sup in self.universe:
                current = self.below[sup]
                additions: Set[Struct] = set()
                for middle in current:
                    additions |= self.below[middle] - current
                if additions:
                    current |= additions
                    changed = True

    def _seed_constraint_facts(self) -> None:
        for constraint in self.constraints:
            parameters = sorted(variables_of(constraint.lhs), key=lambda v: v.name)
            candidates: List[Tuple[Term, ...]] = (
                list(product(self.universe, repeat=len(parameters)))
                if parameters
                else [()]
            )
            for values in candidates:
                theta = Substitution(dict(zip(parameters, values)))
                lhs = theta.apply(constraint.lhs)
                rhs = theta.apply(constraint.rhs)
                if lhs in self.below and isinstance(rhs, Struct) and rhs in self.universe:
                    self.below[lhs].add(rhs)  # type: ignore[index]
