"""Interpreter recursion-limit management for deep terms.

The subtype engine and the matchers recurse structurally over terms (and
over guarded constraint-expansion chains).  Python's default recursion
limit (~1000 frames) is too small for the deep benchmark terms —
``succ^500(0)`` costs several Python frames per ``succ`` layer.  Rather
than rewriting the algorithms iteratively (obscuring their one-to-one
correspondence with the paper's definitions), entry points call
:func:`ensure_recursion_capacity` with the depth of the terms involved.

The limit is only ever *raised* (never lowered), so concurrent callers
cannot trip each other.
"""

from __future__ import annotations

import sys

from ..terms.term import Term, term_depth

__all__ = ["ensure_recursion_capacity", "FRAMES_PER_LEVEL", "BASE_HEADROOM"]

FRAMES_PER_LEVEL = 24
"""Python frames consumed per term level (generator frames included),
measured with headroom."""

BASE_HEADROOM = 2000
"""Frames reserved for pytest/callers below the engine."""


_QUANTUM = 10_000

MAX_LIMIT = 500_000
"""Hard ceiling for the raised recursion limit.

CPython's C stack bounds how deep *any* structural operation on terms can
go — even built-in equality of nested tuples recurses in C — so raising
the Python limit beyond what the C stack can honour trades a clean
``RecursionError`` for a segfault.  The ceiling corresponds to a practical
term-depth limit of roughly 20k symbols, far beyond anything the paper's
workloads produce; the variable-free subtype path additionally avoids
recursion entirely (``SubtypeEngine._holds_ground``).
"""


def ensure_recursion_capacity(*terms: Term) -> None:
    """Raise ``sys.setrecursionlimit`` so the given terms can be traversed.

    The new limit is rounded up to a multiple of a large quantum so the
    limit changes rarely (tools such as hypothesis warn when the limit
    fluctuates mid-test), and capped at :data:`MAX_LIMIT`.
    """
    deepest = max((term_depth(t) for t in terms), default=0)
    needed = BASE_HEADROOM + FRAMES_PER_LEVEL * deepest
    if sys.getrecursionlimit() < needed:
        quantised = ((needed + _QUANTUM - 1) // _QUANTUM) * _QUANTUM
        sys.setrecursionlimit(min(quantised, MAX_LIMIT))
