"""Moded well-typedness — the [DH88] direction, made concrete.

Section 7 of the paper observes that Definition 16 must *reject* queries
like ``:- p(X), q(X).`` with ``PRED p(nat)`` / ``PRED q(int)`` even
though sub→supertype flow would be harmless, because nothing stops the
information flowing the other way.  "One solution to this problem,
proposed in [DH88], is to require input/output modes which ensure that
information flows in the appropriate direction, e.g. ``PRED p(OUT nat).
PRED q(IN int).``"

This module is a faithful reconstruction of that proposal on top of the
machinery already built:

* A clause is checked with the strict Definition 16 checker first; if it
  accepts, done (strict well-typedness implies moded well-typedness).
* Otherwise, if every atom involved with a shared clause variable has a
  mode declaration, the *directional* conditions are checked instead:

  1. every argument position of every atom must individually have a
     typing under its declared position type (via the
     constraint-collecting ``match``; type-variable commitments are
     solved from the shape equations and cover constraints exactly as in
     the strict checker — only the *agreement* requirement is replaced);
  2. processing the head's ``IN`` positions, then the body left to right
     (each goal consumes its ``IN`` positions before producing its
     ``OUT`` positions), then the head's ``OUT`` positions: every
     consumer occurrence of a variable at type ``τ`` must see only
     producer occurrences at types ``σ`` with ``τ ⪰_C σ`` — information
     flows sub → supertype only — and no variable may be consumed before
     it was produced.

The reward is real expressiveness: the widening clause

    PRED nat2int(nat, int).
    MODE nat2int(IN, OUT).
    nat2int(X, X).

is ill-typed under Definition 16 (``X`` in two type contexts) but moded
well-typed here — the coercion the paper could only express by copying
the term through a filter becomes a no-op predicate.  No analogue of
Theorem 6 is claimed for the moded system (the paper leaves it open;
[DH88] prove their own variant for their language).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..lp.clause import Clause, Program, Query
from ..terms.pretty import pretty
from ..terms.substitution import Substitution
from ..terms.term import Struct, Term, Var, fresh_variable, variables_of
from .constraint_match import ConstraintMatcher
from .declarations import ConstraintSet, DeclarationError
from .infer import CommonTypeInference
from .match import MATCH_BOTTOM, MATCH_FAIL
from .modes import IN, OUT, ModeEnv
from .predicate_types import PredicateTypeEnv
from .subtype import SubtypeEngine
from .welltyped import ClauseReport, WellTypedChecker

__all__ = ["ModedClauseReport", "ModedWellTypedChecker"]


@dataclass
class ModedClauseReport:
    """Verdict plus how it was reached (``strict`` or ``directional``)."""

    well_typed: bool
    via: Optional[str] = None  # "strict" | "directional"
    reason: Optional[str] = None
    strict_report: Optional[ClauseReport] = None

    def __bool__(self) -> bool:
        return self.well_typed


@dataclass
class _Occurrence:
    """One argument-position occurrence of a clause variable."""

    atom: Struct
    position: int
    mode: str  # IN or OUT
    stage: int  # 0 = head inputs, i = body goal i, last = head outputs
    type_term: Term  # the committed position type


class ModedWellTypedChecker:
    """Strict Definition 16 with a directional (moded) fallback."""

    def __init__(
        self,
        constraints: ConstraintSet,
        predicate_types: PredicateTypeEnv,
        modes: ModeEnv,
        engine: Optional[SubtypeEngine] = None,
        strict: Optional[WellTypedChecker] = None,
    ) -> None:
        self.constraints = constraints
        self.predicate_types = predicate_types
        self.modes = modes
        self.strict = strict or WellTypedChecker(constraints, predicate_types)
        # Accepting a caller-owned engine lets the frontend share one memo
        # table across every clause check, mode check, and witness audit
        # of a file instead of re-deriving hot subtype goals per stage.
        self.engine = engine or SubtypeEngine(constraints)
        self.constraint_matcher = self.strict.constraint_matcher
        self.inference = CommonTypeInference(constraints, self.constraint_matcher)

    # -- public API ---------------------------------------------------------------

    def check_clause(self, clause: Clause) -> ModedClauseReport:
        strict_report = self.strict.check_clause(clause)
        if strict_report.well_typed:
            return ModedClauseReport(True, via="strict", strict_report=strict_report)
        return self._directional(clause.head, clause.body, strict_report)

    def check_query(self, query: Query) -> ModedClauseReport:
        strict_report = self.strict.check_query(query)
        if strict_report.well_typed:
            return ModedClauseReport(True, via="strict", strict_report=strict_report)
        return self._directional(None, query.goals, strict_report)

    def check_resolvent(self, goals: Tuple[Struct, ...]) -> ModedClauseReport:
        """Well-typedness of a resolvent — lets the typed interpreter use
        this checker for its Theorem 6-style re-checking on moded
        programs."""
        return self.check_query(Query(tuple(goals)))

    def check_program(self, program: Program) -> List[Tuple[Clause, ModedClauseReport]]:
        return [(clause, self.check_clause(clause)) for clause in program]

    # -- the directional conditions ---------------------------------------------------

    def _directional(
        self,
        head: Optional[Struct],
        body: Tuple[Struct, ...],
        strict_report: ClauseReport,
    ) -> ModedClauseReport:
        def rejected(reason: str) -> ModedClauseReport:
            return ModedClauseReport(
                False, via="directional", reason=reason, strict_report=strict_report
            )

        atoms: List[Struct] = ([head] if head is not None else []) + list(body)
        # Shared variables demand modes on every atom they touch.
        variable_atoms: Dict[Var, List[Struct]] = {}
        for atom in atoms:
            for var in variables_of(atom):
                variable_atoms.setdefault(var, []).append(atom)
        for var, touching in variable_atoms.items():
            multi_atom = len(touching) > 1
            multi_position = any(
                sum(1 for arg in atom.args for v in variables_of(arg) if v == var) > 1
                for atom in touching
            )
            if multi_atom or multi_position:
                for atom in touching:
                    if self.modes.modes_of(atom) is None:
                        return rejected(
                            f"strict check failed ({strict_report.reason}) and "
                            f"predicate {atom.functor}/{len(atom.args)} carrying "
                            f"shared variable {var} has no mode declaration"
                        )

        # Condition 1: every position types individually; collect the
        # commitment constraints exactly as the strict checker does.
        solvable: Set[Var] = set()
        rigid: Set[Var] = set()
        equations: List[Tuple[Var, Term]] = []
        covers: List[Tuple[Var, Term]] = []
        position_types: List[List[Term]] = []  # per atom, per position
        for index, atom in enumerate(atoms):
            is_head = head is not None and index == 0
            try:
                declared = self.predicate_types.type_of(atom)
            except DeclarationError as error:
                return rejected(str(error))
            if is_head:
                working = declared
                rigid |= variables_of(declared)
            else:
                renaming = {v: fresh_variable("_E") for v in variables_of(declared)}
                solvable.update(renaming.values())
                working_term = Substitution(dict(renaming)).apply(declared)
                assert isinstance(working_term, Struct)
                working = working_term
            atom_position_types: List[Term] = []
            for position, (pos_type, arg) in enumerate(zip(working.args, atom.args)):
                outcome = self.constraint_matcher.match(pos_type, arg, solvable)
                if outcome.result is MATCH_FAIL or outcome.result is MATCH_BOTTOM:
                    return rejected(
                        f"argument {position + 1} of {pretty(atom)} has no typing "
                        f"under {pretty(pos_type)} ({outcome.result!r})"
                    )
                equations.extend(outcome.equations)
                covers.extend(outcome.covers)
                atom_position_types.append(pos_type)
            position_types.append(atom_position_types)

        solution = self._solve_commitments(equations, covers, rigid)
        if solution is None:
            return rejected("type-variable commitment constraints are unsolvable")

        # Condition 2: the dataflow pass.
        occurrences = self._occurrences(head, atoms, position_types, solution)
        produced: Dict[Var, List[Term]] = {}
        ordered = sorted(occurrences, key=lambda o: (o.stage, o.mode == OUT))
        for occurrence in ordered:
            for var in self._variables_at(occurrence):
                if occurrence.mode == IN and occurrence.stage > 0:
                    # A body goal (or the head's OUT epilogue, encoded as
                    # the final stage) consumes before it produces.
                    failure = self._consume(var, occurrence, produced)
                    if failure is not None:
                        return rejected(failure)
                else:
                    produced.setdefault(var, []).append(occurrence.type_term)
        return ModedClauseReport(True, via="directional", strict_report=strict_report)

    # -- helpers -------------------------------------------------------------------------

    def _solve_commitments(
        self,
        equations: List[Tuple[Var, Term]],
        covers: List[Tuple[Var, Term]],
        rigid: Set[Var],
    ) -> Optional[Substitution]:
        """Shape equations by unification, cover constraints by common-type
        inference — the strict checker's steps 3/3b without the agreement
        equations."""
        from ..terms.unify import unify

        current = Substitution()
        for left, right in equations:
            theta = unify(current.apply(left), current.apply(right))
            if theta is None:
                return None
            current = current.compose(theta)
        groups: Dict[Var, List[Term]] = {}
        for var, term in covers:
            representative = current.apply(var)
            if isinstance(representative, Var):
                if representative in rigid:
                    return None
                groups.setdefault(representative, []).append(term)
            else:
                # Bound: verified implicitly by the flow conditions.
                continue
        inferred: Dict[Var, Term] = {}
        for var, terms in groups.items():
            candidate = self.inference.infer(terms)
            if candidate is None:
                return None
            inferred[var] = candidate
        return current.compose(Substitution(inferred))

    def _occurrences(
        self,
        head: Optional[Struct],
        atoms: List[Struct],
        position_types: List[List[Term]],
        solution: Substitution,
    ) -> List[_Occurrence]:
        out: List[_Occurrence] = []
        final_stage = len(atoms) + 1
        for index, atom in enumerate(atoms):
            is_head = head is not None and index == 0
            declared_modes = self.modes.modes_of(atom)
            for position, arg_type in enumerate(position_types[index]):
                committed = solution.apply(arg_type)
                if is_head:
                    mode = declared_modes[position] if declared_modes else IN
                    # Head INs enter at stage 0; head OUTs are consumed
                    # after the whole body (the final stage), flagged IN
                    # so the dataflow treats them as consumers.
                    if mode == IN:
                        out.append(_Occurrence(atom, position, OUT, 0, committed))
                    else:
                        out.append(_Occurrence(atom, position, IN, final_stage, committed))
                else:
                    # Body goal i is stage i (atoms[0] is the head) or
                    # stage i+1 in a query (no head at index 0).
                    stage = index if head is not None else index + 1
                    mode = declared_modes[position] if declared_modes else OUT
                    out.append(_Occurrence(atom, position, mode, stage, committed))
        return out

    def _variables_at(self, occurrence: _Occurrence) -> Set[Var]:
        return variables_of(occurrence.atom.args[occurrence.position])

    def _consume(
        self,
        var: Var,
        occurrence: _Occurrence,
        produced: Dict[Var, List[Term]],
    ) -> Optional[str]:
        productions = produced.get(var)
        if not productions:
            return (
                f"variable {var} consumed at {pretty(occurrence.atom)} "
                f"argument {occurrence.position + 1} before being produced"
            )
        for sigma in productions:
            if not self.engine.more_general(occurrence.type_term, sigma):
                return (
                    f"variable {var}: produced at {pretty(sigma)}, which does not "
                    f"flow into consumer type {pretty(occurrence.type_term)} at "
                    f"{pretty(occurrence.atom)}"
                )
        return None
