"""The ``match`` function (Definition 13, Theorems 4–5).

``match(τ, t)`` computes a most general *respectful* typing for the
variables of ``t`` under ``τ``, or reports that none exists (``fail``) or
that it cannot tell (``⊥``).  It is the basis of the well-typedness
conditions of Section 6.  The four defining clauses, transcribed:

1. ``match(τ, x) = {x ↦ τ}`` — a variable takes the whole type.
2. ``match(x, f(t1,...,tn)) = ⊥`` — a bare type variable against a
   compound term: the most general typing exists but is not respectful,
   so the answer is "don't know".
3. ``match(g(τ1,...,τn), f(t1,...,tm))`` with ``g ∈ F``:
   ``fail`` on a symbol clash, ``{}`` for matching constants, otherwise
   match componentwise; ``fail`` dominates, then ``⊥``/disagreement,
   otherwise the union of the component typings.
4. ``match(c(τ1,...,τn), f(t1,...,tm))`` with ``c ∈ T``: compute the
   *set* ``S`` of results over all one-step expansions ``c(…) →_C σ``;
   ``S = {fail}`` gives ``fail``; a unique non-fail result gives that
   result; anything else gives ``⊥``.

Note the set semantics in clause 4: two constraints producing the *same*
typing collapse to one element, while genuinely different typings (the
paper's ``match(f(int)+f(list(A)), f(X))`` example) yield ``⊥`` because
neither is most general.  An empty ``S`` (a constructor with no
constraints) also yields ``⊥`` by the letter of the definition — the
definition's ``else`` branch — even though ``fail`` would be sound; we
follow the paper.

Preconditions: the constraint set must be uniform polymorphic and guarded;
Theorem 5's termination argument (and clause 4's direct-substitution
expansion) depend on both.  The :class:`Matcher` validates this once at
construction.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, Union

from ..obs import METRICS, TRACER, CacheProbeEvent, MatchCallEvent
from ..terms.pretty import pretty
from ..terms.substitution import EMPTY_SUBSTITUTION, Substitution
from ..terms.term import Struct, Term, Var
from .automata import AUTOMATA
from .declarations import ConstraintSet
from .recursion import ensure_recursion_capacity
from .restrictions import validate_restrictions
from .typing import in_agreement, merge_typings

__all__ = ["MATCH_FAIL", "MATCH_BOTTOM", "MatchResult", "Matcher", "is_typing_result"]


class _MatchFail:
    """Singleton: no typing exists (Theorem 4.2 guarantees this claim)."""

    _instance: Optional["_MatchFail"] = None

    def __new__(cls) -> "_MatchFail":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "fail"


class _MatchBottom:
    """Singleton: ``match`` cannot produce a verdict (the paper's ``⊥``)."""

    _instance: Optional["_MatchBottom"] = None

    def __new__(cls) -> "_MatchBottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


MATCH_FAIL = _MatchFail()
MATCH_BOTTOM = _MatchBottom()

MatchResult = Union[Substitution, _MatchFail, _MatchBottom]


def is_typing_result(result: MatchResult) -> bool:
    """True iff ``result`` is an actual typing (not ``fail`` / ``⊥``)."""
    return isinstance(result, Substitution)


class Matcher:
    """``match`` over a fixed uniform, guarded constraint set."""

    def __init__(
        self,
        constraints: ConstraintSet,
        validate: bool = True,
        memoize: bool = True,
        automata: bool = True,
    ) -> None:
        if validate:
            validate_restrictions(constraints)
        self.constraints = constraints
        self.symbols = constraints.symbols
        self.memoize = memoize
        self._memo: Dict[Tuple[Term, Term], MatchResult] = {}
        #: Compiled tree automaton: ground (τ, t) pairs — where a typing
        #: is necessarily empty — are answered by its three-valued table
        #: walk; everything else keeps the clause-by-clause evaluation.
        self._automaton = AUTOMATA.automaton_for(constraints) if automata else None

    def match(self, type_term: Term, term: Term) -> MatchResult:
        """``match(τ, t)`` per Definition 13."""
        ensure_recursion_capacity(type_term, term)
        if METRICS.enabled or TRACER.enabled:
            return self._match_observed(type_term, term)
        return self._match(type_term, term)

    def _match_observed(self, type_term: Term, term: Term) -> MatchResult:
        """Telemetry wrapper around one public ``match`` call."""
        handle = TRACER.begin() if TRACER.enabled else None
        start = time.perf_counter()
        result = self._match(type_term, term)
        elapsed = time.perf_counter() - start
        if result is MATCH_FAIL:
            outcome = "fail"
        elif result is MATCH_BOTTOM:
            outcome = "bottom"
        else:
            outcome = "typing"
        if METRICS.enabled:
            METRICS.inc("match.calls")
            METRICS.inc(f"match.{outcome}")
            METRICS.observe("match.match", elapsed)
        if handle is not None:
            TRACER.end(
                handle,
                MatchCallEvent,
                matcher="plain",
                type_term=pretty(type_term),
                term=pretty(term),
                outcome=outcome,
                typed_variables=len(result) if isinstance(result, Substitution) else 0,
            )
        return result

    def _match(self, type_term: Term, term: Term) -> MatchResult:
        # Clause 1: a variable term takes the whole type.
        if isinstance(term, Var):
            return Substitution({term: type_term})
        # Clause 2: a type variable against a compound term.
        if isinstance(type_term, Var):
            return MATCH_BOTTOM
        if self.memoize:
            key = (type_term, term)
            cached = self._memo.get(key)
            if TRACER.enabled:
                TRACER.point(
                    CacheProbeEvent, cache="match.memo", hit=cached is not None
                )
            if cached is None:
                cached = self._match_resolved(type_term, term)
                self._memo[key] = cached
            return cached
        return self._match_resolved(type_term, term)

    def _match_resolved(self, type_term: Struct, term: Struct) -> MatchResult:
        """Dispatch a struct/struct pair: automaton table walk when both
        sides are ground (a respectful typing of a ground term is the
        empty substitution, so only the verdict needs computing), else
        the clause 3/4 evaluation."""
        automaton = self._automaton
        if automaton is not None and type_term.ground and term.ground:
            verdict = automaton.match_ground(type_term, term)
            if METRICS.enabled:
                METRICS.inc("subtype.automaton.match_hits")
            if verdict == "typing":
                return EMPTY_SUBSTITUTION
            return MATCH_FAIL if verdict == "fail" else MATCH_BOTTOM
        return self._match_struct(type_term, term)

    def _match_struct(self, type_term: Struct, term: Struct) -> MatchResult:
        if self.symbols.is_type_constructor(type_term.functor):
            return self._match_constructor(type_term, term)
        return self._match_function(type_term, term)

    def _match_function(self, type_term: Struct, term: Struct) -> MatchResult:
        """Clause 3: the type is headed by a function symbol ``g ∈ F``."""
        if type_term.functor != term.functor or len(type_term.args) != len(term.args):
            return MATCH_FAIL
        if not type_term.args:
            return Substitution()
        results = [self._match(tau, t) for tau, t in zip(type_term.args, term.args)]
        if any(r is MATCH_FAIL for r in results):
            return MATCH_FAIL
        if any(r is MATCH_BOTTOM for r in results):
            return MATCH_BOTTOM
        typings: List[Substitution] = results  # type: ignore[assignment]
        if not in_agreement(typings):
            return MATCH_BOTTOM
        return merge_typings(typings)

    def _match_constructor(self, type_term: Struct, term: Struct) -> MatchResult:
        """Clause 4: the type is headed by a type constructor ``c ∈ T``."""
        outcomes: List[MatchResult] = []
        for expansion in self.constraints.expansions(type_term):
            if METRICS.enabled:
                METRICS.inc("match.constraint_expansions")
            result = self._match(expansion, term)
            if result not in outcomes:
                outcomes.append(result)
        if outcomes == [MATCH_FAIL]:
            return MATCH_FAIL
        non_fail = [r for r in outcomes if r is not MATCH_FAIL]
        if len(non_fail) == 1 and len(outcomes) <= 2:
            return non_fail[0]
        return MATCH_BOTTOM
