"""``--typed-run``: subject reduction asserted per resolution step.

Theorem 6 (Consistency) promises that every resolvent of a well-typed
query against a well-typed program stays well-typed.  For the Section 7
moded extension the corresponding guarantee is Theorem 6 of
Smaus–Fages–Deransart ("Using Modes to Ensure Subject Reduction for
Typed Logic Programs with Subtyping"): a well-*moded* program keeps its
resolvents well-typed even when information widens sub→supertype
through mode declarations.

:class:`TypedRunner` is the dynamic witness for both: it drives the
stock SLD engine and re-checks **every** resolvent through the module's
checker — :class:`~repro.core.moded_welltyped.ModedWellTypedChecker`
when ``MODE`` declarations are present, the strict Definition 16
:class:`~repro.core.welltyped.WellTypedChecker` otherwise.  Unlike
:class:`~repro.core.typed_resolution.TypedInterpreter` (the experiment
harness, which *collects* violations), the runner **aborts** at the
first violated resolvent: the recorded
:class:`SubjectReductionViolation` carries the step index, the
offending resolvent, and the checker's reason, and the CLI renders it
as a span-carrying diagnostic under :data:`TYPED_RUN_CODE`.

Telemetry rides under ``typed_run.*`` (steps, violations, queries,
answers, aborts, and the ``typed_run.query`` timer) and every step
emits a :class:`~repro.obs.events.SubjectReductionEvent` when tracing
is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..lp.clause import Program, Query
from ..lp.database import Database
from ..lp.resolution import SLDEngine
from ..obs import METRICS, TRACER, SubjectReductionEvent
from ..terms.pretty import pretty
from ..terms.substitution import Substitution
from ..terms.term import Struct
from .moded_welltyped import ModedClauseReport, ModedWellTypedChecker
from .welltyped import WellTypedChecker

__all__ = [
    "TYPED_RUN_CODE",
    "SubjectReductionViolation",
    "TypedRunResult",
    "TypedRunner",
]

#: Stable diagnostic code for a dynamic subject-reduction violation —
#: outside the registered TLP5xx *static* rule family on purpose: the
#: verdict comes from execution, not from a lint pass.
TYPED_RUN_CODE = "TLP590"


@dataclass(frozen=True)
class SubjectReductionViolation:
    """The first resolvent that failed its per-step re-check."""

    step: int  # 1-based resolution step within the query
    goals: Tuple[Struct, ...]  # the offending resolvent
    reason: str  # the checker's rejection reason
    via: Optional[str] = None  # "strict" | "directional" (moded checker only)

    def render(self) -> str:
        resolvent = ", ".join(pretty(goal) for goal in self.goals)
        return (
            f"subject reduction violated at resolution step {self.step}: "
            f"resolvent `{resolvent}` is not well-typed — {self.reason}"
        )


@dataclass
class TypedRunResult:
    """Answers plus the per-step evidence for one query."""

    query: Query
    answers: List[Substitution] = field(default_factory=list)
    steps: int = 0
    violation: Optional[SubjectReductionViolation] = None

    @property
    def ok(self) -> bool:
        """True iff every resolvent passed its subject-reduction check."""
        return self.violation is None

    @property
    def aborted(self) -> bool:
        return self.violation is not None


class _Abort(Exception):
    """Internal: unwinds the SLD engine at the first violated resolvent."""

    def __init__(self, violation: SubjectReductionViolation) -> None:
        super().__init__(violation.reason)
        self.violation = violation


class TypedRunner:
    """SLD execution in the mode-checked configuration of Theorem 6.

    ``checker`` is whatever the frontend built for the module: the moded
    checker for files with ``MODE`` declarations (so widening clauses
    like ``nat2int(X, X)`` do not trip false alarms), the strict
    Definition 16 checker otherwise.  Both expose ``check_resolvent``.
    """

    def __init__(
        self,
        checker: Union[WellTypedChecker, ModedWellTypedChecker],
        program: Program,
        first_arg_indexing: bool = True,
    ) -> None:
        self.checker = checker
        self.database = Database(program, first_arg_indexing=first_arg_indexing)

    def run(
        self,
        query: Query,
        max_answers: Optional[int] = None,
        depth_limit: Optional[int] = None,
        abort_on_violation: bool = True,
    ) -> TypedRunResult:
        """Execute ``query``, asserting subject reduction at every step.

        With ``abort_on_violation`` (the default) the run stops at the
        first ill-typed resolvent and the result records it; otherwise
        the first violation is still recorded but execution continues —
        useful for measuring how far an ill-moded program runs.
        """
        result = TypedRunResult(query)

        def on_resolvent(goals: Tuple[Struct, ...]) -> None:
            result.steps += 1
            if METRICS.enabled:
                METRICS.inc("typed_run.steps")
            if not goals:
                return  # the empty clause: success, trivially well-typed
            report = self.checker.check_resolvent(goals)
            via = report.via if isinstance(report, ModedClauseReport) else "strict"
            if TRACER.enabled:
                TRACER.point(
                    SubjectReductionEvent,
                    step=result.steps,
                    size=len(goals),
                    well_typed=bool(report.well_typed),
                    via=via,
                    reason=None if report.well_typed else report.reason,
                )
            if report.well_typed:
                return
            violation = SubjectReductionViolation(
                step=result.steps,
                goals=goals,
                reason=report.reason or "unknown",
                via=via,
            )
            if METRICS.enabled:
                METRICS.inc("typed_run.violations")
            if result.violation is None:
                result.violation = violation
            if abort_on_violation:
                raise _Abort(violation)

        engine = SLDEngine(self.database, on_resolvent=on_resolvent)
        if METRICS.enabled:
            METRICS.inc("typed_run.queries")
        detail = (
            ", ".join(pretty(goal) for goal in query.goals)
            if TRACER.enabled
            else ""
        )
        with METRICS.time("typed_run.query"), TRACER.span("typed_run", detail):
            try:
                for answer in engine.solve(query.goals, depth_limit=depth_limit):
                    result.answers.append(answer)
                    if max_answers is not None and len(result.answers) >= max_answers:
                        break
            except _Abort:
                if METRICS.enabled:
                    METRICS.inc("typed_run.aborts")
        if METRICS.enabled:
            METRICS.inc("typed_run.answers", len(result.answers))
            METRICS.gauge_max("typed_run.max_steps_per_query", result.steps)
        return result
