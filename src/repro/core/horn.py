"""The Horn theory ``H_C`` of the subtype predicate ``>=`` (Section 2).

Given a set ``C`` of subtype constraints, the paper defines the meaning of
types through the Horn-clause program ``H_C`` containing

* each constraint of ``C`` as a fact ``lhs >= rhs.``;
* a **substitution axiom** for every symbol ``s/n ∈ F ∪ T``::

      s(α1,...,αn) >= s(β1,...,βn) :- α1 >= β1, ..., αn >= βn.

  with the degenerate fact ``s >= s.`` when ``n = 0``;
* the **transitivity axiom** ``A >= C :- A >= B, B >= C.``

Subtyping (Definition 3) is then SLD-refutability of ``:- τ1 >= τ2`` from
``H_C``, which ``repro.core.subtype_sld`` implements literally.

``extra_constants`` lets callers extend the alphabet with the fresh
constants produced by :func:`repro.terms.freeze.freeze` — the paper's
``τ̄`` operation introduces "unique constants not appearing in any type",
and those constants need their degenerate ``s >= s.`` axioms to be
reflexive like every other symbol.
"""

from __future__ import annotations

from typing import Iterable

from ..lp.clause import Clause, Program
from ..terms.term import Struct, Term, Var
from .declarations import ConstraintSet

__all__ = ["SUBTYPE_PREDICATE", "subtype_goal", "horn_program"]

SUBTYPE_PREDICATE = ">="


def subtype_goal(supertype: Term, subtype: Term) -> Struct:
    """The atom ``supertype >= subtype`` as a goal for the SLD engine."""
    return Struct(SUBTYPE_PREDICATE, (supertype, subtype))


def _substitution_axiom(name: str, arity: int) -> Clause:
    """``s(α...) >= s(β...) :- α1 >= β1, ..., αn >= βn.`` (fact when n=0)."""
    if arity == 0:
        constant = Struct(name, ())
        return Clause(subtype_goal(constant, constant))
    alphas = tuple(Var(f"A{i}") for i in range(arity))
    betas = tuple(Var(f"B{i}") for i in range(arity))
    head = subtype_goal(Struct(name, alphas), Struct(name, betas))
    body = tuple(subtype_goal(a, b) for a, b in zip(alphas, betas))
    return Clause(head, body)


def _transitivity_axiom() -> Clause:
    a, b, c = Var("A"), Var("B"), Var("C")
    return Clause(subtype_goal(a, c), (subtype_goal(a, b), subtype_goal(b, c)))


def horn_program(
    constraints: ConstraintSet,
    extra_constants: Iterable[str] = (),
) -> Program:
    """Build ``H_C`` for ``constraints`` (plus axioms for ``extra_constants``).

    Clause order: constraint facts first (in declaration order), then
    substitution axioms, then transitivity — the order is semantically
    irrelevant but fixed for reproducibility of the naive prover's
    search statistics.
    """
    program = Program()
    for constraint in constraints:
        program.add(Clause(subtype_goal(constraint.lhs, constraint.rhs)))
    symbols = constraints.symbols
    for name, arity in sorted(symbols.functions.items()):
        program.add(_substitution_axiom(name, arity))
    for name, arity in sorted(symbols.type_constructors.items()):
        program.add(_substitution_axiom(name, arity))
    for name in sorted(set(extra_constants)):
        program.add(_substitution_axiom(name, 0))
    program.add(_transitivity_axiom())
    return program
