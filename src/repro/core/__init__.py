"""The paper's type system: declarations, subtyping, match, well-typedness."""

from .builtins import (
    BUILTIN_MODES,
    BUILTIN_PREDICATES,
    builtin_heads,
    is_builtin_goal,
    is_builtin_indicator,
    numeric_type_name,
    uses_builtin_goals,
)
from .constraint_match import ConstraintMatcher, ConstraintMatchResult, ShapeEquation
from .declarations import (
    ConstraintSet,
    DeclarationError,
    SubtypeConstraint,
    SymbolKind,
    SymbolTable,
    UNION_CONSTRAINTS,
)
from .derivation import Derivation, DerivationBuilder, DerivationStep, verify_derivation
from .filtering import FilterDefinition, constructor_shapes, deep_filter, shallow_filter
from .fixpoint import LeastModel, expansion_closed_universe
from .horn import SUBTYPE_PREDICATE, horn_program, subtype_goal
from .infer import CommonTypeInference
from .match import MATCH_BOTTOM, MATCH_FAIL, Matcher, MatchResult, is_typing_result
from .moded_welltyped import ModedClauseReport, ModedWellTypedChecker
from .modes import IN, OUT, ModeChecker, ModeEnv, ModeReport, ModeViolation
from .predicate_types import PredicateTypeEnv
from .restrictions import (
    DependenceGraph,
    RestrictionViolation,
    direct_dependence_graph,
    is_guarded,
    is_uniform_polymorphic,
    non_uniform_constraints,
    unguarded_constructors,
    validate_restrictions,
)
from .semantics import GeneralTypeSemantics, TypeSemantics, herbrand_universe
from .subtype import SubtypeEngine, SubtypeStats
from .subtype_sld import NaiveSubtypeProver, NaiveVerdict
from .typed_resolution import TypedExecutionError, TypedExecutionResult, TypedInterpreter
from .typed_run import (
    TYPED_RUN_CODE,
    SubjectReductionViolation,
    TypedRunResult,
    TypedRunner,
)
from .typing import (
    in_agreement,
    is_respectful_typing,
    is_typing,
    merge_typings,
    more_general_typing,
)
from .welltyped import AtomCheck, ClauseReport, ProgramReport, WellTypedChecker

__all__ = [
    # built-in constraint predicates (typed-CLP extension)
    "BUILTIN_MODES",
    "BUILTIN_PREDICATES",
    "builtin_heads",
    "is_builtin_goal",
    "is_builtin_indicator",
    "numeric_type_name",
    "uses_builtin_goals",
    # declarations
    "SymbolTable",
    "SymbolKind",
    "SubtypeConstraint",
    "ConstraintSet",
    "DeclarationError",
    "UNION_CONSTRAINTS",
    # horn / provers
    "SUBTYPE_PREDICATE",
    "horn_program",
    "subtype_goal",
    "NaiveSubtypeProver",
    "NaiveVerdict",
    "SubtypeEngine",
    "SubtypeStats",
    # restrictions
    "RestrictionViolation",
    "DependenceGraph",
    "direct_dependence_graph",
    "is_uniform_polymorphic",
    "non_uniform_constraints",
    "is_guarded",
    "unguarded_constructors",
    "validate_restrictions",
    # semantics
    "TypeSemantics",
    "GeneralTypeSemantics",
    "herbrand_universe",
    # typings and match
    "is_typing",
    "is_respectful_typing",
    "more_general_typing",
    "in_agreement",
    "merge_typings",
    "Matcher",
    "MatchResult",
    "MATCH_FAIL",
    "MATCH_BOTTOM",
    "is_typing_result",
    "ConstraintMatcher",
    "ConstraintMatchResult",
    "ShapeEquation",
    # well-typedness and execution
    "PredicateTypeEnv",
    "WellTypedChecker",
    "ClauseReport",
    "ProgramReport",
    "AtomCheck",
    "TypedInterpreter",
    "TYPED_RUN_CODE",
    "SubjectReductionViolation",
    "TypedRunResult",
    "TypedRunner",
    "TypedExecutionResult",
    "TypedExecutionError",
    # extensions
    "IN",
    "OUT",
    "ModeEnv",
    "ModeChecker",
    "ModeReport",
    "ModeViolation",
    "ModedWellTypedChecker",
    "ModedClauseReport",
    "CommonTypeInference",
    "FilterDefinition",
    "constructor_shapes",
    "shallow_filter",
    "deep_filter",
    # semantics cross-checks and proof objects
    "LeastModel",
    "expansion_closed_universe",
    "Derivation",
    "DerivationStep",
    "DerivationBuilder",
    "verify_derivation",
]
