"""Built-in constraint predicates of the typed-CLP extension.

"Typing Constraint Logic Programs" (Fages & Coquery) extends the
paper's prescriptive discipline (S4-S7) to constraint logic programs by
giving the built-in constraint predicates *declared subtype signatures*
exactly like user predicates.  We ship the four arithmetic comparators
the surface syntax knows about::

    X < Y      '<'(X, Y)       comparison
    X =< Y     '=<'(X, Y)      comparison
    X =:= Y    '=:='(X, Y)     arithmetic equality
    X is E     'is'(X, E)      evaluation (X takes the value of E)

Each is typed over the *numeric* type of the declared lattice: ``int``
when the program declares it, else ``nat``.  A program that declares
neither numeric type has no built-in signatures — built-in goals are
then flagged by the lint layer rather than silently accepted.

Signatures are injected into the checker's :class:`PredicateTypeEnv`
only when the source actually uses a built-in goal, so programs in the
paper's pure fragment are checked byte-for-byte as before.  A user
declaration for a built-in indicator always wins (the injection skips
it); the lint layer reports the shadowing as TLP605.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..terms import Struct, Term

__all__ = [
    "BUILTIN_PREDICATES",
    "BUILTIN_MODES",
    "NUMERIC_TYPES",
    "builtin_heads",
    "is_builtin_goal",
    "is_builtin_indicator",
    "numeric_type_name",
    "uses_builtin_goals",
]

#: name -> arity of every built-in constraint predicate.
BUILTIN_PREDICATES: Dict[str, int] = {"<": 2, "=<": 2, "=:=": 2, "is": 2}

#: Declared modes for the built-ins (Section 7 vocabulary): comparisons
#: consume both arguments; ``X is E`` produces ``X`` from ``E``.
BUILTIN_MODES: Dict[str, Tuple[str, ...]] = {
    "<": ("IN", "IN"),
    "=<": ("IN", "IN"),
    "=:=": ("IN", "IN"),
    "is": ("OUT", "IN"),
}

#: Numeric types a built-in signature ranges over, widest first.
NUMERIC_TYPES: Tuple[str, ...] = ("int", "nat")


def is_builtin_indicator(name: str, arity: int) -> bool:
    """True iff ``name/arity`` is a built-in constraint predicate."""
    return BUILTIN_PREDICATES.get(name) == arity


def is_builtin_goal(goal: Struct) -> bool:
    """True iff ``goal`` is a call to a built-in constraint predicate."""
    return is_builtin_indicator(goal.functor, len(goal.args))


def uses_builtin_goals(goals: Iterable[Struct]) -> bool:
    """True iff any of ``goals`` calls a built-in constraint predicate."""
    return any(is_builtin_goal(goal) for goal in goals)


def numeric_type_name(declared_types: Iterable[str]) -> Optional[str]:
    """The numeric type built-ins range over in this program.

    ``int`` when declared, else ``nat`` when declared, else ``None``
    (the program has no numeric lattice and built-ins stay untyped).
    """
    declared = set(declared_types)
    for name in NUMERIC_TYPES:
        if name in declared:
            return name
    return None


def builtin_heads(declared_types: Iterable[str]) -> Tuple[Struct, ...]:
    """Declared-signature heads for every built-in, as ``PRED``-style
    type applications (e.g. ``'<'(int, int)``) over the program's
    numeric type.  Empty when the program declares no numeric type.
    """
    numeric = numeric_type_name(declared_types)
    if numeric is None:
        return ()
    tau: Term = Struct(numeric, ())
    return tuple(
        Struct(name, (tau,) * arity)
        for name, arity in sorted(BUILTIN_PREDICATES.items())
    )
