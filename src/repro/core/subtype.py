"""Deterministic subtype derivation (Section 3, Theorems 1–3).

This engine decides ``τ1 ⪰_C τ2`` without searching the full SLD tree of
``H_C``.  It selects "clauses" by the outermost symbol of the *supertype*,
exactly as the paper's refutation strategy prescribes:

* **Theorem 1** (supertype headed by ``f ∈ F``): a refutation exists iff
  the subtype is headed by the same ``f`` and each argument pair is in the
  subtype relation (the substitution axiom, applied componentwise).
  Undeclared constants — the frozen constants of ``τ̄`` — behave like
  0-ary function symbols here.
* **Theorem 2** (supertype headed by ``c ∈ T``): try the substitution
  axiom when the subtype is also ``c``-headed, and the *two-step
  application* of each constraint ``c(α1,...,αn) >= τ ∈ C``, which
  rewrites the supertype to ``τ{α_i ↦ τ_i}`` and recurses.
* **Theorem 3**: guardedness (checked up front via
  ``repro.core.restrictions``) makes every chain of two-step applications
  finite, so the recursion terminates.

Variables are handled by binding (with occurs check): a variable on
either side is unified with the other side, which suffices for the
*existential* question ⪰ asks.  This is complete for the goals the paper
needs (in particular the ``more general`` checks of Definitions 5/10/11,
whose right side is frozen), but deliberately does not enumerate every
answer substitution — when a variable is constrained from two sides whose
least upper bound would require a name-based union the engine, like the
paper's ``match``, can miss solutions.  The differential tests against
the naive prover pin down exactly the regime where both agree.

Ground subgoals are memoised per engine (ablation A1 measures the effect).

Ground goals additionally ride the compiled tree automaton of
``repro.core.automata`` when one exists for this constraint set (uniform
and guarded; the process-wide ``AUTOMATA`` store compiles once per
fingerprint): membership and ground-subtype queries become table walks
over interned node ids, with this module's AND-OR evaluation as the
automatic fallback (``--no-automata`` / non-uniform sets / refused
roots).  Verdicts are identical by construction and pinned by the
differential suite.

Observability: every public ``holds`` query is mirrored into
``repro.obs`` when telemetry is enabled — a ``subtype.goals`` counter,
per-goal work deltas (substitution steps, constraint expansions, memo
traffic), a ``subtype.holds`` timer, and a ``subtype_goal`` trace span
under which rule selections, expansions, failure reasons, and memo
probes nest as child events.  With telemetry disabled the only cost is
one flag check in ``holds`` before dispatching to the seed code path
(``_holds_core``); the overhead guard in ``tests/obs`` pins this below
5%.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..obs import METRICS, TRACER, CacheProbeEvent, PhaseEvent, SubtypeGoalEvent
from ..terms.freeze import freeze
from ..terms.pretty import pretty
from ..terms.term import Struct, Term, Var
from .automata import AUTOMATA
from .declarations import ConstraintSet
from .recursion import ensure_recursion_capacity
from .restrictions import validate_restrictions

__all__ = ["SubtypeStats", "SubtypeEngine"]


@dataclass
class SubtypeStats:
    """Work counters for one engine instance."""

    substitution_steps: int = 0
    constraint_expansions: int = 0
    variable_bindings: int = 0
    memo_hits: int = 0
    memo_entries: int = 0
    #: ground goals answered by the compiled tree automaton.
    automaton_hits: int = 0
    #: ground goals that wanted the automaton but fell back to the
    #: AND-OR walk (store disabled mid-flight, non-uniform set, ...).
    automaton_fallbacks: int = 0


class SubtypeEngine:
    """Decision procedure for ``⪰_C`` over a uniform, guarded set ``C``."""

    def __init__(
        self,
        constraints: ConstraintSet,
        memoize: bool = True,
        validate: bool = True,
        shared_memo: "object" = None,
        automata: bool = True,
    ) -> None:
        if validate:
            validate_restrictions(constraints)
        self.constraints = constraints
        self.symbols = constraints.symbols
        self.memoize = memoize
        self.stats = SubtypeStats()
        self._memo: Dict[Tuple[Term, Term], bool] = {}
        #: True when ``_memo`` is a table borrowed from a process-wide
        #: :class:`repro.core.shared_memo.SharedSubtypeMemo` rather than
        #: this engine's own dict.  Sharing is strictly opt-in: the plain
        #: constructor always starts cold (differential tests and the
        #: engine-sharing regression tests rely on that), the checker
        #: frontend and the batch service pass ``shared_memo=SHARED_MEMO``.
        self._memo_shared = False
        if shared_memo is not None and memoize:
            table = shared_memo.table_for(constraints)
            if table is not None:
                self._memo = table
                self._memo_shared = True
        self._bindings: Dict[Var, Term] = {}
        self._trail: List[Var] = []
        #: Compiled tree automaton for ground goals (None for non-uniform
        #: or unguarded sets, or when the store/flag disables it).  The
        #: ``_automaton_requested`` flag distinguishes "opted out" from
        #: "wanted one but none exists" so the fallback counter is exact.
        self._automaton = AUTOMATA.automaton_for(constraints) if automata else None
        self._automaton_requested = automata and AUTOMATA.enabled

    # -- public queries ------------------------------------------------------

    def holds(self, supertype: Term, subtype: Term) -> bool:
        """``τ1 ⪰_C τ2`` — existence of a refutation (Definition 3)."""
        if METRICS.enabled or TRACER.enabled:
            return self._holds_observed(supertype, subtype)
        return self._holds_core(supertype, subtype)

    def _holds_observed(self, supertype: Term, subtype: Term) -> bool:
        """The :meth:`holds` telemetry wrapper (only runs while enabled)."""
        stats = self.stats
        before = (
            stats.substitution_steps,
            stats.constraint_expansions,
            stats.memo_hits,
            stats.memo_entries,
            stats.variable_bindings,
            stats.automaton_hits,
            stats.automaton_fallbacks,
        )
        handle = TRACER.begin() if TRACER.enabled else None
        start = time.perf_counter()
        result = self._holds_core(supertype, subtype)
        elapsed = time.perf_counter() - start
        steps = stats.substitution_steps - before[0]
        expansions = stats.constraint_expansions - before[1]
        if METRICS.enabled:
            METRICS.inc("subtype.goals")
            METRICS.inc("subtype.true" if result else "subtype.false")
            if steps:
                METRICS.inc("subtype.substitution_steps", steps)
            if expansions:
                METRICS.inc("subtype.expansions", expansions)
            memo_hits = stats.memo_hits - before[2]
            if memo_hits:
                METRICS.inc("subtype.memo_hits", memo_hits)
            memo_entries = stats.memo_entries - before[3]
            if memo_entries:
                METRICS.inc("subtype.memo_entries", memo_entries)
            bindings = stats.variable_bindings - before[4]
            if bindings:
                METRICS.inc("subtype.variable_bindings", bindings)
            automaton_hits = stats.automaton_hits - before[5]
            if automaton_hits:
                METRICS.inc("subtype.automaton.hits", automaton_hits)
            automaton_fallbacks = stats.automaton_fallbacks - before[6]
            if automaton_fallbacks:
                METRICS.inc("subtype.automaton.fallbacks", automaton_fallbacks)
            if self._memo_shared:
                # Mirror the memo traffic under the shared-memo namespace so
                # cross-engine reuse is visible separately from per-engine
                # memoisation (the per-file engines of a batch run all write
                # into one table; see repro.core.shared_memo).
                shared_hits = stats.memo_hits - before[2]
                if shared_hits:
                    METRICS.inc("subtype.shared_memo.hits", shared_hits)
                shared_entries = stats.memo_entries - before[3]
                if shared_entries:
                    METRICS.inc("subtype.shared_memo.entries", shared_entries)
            METRICS.observe("subtype.holds", elapsed)
        if handle is not None:
            TRACER.end(
                handle,
                SubtypeGoalEvent,
                supertype=pretty(supertype),
                subtype=pretty(subtype),
                engine="strategy",
                result=result,
                substitution_steps=steps,
                expansions=expansions,
                reason=None if result else "no_refutation",
            )
        return result

    def _holds_core(self, supertype: Term, subtype: Term) -> bool:
        """The seed decision procedure, untouched by telemetry."""
        if (
            isinstance(supertype, Struct)
            and isinstance(subtype, Struct)
            and supertype.ground
            and subtype.ground
        ):
            # Variable-free goals — the membership/frozen-comparison case,
            # where terms can be arbitrarily deep — are decided by the
            # compiled tree automaton when one exists, else with an
            # explicit-stack AND-OR evaluation: recursive generators would
            # consume C stack per nesting level and cannot survive terms
            # tens of thousands of symbols deep.
            automaton = self._automaton
            if automaton is not None:
                if supertype == subtype:
                    return True
                memo = self._memo if self.memoize else {}
                root = (supertype, subtype)
                cached = memo.get(root)
                if TRACER.enabled:
                    TRACER.point(
                        CacheProbeEvent,
                        cache="subtype.ground_memo",
                        hit=cached is not None,
                    )
                if cached is not None:
                    self.stats.memo_hits += 1
                    return cached
                verdict = automaton.holds(supertype, subtype)
                self.stats.automaton_hits += 1
                memo[root] = verdict
                self.stats.memo_entries += 1
                return verdict
            if self._automaton_requested:
                self.stats.automaton_fallbacks += 1
            return self._holds_ground(supertype, subtype)
        ensure_recursion_capacity(supertype, subtype)
        self._bindings.clear()
        self._trail.clear()
        for _ in self._prove(supertype, subtype):
            return True
        return False

    def contains(self, type_term: Term, ground_term: Term) -> bool:
        """``t ∈ M_C[[τ]]`` (Definition 4)."""
        return self.holds(type_term, ground_term)

    def more_general(self, general: Term, specific: Term) -> bool:
        """Definition 5: ``τ1 ⪰_C τ̄2``."""
        return self.holds(general, freeze(specific))

    def equivalent(self, left: Term, right: Term) -> bool:
        """Mutual generality (each side more general than the other)."""
        return self.more_general(left, right) and self.more_general(right, left)

    # -- ground goals: iterative AND-OR evaluation --------------------------------

    def _ground_alternatives(
        self, supertype: Struct, subtype: Struct
    ) -> List[Tuple[Tuple[Term, Term], ...]]:
        """The disjuncts for a ground goal, each a conjunction of subgoals.

        Theorem 1 (function symbol): one alternative — componentwise via
        the substitution axiom — or none on a symbol clash.  Theorem 2
        (type constructor): the substitution axiom (same constructor)
        plus one alternative per constraint's two-step application.
        """
        alternatives: List[Tuple[Tuple[Term, Term], ...]] = []
        same_symbol = (
            supertype.functor == subtype.functor
            and len(supertype.args) == len(subtype.args)
        )
        trace_on = TRACER.enabled
        if not self.symbols.is_type_constructor(supertype.functor):
            if same_symbol:
                self.stats.substitution_steps += 1
                alternatives.append(tuple(zip(supertype.args, subtype.args)))
            elif trace_on:
                TRACER.point(
                    PhaseEvent,
                    name="subtype_fail",
                    detail=(
                        f"symbol clash {supertype.functor}/{len(supertype.args)}"
                        f" vs {subtype.functor}/{len(subtype.args)}"
                    ),
                )
            return alternatives
        if same_symbol:
            self.stats.substitution_steps += 1
            alternatives.append(tuple(zip(supertype.args, subtype.args)))
        expansions = self.constraints.expansions(supertype)
        self.stats.constraint_expansions += len(expansions)
        for expansion in expansions:
            if trace_on:
                TRACER.point(
                    PhaseEvent,
                    name="subtype_rule",
                    detail=f"expand {pretty(supertype)} -> {pretty(expansion)}",
                )
            alternatives.append(((expansion, subtype),))
        return alternatives

    def _holds_ground(self, supertype: Struct, subtype: Struct) -> bool:
        """Decide a variable-free goal without Python recursion.

        Evaluates the AND-OR dag rooted at ``(supertype, subtype)`` with
        an explicit stack; guardedness (Theorem 3) makes the dag acyclic,
        and results are memoised across calls when ``memoize`` is set.
        """
        memo = self._memo if self.memoize else {}

        class _GFrame:
            __slots__ = ("key", "alternatives", "alt_index", "pair_index")

            def __init__(self, key: Tuple[Term, Term], alternatives) -> None:
                self.key = key
                self.alternatives = alternatives
                self.alt_index = 0
                self.pair_index = 0

        root = (supertype, subtype)
        if supertype == subtype:
            return True
        cached = memo.get(root)
        if TRACER.enabled:
            # Only the root probe is traced: the inner AND-OR loop probes
            # the memo once per node and would swamp the stream.
            TRACER.point(
                CacheProbeEvent, cache="subtype.ground_memo", hit=cached is not None
            )
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        stack = [_GFrame(root, self._ground_alternatives(supertype, subtype))]
        while stack:
            frame = stack[-1]
            if frame.alt_index >= len(frame.alternatives):
                memo[frame.key] = False
                self.stats.memo_entries += 1
                stack.pop()
                continue
            alternative = frame.alternatives[frame.alt_index]
            if frame.pair_index >= len(alternative):
                memo[frame.key] = True
                self.stats.memo_entries += 1
                stack.pop()
                continue
            child_sup, child_sub = alternative[frame.pair_index]
            if child_sup == child_sub:
                frame.pair_index += 1
                continue
            child_key = (child_sup, child_sub)
            value = memo.get(child_key)
            if value is None:
                assert isinstance(child_sup, Struct) and isinstance(child_sub, Struct)
                stack.append(
                    _GFrame(
                        child_key,
                        self._ground_alternatives(child_sup, child_sub),
                    )
                )
                continue
            self.stats.memo_hits += 1
            if value:
                frame.pair_index += 1
            else:
                frame.alt_index += 1
                frame.pair_index = 0
        return memo[root]

    # -- bindings ------------------------------------------------------------

    def _walk(self, term: Term) -> Term:
        while isinstance(term, Var) and term in self._bindings:
            term = self._bindings[term]
        return term

    def _resolve(self, term: Term) -> Tuple[Term, bool]:
        """Deep-apply current bindings; also report groundness.

        A ground term (O(1) check, cached on the Struct) needs no walk;
        with no bindings at all nothing can change either.  These two
        short-circuits keep the memo path linear on ground queries.
        """
        term = self._walk(term)
        if isinstance(term, Var):
            return term, False
        if term.ground:
            return term, True
        if not self._bindings:
            return term, False
        # Iterative rebuild (deep terms must not exhaust the C stack).
        # Each frame is [node, built_args]; len(built_args) is the index
        # of the next child to process.  A variable child walks to its
        # binding first; a ground child is shared untouched.
        frames: List[List[object]] = [[term, []]]
        result: Term = term
        result_ground = False
        while frames:
            node, built = frames[-1]
            args = node.args  # type: ignore[union-attr]
            index = len(built)  # type: ignore[arg-type]
            if index < len(args):
                child = self._walk(args[index])
                if isinstance(child, Var) or child.ground:
                    built.append(child)  # type: ignore[union-attr]
                else:
                    frames.append([child, []])
                continue
            frames.pop()
            rebuilt: Term = Struct(node.functor, tuple(built))  # type: ignore[union-attr,arg-type]
            if frames:
                frames[-1][1].append(rebuilt)  # type: ignore[union-attr]
            else:
                result = rebuilt
                result_ground = rebuilt.ground
        return result, result_ground

    def _occurs(self, var: Var, term: Term) -> bool:
        stack = [term]
        while stack:
            current = self._walk(stack.pop())
            if current == var:
                return True
            if isinstance(current, Struct):
                stack.extend(current.args)
        return False

    def _bind(self, var: Var, term: Term) -> bool:
        if self._occurs(var, term):
            return False
        self._bindings[var] = term
        self._trail.append(var)
        self.stats.variable_bindings += 1
        return True

    def _undo_to(self, mark: int) -> None:
        while len(self._trail) > mark:
            del self._bindings[self._trail.pop()]

    # -- the strategy ----------------------------------------------------------

    def _prove(self, supertype: Term, subtype: Term) -> Iterator[None]:
        supertype = self._walk(supertype)
        subtype = self._walk(subtype)

        # Reflexivity fast path: t >= t is always derivable from the
        # substitution axioms alone.
        if supertype == subtype:
            yield
            return

        # A variable on either side: unify (existential semantics).
        if isinstance(supertype, Var):
            mark = len(self._trail)
            if self._bind(supertype, subtype):
                yield
            self._undo_to(mark)
            return
        if isinstance(subtype, Var):
            mark = len(self._trail)
            if self._bind(subtype, supertype):
                yield
            self._undo_to(mark)
            return

        # Both sides are structs now.
        if self.memoize:
            resolved_sup, sup_ground = self._resolve(supertype)
            resolved_sub, sub_ground = self._resolve(subtype)
            if sup_ground and sub_ground:
                key = (resolved_sup, resolved_sub)
                cached = self._memo.get(key)
                if TRACER.enabled:
                    TRACER.point(
                        CacheProbeEvent, cache="subtype.memo", hit=cached is not None
                    )
                if cached is not None:
                    self.stats.memo_hits += 1
                    if cached:
                        yield
                    return
                automaton = self._automaton
                if automaton is not None:
                    found = automaton.holds(resolved_sup, resolved_sub)
                    self.stats.automaton_hits += 1
                else:
                    if self._automaton_requested:
                        self.stats.automaton_fallbacks += 1
                    found = False
                    for _ in self._prove_struct(resolved_sup, resolved_sub):
                        found = True
                        break
                self._memo[key] = found
                self.stats.memo_entries += 1
                if found:
                    yield
                return
        yield from self._prove_struct(supertype, subtype)

    def _prove_struct(self, supertype: Struct, subtype: Struct) -> Iterator[None]:
        if not self.symbols.is_type_constructor(supertype.functor):
            # Theorem 1: function symbol (or frozen constant) at the top —
            # only the substitution axiom for that very symbol applies.
            if (
                subtype.functor != supertype.functor
                or len(subtype.args) != len(supertype.args)
            ):
                if TRACER.enabled:
                    TRACER.point(
                        PhaseEvent,
                        name="subtype_fail",
                        detail=(
                            f"symbol clash {supertype.functor}/"
                            f"{len(supertype.args)} vs {subtype.functor}/"
                            f"{len(subtype.args)}"
                        ),
                    )
                return
            self.stats.substitution_steps += 1
            if TRACER.enabled:
                TRACER.point(
                    PhaseEvent,
                    name="subtype_rule",
                    detail=f"substitution {supertype.functor}/{len(supertype.args)}",
                )
            yield from self._prove_pairs(tuple(zip(supertype.args, subtype.args)))
            return
        # Theorem 2: type constructor at the top.
        if (
            subtype.functor == supertype.functor
            and len(subtype.args) == len(supertype.args)
        ):
            self.stats.substitution_steps += 1
            if TRACER.enabled:
                TRACER.point(
                    PhaseEvent,
                    name="subtype_rule",
                    detail=f"substitution {supertype.functor}/{len(supertype.args)}",
                )
            yield from self._prove_pairs(tuple(zip(supertype.args, subtype.args)))
        for expansion in self.constraints.expansions(supertype):
            self.stats.constraint_expansions += 1
            if TRACER.enabled:
                TRACER.point(
                    PhaseEvent,
                    name="subtype_rule",
                    detail=f"expand {pretty(supertype)} -> {pretty(expansion)}",
                )
            yield from self._prove(expansion, subtype)

    def _prove_pairs(self, pairs: Tuple[Tuple[Term, Term], ...]) -> Iterator[None]:
        if not pairs:
            yield
            return
        (sup, sub) = pairs[0]
        rest = pairs[1:]
        for _ in self._prove(sup, sub):
            yield from self._prove_pairs(rest)
