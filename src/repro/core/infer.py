"""Common-type inference for committed type variables.

When the checker solves a clause's constraints (Definition 16 via the
Section 7 constraint-collecting ``match``), a body atom's renamed type
variable ``α`` may end up constrained only by *covers* requirements:
``η(α)`` must be a type under which each of several ground terms has a
typing.  Example: ``:- member(X, cons(0, cons(succ(0), nil)))`` with
``PRED member(A, list(A))`` needs ``η(A)`` to type both ``0`` and
``succ(0)`` — the natural commitment is ``nat``.

This is the corner the paper flags as needing "some form of name-based
type union": there is no principal solution in general (``nat`` and
``int`` both work above; ``0`` alone is typed by ``nat`` *and*
``unnat``).  Definition 16 only asks for *existence* of the ``η_i``, so
any covering type makes the clause well-typed; we search deterministically
and document the preference order:

1. **singleton** — a single distinct term is covered by itself read as a
   type (function symbols are type constructors, Definition 1);
2. **declared constructors** — each type constructor ``c``, in
   declaration order, applied to holes; a term is checked against
   ``c(h1,...,hn)`` with the constraint-collecting match, which reports
   which subterms each hole must cover, and the holes are inferred
   recursively (so ``list(·)`` covers ``{nil, cons(0,nil)}`` with the
   hole inferred from ``{0}``);
3. **common functor** — terms sharing an outermost function symbol are
   covered componentwise;
4. **union fallback** — the predefined ``+`` of the terms' singleton
   types (``t1 + t2 + …``), which covers *any* finite set of ground
   terms: for ground cover constraints a commitment therefore always
   exists, and the named rules above only make it prettier.

``None`` is still possible for non-ground inputs (those go through shape
equations instead); the checker then rejects conservatively.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..terms.substitution import Substitution
from ..terms.term import Struct, Term, Var, fresh_variable, is_ground, term_depth
from .constraint_match import ConstraintMatcher
from .declarations import ConstraintSet
from ..terms.pretty import UNION_TYPE

__all__ = ["CommonTypeInference"]


class CommonTypeInference:
    """Deterministic search for a type covering a set of ground terms."""

    def __init__(self, constraints: ConstraintSet, matcher: Optional[ConstraintMatcher] = None) -> None:
        self.constraints = constraints
        self.matcher = matcher or ConstraintMatcher(constraints, validate=False)

    def infer(self, terms: Sequence[Term]) -> Optional[Term]:
        """A type whose ``M_C`` covers every term in ``terms`` and under
        which each has a (plain-``match``) typing, or ``None``."""
        distinct: List[Term] = []
        for term in terms:
            if term not in distinct:
                distinct.append(term)
        if not distinct:
            return None
        if any(not is_ground(t) for t in distinct):
            return None
        fuel = max(term_depth(t) for t in distinct) + 2
        return self._infer(distinct, fuel)

    def _infer(self, terms: List[Term], fuel: int) -> Optional[Term]:
        if fuel <= 0:
            # Constraints like c(A) >= A can make a hole cover the whole
            # term again; fuel bounds that regress.
            return None
        # Rule 1: singleton — the term itself is a (singleton) type.
        if len(terms) == 1:
            return terms[0]
        # Rule 2: a declared type constructor applied to inferred holes.
        for name, arity in self.constraints.symbols.type_constructors.items():
            if name == UNION_TYPE:
                continue  # h1 + h2 is never informative: ⊥ by branching
            candidate = self._try_constructor(name, arity, terms, fuel)
            if candidate is not None:
                return candidate
        # Rule 3: common outermost function symbol, componentwise.
        first = terms[0]
        if isinstance(first, Struct) and all(
            isinstance(t, Struct) and t.indicator == first.indicator for t in terms
        ):
            if not first.args:
                return first
            inferred_args: List[Term] = []
            for position in range(len(first.args)):
                arg = self._infer(
                    _distinct([t.args[position] for t in terms]),  # type: ignore[union-attr]
                    fuel - 1,
                )
                if arg is not None:
                    inferred_args.append(arg)
                else:
                    break
            else:
                return Struct(first.functor, tuple(inferred_args))
        # Rule 4: the name-based union of the terms' singleton types — the
        # predefined ``+`` covers any finite set of ground terms, so a
        # commitment always exists (this is exactly the "name-based type
        # union" the paper says match itself lacks).
        union: Term = terms[0]
        for term in terms[1:]:
            union = Struct(UNION_TYPE, (union, term))
        return union

    def _try_constructor(
        self, name: str, arity: int, terms: List[Term], fuel: int
    ) -> Optional[Term]:
        holes = tuple(fresh_variable("_H") for _ in range(arity))
        candidate = Struct(name, holes)
        solvable: Set[Var] = set(holes)
        hole_covers: Dict[Var, List[Term]] = {hole: [] for hole in holes}
        for term in terms:
            outcome = self.matcher.match(candidate, term, solvable)
            if not isinstance(outcome.result, Substitution):
                return None
            if outcome.equations:
                # A ground term can only produce covers; equations would
                # mean a hole leaked into a non-ground context.
                return None
            for var, covered in outcome.covers:
                if var in hole_covers:
                    hole_covers[var].append(covered)
                else:
                    # A nested hole (from deeper machinery): be conservative.
                    return None
        filled: Dict[Var, Term] = {}
        for hole in holes:
            covered = _distinct(hole_covers[hole])
            if not covered:
                continue  # unconstrained hole: stays a fresh variable
            inferred = self._infer(covered, fuel - 1)
            if inferred is None:
                return None
            filled[hole] = inferred
        return Substitution(filled).apply(candidate)


def _distinct(terms: Sequence[Term]) -> List[Term]:
    out: List[Term] = []
    for term in terms:
        if term not in out:
            out.append(term)
    return out
