"""Predicate types (Definitions 14–15).

A predicate type for ``p ∈ P`` has the form ``p(τ1,...,τn)``; a fixed set
``D`` assigns one to every predicate symbol.  ``type(A)`` of an atom ``A``
is the member of ``D`` for ``A``'s predicate symbol.

Section 6 treats predicate symbols as function symbols so that ``match``
can be applied to whole atoms — which requires ``P`` to stay disjoint
from ``F`` and ``T``; :class:`PredicateTypeEnv` enforces the disjointness
against the constraint set's symbol table.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..terms.pretty import pretty
from ..terms.term import Struct
from .declarations import ConstraintSet, DeclarationError

__all__ = ["PredicateTypeEnv"]

_Indicator = Tuple[str, int]


class PredicateTypeEnv:
    """The set ``D``: one declared type per predicate indicator."""

    def __init__(self, constraints: ConstraintSet) -> None:
        self.constraints = constraints
        self._types: Dict[_Indicator, Struct] = {}

    def declare(self, predicate_type: Struct) -> None:
        """Record ``PRED p(τ1,...,τn).``; argument types are checked to be
        well-formed types over ``F ∪ T``."""
        symbols = self.constraints.symbols
        name = predicate_type.functor
        if symbols.kind_of(name) is not None:
            raise DeclarationError(
                f"predicate symbol {name} collides with a declared function/type symbol"
            )
        indicator = predicate_type.indicator
        existing = self._types.get(indicator)
        if existing is not None and existing != predicate_type:
            raise DeclarationError(
                f"predicate {name}/{indicator[1]} declared twice "
                f"({pretty(existing)} vs {pretty(predicate_type)})"
            )
        for arg in predicate_type.args:
            symbols.check_type(arg)
        self._types[indicator] = predicate_type

    def type_of(self, atom: Struct) -> Struct:
        """Definition 15: ``type(A)`` for the atom ``A``."""
        declared = self._types.get(atom.indicator)
        if declared is None:
            raise DeclarationError(
                f"no predicate type declared for {atom.functor}/{len(atom.args)}"
            )
        return declared

    def has_type_for(self, atom: Struct) -> bool:
        """True iff a ``PRED`` declaration covers ``atom``'s predicate."""
        return atom.indicator in self._types

    def __iter__(self) -> Iterator[Struct]:
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)
