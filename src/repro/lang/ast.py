"""Abstract syntax of typed-logic-program source files.

A source file is a sequence of items in the paper's concrete syntax:

* ``FUNC f1, ..., fn.`` — introduce function symbols (arities inferred
  from use, as in the paper's examples, and cross-checked by the frontend);
* ``TYPE c1, ..., cn.`` — introduce type constructor symbols;
* ``τ_lhs >= τ_rhs.`` — a subtype constraint (Definition 2);
* ``PRED p(τ1, ..., τn).`` — a predicate type (Definition 14);
* ``MODE p(IN, OUT, ...).`` — Section 7 modes extension;
* ``h :- b1, ..., bk.`` / ``h.`` — program clauses;
* ``:- b1, ..., bk.`` — queries (negative clauses).

The AST keeps source positions so the checker can point at offending
items.  Semantic objects (constraint sets, programs, predicate-type
environments) live in ``repro.core`` / ``repro.lp``; this module is pure
syntax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..terms.term import Struct, Term

__all__ = [
    "Position",
    "FuncDecl",
    "TypeDecl",
    "ConstraintDecl",
    "PredDecl",
    "ModeDecl",
    "ClauseDecl",
    "QueryDecl",
    "Item",
    "SourceFile",
]


@dataclass(frozen=True)
class Position:
    """1-based line/column of an item's first token.

    The optional ``end_line``/``end_column`` pair extends the point to a
    half-open span (``end_column`` is the column *after* the last
    character), so diagnostics and SARIF regions can cover a range.  The
    end fields are excluded from equality/hash: ``Position(3, 1)``
    still equals a parser-produced position at 3:1 whatever span the
    parser recorded.
    """

    line: int
    column: int
    end_line: Optional[int] = field(default=None, compare=False)
    end_column: Optional[int] = field(default=None, compare=False)

    @property
    def has_span(self) -> bool:
        """True when the position carries a (non-degenerate) range."""
        return self.end_line is not None and self.end_column is not None

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class FuncDecl:
    """``FUNC f1, ..., fn.``"""

    names: Tuple[str, ...]
    position: Position


@dataclass(frozen=True)
class TypeDecl:
    """``TYPE c1, ..., cn.``"""

    names: Tuple[str, ...]
    position: Position


@dataclass(frozen=True)
class ConstraintDecl:
    """``lhs >= rhs.`` — a subtype constraint (Definition 2)."""

    lhs: Term
    rhs: Term
    position: Position


@dataclass(frozen=True)
class PredDecl:
    """``PRED p(τ1, ..., τn).`` — a predicate type (Definition 14).

    The Section 7 inline form ``PRED p(OUT nat).`` / ``PRED q(IN int).``
    (the paper's own concrete syntax for the modes sketch) attaches one
    ``IN``/``OUT`` keyword per argument position; ``modes`` is then a
    tuple parallel to ``head.args``, and ``None`` for the plain form.
    """

    head: Struct
    position: Position
    modes: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class ModeDecl:
    """``MODE p(IN, ..., OUT).`` — the Section 7 modes extension."""

    name: str
    modes: Tuple[str, ...]  # each "IN" or "OUT"
    position: Position


@dataclass(frozen=True)
class ClauseDecl:
    """A program clause ``head :- body.`` (empty body for facts)."""

    head: Struct
    body: Tuple[Struct, ...]
    position: Position


@dataclass(frozen=True)
class QueryDecl:
    """A negative clause / query ``:- body.``"""

    body: Tuple[Struct, ...]
    position: Position


Item = Union[FuncDecl, TypeDecl, ConstraintDecl, PredDecl, ModeDecl, ClauseDecl, QueryDecl]


@dataclass
class SourceFile:
    """A parsed source file: the item sequence in source order."""

    items: List[Item] = field(default_factory=list)

    def of_kind(self, kind: type) -> List[Item]:
        """All items of the given AST class, in source order."""
        return [item for item in self.items if isinstance(item, kind)]
