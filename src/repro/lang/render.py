"""Rendering semantic objects back to the paper's concrete syntax.

The inverse of the frontend: given a symbol table, constraint set,
predicate types, modes and a program, produce source text that parses
and checks back to an equivalent module.  Used by the filter generator
(to show generated predicates as source), by tooling that wants to save
a programmatically built module, and by the round-trip tests that pin
the parser and the printer against each other.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..core.declarations import ConstraintSet, SymbolTable
from ..core.modes import ModeEnv
from ..core.predicate_types import PredicateTypeEnv
from ..lp.clause import Program, Query
from ..terms.pretty import UNION_TYPE, pretty

__all__ = [
    "render_symbols",
    "render_constraints",
    "render_predicate_types",
    "render_modes",
    "render_program",
    "render_queries",
    "render_module",
]


def render_symbols(symbols: SymbolTable) -> str:
    """``FUNC``/``TYPE`` declaration lines (arities are re-inferred on
    parse, so only the names are listed)."""
    lines: List[str] = []
    functions = sorted(symbols.functions)
    if functions:
        lines.append(f"FUNC {', '.join(functions)}.")
    constructors = sorted(name for name in symbols.type_constructors if name != UNION_TYPE)
    if constructors:
        lines.append(f"TYPE {', '.join(constructors)}.")
    return "\n".join(lines)


def render_constraints(constraints: ConstraintSet) -> str:
    """The declared constraints, one per line (the predefined ``+``
    constraints are implicit and skipped)."""
    lines: List[str] = []
    for constraint in constraints:
        if constraint.constructor == UNION_TYPE:
            continue
        lines.append(f"{pretty(constraint.lhs)} >= {pretty(constraint.rhs)}.")
    return "\n".join(lines)


def render_predicate_types(predicate_types: PredicateTypeEnv) -> str:
    return "\n".join(
        f"PRED {pretty(declared)}." for declared in sorted(predicate_types, key=str)
    )


def render_modes(modes: ModeEnv) -> str:
    lines: List[str] = []
    for (name, _), declared in sorted(modes.items()):
        lines.append(f"MODE {name}({', '.join(declared)}).")
    return "\n".join(lines)


def render_program(program: Program) -> str:
    return "\n".join(str(clause) for clause in program)


def render_queries(queries: Iterable[Query]) -> str:
    return "\n".join(str(query) for query in queries)


def render_module(
    constraints: ConstraintSet,
    predicate_types: Optional[PredicateTypeEnv] = None,
    program: Optional[Program] = None,
    queries: Iterable[Query] = (),
    modes: Optional[ModeEnv] = None,
) -> str:
    """A complete source file for the given pieces, in declaration order:
    symbols, constraints, predicate types, modes, clauses, queries."""
    sections = [render_symbols(constraints.symbols), render_constraints(constraints)]
    if predicate_types is not None and len(predicate_types):
        sections.append(render_predicate_types(predicate_types))
    if modes is not None and len(modes):
        sections.append(render_modes(modes))
    if program is not None and len(program):
        sections.append(render_program(program))
    queries = list(queries)
    if queries:
        sections.append(render_queries(queries))
    return "\n\n".join(section for section in sections if section) + "\n"
