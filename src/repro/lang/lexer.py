"""Lexer for the paper's concrete syntax.

The token language covers everything appearing in the paper:

* declarations keywords ``FUNC``, ``TYPE``, ``PRED`` plus the ``MODE`` /
  ``IN`` / ``OUT`` extension of Section 7;
* names (lowercase-initial identifiers and numerals — ``0`` is an ordinary
  function symbol in the paper);
* variables (uppercase- or underscore-initial identifiers);
* punctuation ``( ) , .`` and the operators ``:-`` ``>=`` ``+`` ``:``
  (the last for Section 7's typed-unification constraints ``X : nat``),
  plus the built-in constraint comparators ``<`` ``=<`` ``=:=`` of the
  typed-CLP extension (Fages & Coquery);
* ``%`` line comments.

Keywords are spelled in all caps in the paper, which collides with the
uppercase-initial convention for variables.  We resolve the collision the
way the paper's examples implicitly do: the *exact* words ``FUNC``,
``TYPE``, ``PRED``, ``MODE``, ``IN``, ``OUT`` are keywords, every other
uppercase-initial identifier is a variable.

Tokens carry line/column positions for the checker's diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

__all__ = ["Token", "TokenKind", "LexError", "tokenize", "KEYWORDS"]


class TokenKind:
    """Token kind constants (plain strings, grouped for discoverability)."""

    NAME = "NAME"  # lowercase-initial identifier or numeral
    VARIABLE = "VARIABLE"  # uppercase/underscore-initial identifier
    KEYWORD = "KEYWORD"  # FUNC TYPE PRED MODE IN OUT
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    DOT = "DOT"
    IMPLIES = "IMPLIES"  # :-
    GEQ = "GEQ"  # >=
    PLUS = "PLUS"
    COLON = "COLON"  # type constraints in queries: X : nat
    LT = "LT"  # <   (built-in comparison goal)
    LEQ = "LEQ"  # =<  (built-in comparison goal)
    EQARITH = "EQARITH"  # =:= (built-in arithmetic equality goal)
    EOF = "EOF"


KEYWORDS = frozenset({"FUNC", "TYPE", "PRED", "MODE", "IN", "OUT"})


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source position (1-based line/column).

    ``end_line``/``end_column`` bound the lexeme as a half-open span
    (``end_column`` points just past the last character).  Tokens never
    span lines, so ``end_line == line``.  The end fields are excluded
    from equality/hash for backward compatibility with positional
    comparisons.
    """

    kind: str
    text: str
    line: int
    column: int
    end_line: Optional[int] = field(default=None, compare=False)
    end_column: Optional[int] = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.text!r} at {self.line}:{self.column}"


class LexError(Exception):
    """Raised on characters outside the token language."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


def _is_name_start(ch: str) -> bool:
    # Require isalnum() too: some cased code points (e.g. circled
    # letters, combining marks) pass islower()/isupper() without being
    # alphanumeric, and would otherwise start a zero-length identifier.
    return (ch.islower() or ch.isdigit()) and ch.isalnum()


def _is_variable_start(ch: str) -> bool:
    return (ch.isupper() and ch.isalnum()) or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; the result always ends with an ``EOF`` token."""
    return list(iter_tokens(text))


def iter_tokens(text: str) -> Iterator[Token]:
    """Yield tokens of ``text``, terminated by an ``EOF`` token."""
    i = 0
    line = 1
    col = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch.isspace():
            i += 1
            col += 1
            continue
        if ch == "%":
            # Track columns through the comment so a file ending in a
            # comment (no trailing newline) still positions EOF correctly.
            while i < n and text[i] != "\n":
                i += 1
                col += 1
            continue
        start_line, start_col = line, col
        if ch == "(":
            yield Token(TokenKind.LPAREN, "(", start_line, start_col, line, start_col + 1)
            i += 1
            col += 1
            continue
        if ch == ")":
            yield Token(TokenKind.RPAREN, ")", start_line, start_col, line, start_col + 1)
            i += 1
            col += 1
            continue
        if ch == ",":
            yield Token(TokenKind.COMMA, ",", start_line, start_col, line, start_col + 1)
            i += 1
            col += 1
            continue
        if ch == ".":
            yield Token(TokenKind.DOT, ".", start_line, start_col, line, start_col + 1)
            i += 1
            col += 1
            continue
        if ch == "+":
            yield Token(TokenKind.PLUS, "+", start_line, start_col, line, start_col + 1)
            i += 1
            col += 1
            continue
        if text.startswith(":-", i):
            yield Token(TokenKind.IMPLIES, ":-", start_line, start_col, line, start_col + 2)
            i += 2
            col += 2
            continue
        if ch == ":":
            yield Token(TokenKind.COLON, ":", start_line, start_col, line, start_col + 1)
            i += 1
            col += 1
            continue
        if text.startswith(">=", i):
            yield Token(TokenKind.GEQ, ">=", start_line, start_col, line, start_col + 2)
            i += 2
            col += 2
            continue
        if text.startswith("=:=", i):
            yield Token(TokenKind.EQARITH, "=:=", start_line, start_col, line, start_col + 3)
            i += 3
            col += 3
            continue
        if text.startswith("=<", i):
            yield Token(TokenKind.LEQ, "=<", start_line, start_col, line, start_col + 2)
            i += 2
            col += 2
            continue
        if ch == "<":
            yield Token(TokenKind.LT, "<", start_line, start_col, line, start_col + 1)
            i += 1
            col += 1
            continue
        if _is_name_start(ch) or _is_variable_start(ch):
            j = i
            while j < n and _is_ident_char(text[j]):
                j += 1
            word = text[i:j]
            length = j - i
            i = j
            col += length
            if word in KEYWORDS:
                yield Token(TokenKind.KEYWORD, word, start_line, start_col, line, start_col + length)
            elif _is_variable_start(word[0]):
                yield Token(TokenKind.VARIABLE, word, start_line, start_col, line, start_col + length)
            else:
                yield Token(TokenKind.NAME, word, start_line, start_col, line, start_col + length)
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
    yield Token(TokenKind.EOF, "", line, col, line, col)
