"""Recursive-descent parser for the paper's concrete syntax.

Grammar (items end with ``.``):

.. code-block:: text

   file        := item* EOF
   item        := 'FUNC' namelist '.'
                | 'TYPE' namelist '.'
                | 'PRED' name ( '(' predarg (',' predarg)* ')' )? '.'
                | 'MODE' name '(' mode (',' mode)* ')' '.'
                | ':-' atoms '.'                     (query)
                | union '>=' union '.'               (subtype constraint)
                | atom (':-' atoms)? '.'             (program clause)
   namelist    := name (',' name)*
   atoms       := atom (',' atom)*
   atom        := name ( '(' union (',' union)* ')' )?
   union       := primary ('+' primary)*             (left associative)
   primary     := variable
                | atom
                | '(' union ')'
   predarg     := mode? union                        (§7 inline modes)
   mode        := 'IN' | 'OUT'

``predarg`` is the paper's Section 7 surface form ``PRED p(OUT nat).``:
an optional ``IN``/``OUT`` keyword before each argument type.  Either
every argument carries a mode or none does — a partial annotation is a
parse error.  The annotated form is sugar for the plain ``PRED`` plus a
``MODE`` declaration.

``union`` builds the predefined binary ``+`` type constructor; it is
accepted in every term position (the core layer rejects ``+`` where it is
not meaningful).  Clause heads and body atoms must be plain applications —
a union or a variable head is a parse error.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..terms.term import Struct, Term, Var
from ..terms.pretty import UNION_TYPE
from .ast import (
    ClauseDecl,
    ConstraintDecl,
    FuncDecl,
    Item,
    ModeDecl,
    Position,
    PredDecl,
    QueryDecl,
    SourceFile,
    TypeDecl,
)
from .lexer import Token, TokenKind, tokenize

__all__ = [
    "ParseError",
    "parse_file",
    "parse_term",
    "parse_type",
    "parse_atom",
    "parse_clause",
    "parse_query",
]


class ParseError(Exception):
    """Raised on any syntax error; carries the offending position."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{token.line}:{token.column}: {message} (found {token.text!r})")
        self.token = token


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.index = 0
        self.previous: Token = self.tokens[0]

    # -- token plumbing ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != TokenKind.EOF:
            self.index += 1
        self.previous = token
        return token

    def _span(self, start: Token) -> Position:
        """The source range from ``start`` through the last consumed token."""
        end = self.previous
        return Position(
            start.line,
            start.column,
            end.end_line if end.end_line is not None else end.line,
            end.end_column
            if end.end_column is not None
            else end.column + len(end.text),
        )

    def check(self, kind: str, text: str = "") -> bool:
        token = self.current
        return token.kind == kind and (not text or token.text == text)

    def accept(self, kind: str, text: str = "") -> bool:
        if self.check(kind, text):
            self.advance()
            return True
        return False

    def expect(self, kind: str, what: str) -> Token:
        if not self.check(kind):
            raise ParseError(f"expected {what}", self.current)
        return self.advance()

    # -- terms -------------------------------------------------------------

    def union(self) -> Term:
        term = self.primary()
        while self.accept(TokenKind.PLUS):
            right = self.primary()
            term = Struct(UNION_TYPE, (term, right))
        return term

    def primary(self) -> Term:
        token = self.current
        if token.kind == TokenKind.VARIABLE:
            self.advance()
            return Var(token.text)
        if token.kind == TokenKind.NAME:
            return self.application()
        if self.accept(TokenKind.LPAREN):
            inner = self.union()
            self.expect(TokenKind.RPAREN, "')'")
            return inner
        raise ParseError("expected a term", token)

    def application(self) -> Struct:
        name = self.expect(TokenKind.NAME, "a name").text
        if not self.accept(TokenKind.LPAREN):
            return Struct(name, ())
        args: List[Term] = [self.union()]
        while self.accept(TokenKind.COMMA):
            args.append(self.union())
        self.expect(TokenKind.RPAREN, "')'")
        return Struct(name, tuple(args))

    def atom(self) -> Struct:
        token = self.current
        if token.kind != TokenKind.NAME:
            raise ParseError("expected an atom (predicate application)", token)
        return self.application()

    def atoms(self) -> Tuple[Struct, ...]:
        out = [self.atom()]
        while self.accept(TokenKind.COMMA):
            out.append(self.atom())
        return tuple(out)

    #: Infix built-in constraint goals of the typed-CLP extension: the
    #: token kind → goal functor map for ``X < Y``, ``X =< Y``, ``X =:= Y``.
    _BUILTIN_GOAL_TOKENS = {
        TokenKind.LT: "<",
        TokenKind.LEQ: "=<",
        TokenKind.EQARITH: "=:=",
    }

    def query_goal(self) -> Struct:
        """An atom, a Section 7 type constraint ``term : type``, or an
        infix built-in constraint goal ``term < term`` / ``term =< term``
        / ``term =:= term`` / ``term is term``.

        Constraints travel as ``':'(term, type)`` structs; built-in goals
        travel as ordinary ``'<'(lhs, rhs)``-style structs so downstream
        passes treat them like any other atom.
        """
        lhs = self.union()
        if self.accept(TokenKind.COLON):
            rhs = self.union()
            return Struct(":", (lhs, rhs))
        for kind, functor in self._BUILTIN_GOAL_TOKENS.items():
            if self.accept(kind):
                return Struct(functor, (lhs, self.union()))
        if self.check(TokenKind.NAME, "is"):
            self.advance()
            return Struct("is", (lhs, self.union()))
        if not isinstance(lhs, Struct) or lhs.functor == UNION_TYPE:
            raise ParseError("expected an atom or a ':' type constraint", self.current)
        return lhs

    def query_goals(self) -> Tuple[Struct, ...]:
        out = [self.query_goal()]
        while self.accept(TokenKind.COMMA):
            out.append(self.query_goal())
        return tuple(out)

    # -- items -------------------------------------------------------------

    def namelist(self) -> Tuple[str, ...]:
        names = [self.expect(TokenKind.NAME, "a symbol name").text]
        while self.accept(TokenKind.COMMA):
            names.append(self.expect(TokenKind.NAME, "a symbol name").text)
        return tuple(names)

    def item(self) -> Item:
        token = self.current
        if token.kind == TokenKind.KEYWORD:
            if token.text == "FUNC":
                self.advance()
                names = self.namelist()
                self.expect(TokenKind.DOT, "'.'")
                return FuncDecl(names, self._span(token))
            if token.text == "TYPE":
                self.advance()
                names = self.namelist()
                self.expect(TokenKind.DOT, "'.'")
                return TypeDecl(names, self._span(token))
            if token.text == "PRED":
                self.advance()
                head, inline_modes = self.pred_head()
                self.expect(TokenKind.DOT, "'.'")
                return PredDecl(head, self._span(token), inline_modes)
            if token.text == "MODE":
                self.advance()
                name = self.expect(TokenKind.NAME, "a predicate name").text
                modes: List[str] = []
                if self.accept(TokenKind.LPAREN):
                    modes.append(self.mode())
                    while self.accept(TokenKind.COMMA):
                        modes.append(self.mode())
                    self.expect(TokenKind.RPAREN, "')'")
                self.expect(TokenKind.DOT, "'.'")
                return ModeDecl(name, tuple(modes), self._span(token))
            raise ParseError("keyword not allowed here", token)
        if self.accept(TokenKind.IMPLIES):
            body = self.query_goals()
            self.expect(TokenKind.DOT, "'.'")
            return QueryDecl(body, self._span(token))
        # Constraint or clause: both start with a term.
        lhs = self.union()
        if self.accept(TokenKind.GEQ):
            rhs = self.union()
            self.expect(TokenKind.DOT, "'.'")
            return ConstraintDecl(lhs, rhs, self._span(token))
        if not isinstance(lhs, Struct) or lhs.functor == UNION_TYPE:
            raise ParseError("clause head must be a predicate application", token)
        body: Tuple[Struct, ...] = ()
        if self.accept(TokenKind.IMPLIES):
            # Clause bodies may carry ':' constraints too (they then opt
            # into the constrained execution model, like queries).
            body = self.query_goals()
        self.expect(TokenKind.DOT, "'.'")
        return ClauseDecl(lhs, body, self._span(token))

    def pred_head(self) -> Tuple[Struct, Optional[Tuple[str, ...]]]:
        """A ``PRED`` declaration head, with optional §7 inline modes.

        ``PRED p(OUT nat, IN int).`` returns ``(p(nat, int),
        ("OUT", "IN"))``; the plain form returns ``(head, None)``.
        Mixing annotated and unannotated positions is a parse error.
        """
        anchor = self.current
        name = self.expect(TokenKind.NAME, "a predicate name").text
        if not self.accept(TokenKind.LPAREN):
            return Struct(name, ()), None
        args: List[Term] = []
        modes: List[Optional[str]] = []
        while True:
            if self.check(TokenKind.KEYWORD, "IN") or self.check(
                TokenKind.KEYWORD, "OUT"
            ):
                modes.append(self.advance().text)
            else:
                modes.append(None)
            args.append(self.union())
            if not self.accept(TokenKind.COMMA):
                break
        self.expect(TokenKind.RPAREN, "')'")
        annotated = sum(1 for mode in modes if mode is not None)
        if annotated == 0:
            return Struct(name, tuple(args)), None
        if annotated != len(modes):
            raise ParseError(
                "either every PRED argument carries an IN/OUT mode or none does",
                anchor,
            )
        return Struct(name, tuple(args)), tuple(modes)  # type: ignore[arg-type]

    def mode(self) -> str:
        token = self.current
        if token.kind == TokenKind.KEYWORD and token.text in ("IN", "OUT"):
            self.advance()
            return token.text
        raise ParseError("expected IN or OUT", token)

    def file(self) -> SourceFile:
        source = SourceFile()
        while not self.check(TokenKind.EOF):
            source.items.append(self.item())
        return source

    def expect_eof(self) -> None:
        if not self.check(TokenKind.EOF):
            raise ParseError("trailing input", self.current)


# -- public entry points ----------------------------------------------------


def parse_file(text: str) -> SourceFile:
    """Parse a whole source file (declarations, clauses, queries)."""
    parser = _Parser(text)
    return parser.file()


def parse_term(text: str) -> Term:
    """Parse a single term (variables allowed, infix ``+`` allowed)."""
    parser = _Parser(text)
    term = parser.union()
    parser.expect_eof()
    return term


def parse_type(text: str) -> Term:
    """Parse a type expression — alias of :func:`parse_term` (Definition 1:
    a type is just a term over ``F ∪ T``)."""
    return parse_term(text)


def parse_atom(text: str) -> Struct:
    """Parse a single atom (predicate application)."""
    parser = _Parser(text)
    result = parser.atom()
    parser.expect_eof()
    return result


def parse_clause(text: str) -> ClauseDecl:
    """Parse a single program clause ``h :- b.`` or fact ``h.``"""
    parser = _Parser(text)
    item = parser.item()
    parser.expect_eof()
    if not isinstance(item, ClauseDecl):
        raise ParseError("expected a program clause", parser.current)
    return item


def parse_query(text: str) -> QueryDecl:
    """Parse a single query ``:- b1, ..., bk.``"""
    parser = _Parser(text)
    item = parser.item()
    parser.expect_eof()
    if not isinstance(item, QueryDecl):
        raise ParseError("expected a query", parser.current)
    return item
