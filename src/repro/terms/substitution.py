"""Substitutions over first-order terms.

A substitution is a finite mapping from variables to terms.  The paper
relies on two standard properties of most general unifiers — *idempotence*
and *relevance* [Apt88] — and Lemma 2 / Theorem 6 lean on them, so this
module keeps both properties checkable (:meth:`Substitution.is_idempotent`,
:meth:`Substitution.is_relevant_for`) and the unifier in
``repro.terms.unify`` guarantees them.

Substitutions are immutable; ``compose`` returns a new substitution.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Set, Tuple

from .term import Struct, Term, Var, variables_of

__all__ = ["Substitution", "EMPTY_SUBSTITUTION"]


class Substitution:
    """An immutable substitution ``{x1 ↦ t1, ..., xn ↦ tn}``.

    Bindings with ``x ↦ x`` are dropped at construction so that the domain
    is exactly the set of variables the substitution moves.
    """

    __slots__ = ("_bindings", "_hash")

    def __init__(self, bindings: Optional[Mapping[Var, Term]] = None) -> None:
        cleaned: Dict[Var, Term] = {}
        if bindings:
            for var, value in bindings.items():
                if not isinstance(var, Var):
                    raise TypeError(f"substitution domain must be variables, got {var!r}")
                if value != var:
                    cleaned[var] = value
        self._bindings: Dict[Var, Term] = cleaned
        self._hash: Optional[int] = None

    # -- mapping protocol -------------------------------------------------

    def __contains__(self, var: Var) -> bool:
        return var in self._bindings

    def __getitem__(self, var: Var) -> Term:
        return self._bindings[var]

    def get(self, var: Var, default: Optional[Term] = None) -> Optional[Term]:
        """The binding for ``var``, or ``default``."""
        return self._bindings.get(var, default)

    def __iter__(self) -> Iterator[Var]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def items(self) -> Iterator[Tuple[Var, Term]]:
        """Iterate over ``(variable, term)`` bindings."""
        return iter(self._bindings.items())

    @property
    def domain(self) -> Set[Var]:
        """``dom(θ)``: the variables this substitution moves."""
        return set(self._bindings)

    @property
    def range_variables(self) -> Set[Var]:
        """``var(ran(θ))``: variables occurring in the bound terms."""
        out: Set[Var] = set()
        for value in self._bindings.values():
            out |= variables_of(value)
        return out

    # -- equality / hashing ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._bindings == other._bindings

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._bindings.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{v} -> {t}" for v, t in sorted(self._bindings.items(), key=lambda p: p[0].name))
        return "{" + inner + "}"

    # -- application ------------------------------------------------------

    def apply(self, term: Term) -> Term:
        """Apply this substitution to ``term`` (written ``tθ``).

        Application is *simultaneous*, not repeated: bindings are not
        re-applied to their own results.  Idempotent substitutions make the
        distinction moot, and the unifier only produces idempotent ones.
        """
        if not self._bindings:
            return term
        return self._apply(term)

    def _apply(self, term: Term) -> Term:
        if isinstance(term, Var):
            return self._bindings.get(term, term)
        if not term.args:
            return term
        new_args = tuple(self._apply(a) for a in term.args)
        if new_args == term.args:
            return term
        return Struct(term.functor, new_args)

    def __call__(self, term: Term) -> Term:
        return self.apply(term)

    # -- algebra ----------------------------------------------------------

    def compose(self, other: "Substitution") -> "Substitution":
        """The composition ``self ; other``: ``t(self.compose(other)) == (t self) other``.

        Standard definition: apply ``other`` to every binding of ``self``,
        then add the bindings of ``other`` for variables not in the domain
        of ``self``.
        """
        combined: Dict[Var, Term] = {
            var: other.apply(value) for var, value in self._bindings.items()
        }
        for var, value in other._bindings.items():
            if var not in self._bindings:
                combined[var] = value
        return Substitution(combined)

    def restrict(self, variables: Set[Var]) -> "Substitution":
        """The restriction of this substitution to ``variables``."""
        return Substitution({v: t for v, t in self._bindings.items() if v in variables})

    def update(self, extra: Mapping[Var, Term]) -> "Substitution":
        """A new substitution with ``extra`` bindings overriding existing ones."""
        merged = dict(self._bindings)
        merged.update(extra)
        return Substitution(merged)

    # -- properties the paper relies on ------------------------------------

    def is_idempotent(self) -> bool:
        """True iff ``θθ = θ``, i.e. ``dom(θ) ∩ var(ran(θ)) = ∅``."""
        return not (self.domain & self.range_variables)

    def is_relevant_for(self, *terms: Term) -> bool:
        """True iff every variable of ``θ`` occurs in one of ``terms``.

        This is *relevance* in the sense of [Apt88]: an mgu of ``t1, t2``
        is relevant when it only mentions variables of ``t1`` or ``t2``.
        """
        allowed: Set[Var] = set()
        for term in terms:
            allowed |= variables_of(term)
        return (self.domain | self.range_variables) <= allowed


EMPTY_SUBSTITUTION = Substitution()
