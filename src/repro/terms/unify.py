"""Unification.

Implements syntactic first-order unification with occurs check, returning
idempotent and relevant most general unifiers — the two properties the
paper assumes throughout ("we assume that most general unifiers are
idempotent and relevant [Apt88]", Section 4).

The algorithm is the classic Martelli–Montanari rule set run over an
explicit work list with a triangular (fully applied) binding map, so the
result is idempotent by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .substitution import Substitution
from .term import Struct, Term, Var

__all__ = ["unify", "mgu", "unifiable", "UnificationError"]


class UnificationError(Exception):
    """Raised by :func:`mgu` when its arguments do not unify."""

    def __init__(self, left: Term, right: Term, reason: str) -> None:
        super().__init__(f"cannot unify {left} with {right}: {reason}")
        self.left = left
        self.right = right
        self.reason = reason


def _walk(term: Term, bindings: Dict[Var, Term]) -> Term:
    """Dereference ``term`` through ``bindings`` until a non-bound root."""
    while isinstance(term, Var) and term in bindings:
        term = bindings[term]
    return term


def _occurs(var: Var, term: Term, bindings: Dict[Var, Term]) -> bool:
    """Occurs check modulo the current (triangular) bindings."""
    stack: List[Term] = [term]
    while stack:
        current = _walk(stack.pop(), bindings)
        if current == var:
            return True
        if isinstance(current, Struct):
            stack.extend(current.args)
    return False


def _resolve(term: Term, bindings: Dict[Var, Term], visiting: frozenset = frozenset()) -> Term:
    """Fully apply triangular ``bindings`` to ``term``.

    ``visiting`` guards against the cyclic bindings that can arise with
    the occurs check disabled: a variable reached through its own binding
    is left as a variable (the substitution is then not a true unifier —
    unification without occurs check is unsound by design).
    """
    seen = set()
    while isinstance(term, Var) and term in bindings:
        if term in visiting or term in seen:
            return term
        seen.add(term)
        term = bindings[term]
    if isinstance(term, Var):
        return term
    if not term.args:
        return term
    guarded = visiting | seen
    return Struct(term.functor, tuple(_resolve(a, bindings, guarded) for a in term.args))


def unify(left: Term, right: Term, occurs_check: bool = True) -> Optional[Substitution]:
    """Compute an mgu of ``left`` and ``right``, or ``None``.

    The returned substitution is idempotent and relevant.  ``occurs_check``
    defaults to on (sound unification); the SLD engine exposes a switch for
    benchmarking the (unsound, Prolog-default) variant.
    """
    bindings: Dict[Var, Term] = {}
    work: List[Tuple[Term, Term]] = [(left, right)]
    while work:
        a, b = work.pop()
        a = _walk(a, bindings)
        b = _walk(b, bindings)
        if a == b:
            continue
        if isinstance(a, Var):
            if occurs_check and _occurs(a, b, bindings):
                return None
            bindings[a] = b
            continue
        if isinstance(b, Var):
            if occurs_check and _occurs(b, a, bindings):
                return None
            bindings[b] = a
            continue
        if a.functor != b.functor or len(a.args) != len(b.args):
            return None
        work.extend(zip(a.args, b.args))
    # Flatten the triangular form into an idempotent substitution.
    return Substitution({var: _resolve(var, bindings) for var in bindings})


def mgu(left: Term, right: Term) -> Substitution:
    """Like :func:`unify` but raises :class:`UnificationError` on failure."""
    result = unify(left, right)
    if result is None:
        raise UnificationError(left, right, "no unifier")
    return result


def unifiable(left: Term, right: Term) -> bool:
    """True iff ``left`` and ``right`` unify (with occurs check)."""
    return unify(left, right) is not None
