"""First-order terms.

This module provides the term language shared by every layer of the
reproduction: object-level terms of logic programs, *types* (terms over
``F ∪ T`` in the paper's Definition 1) and atoms of clauses (predicate
symbols applied to terms, which Section 6 of the paper deliberately treats
as function symbols so that ``match`` can be applied to atoms).

A term is either

* a :class:`Var` — a logical variable, identified by name, or
* a :class:`Struct` — a symbol applied to zero or more argument terms.

Nullary structs double as constants/atoms; the paper "abuses the notation
slightly by treating 0-ary symbols as if they were arbitrary n-ary
symbols", and so do we.

Terms are immutable and hashable, so they can live in sets, dict keys and
memo tables.  All structural traversals (variables, size, depth, ground
test, renaming) are iterative to stay robust on the deep terms produced
by the benchmark generators.

**Hash-consing.**  By default every ``Var``/``Struct`` construction is
routed through a canonicalizing intern table (weak-valued and
thread-safe), so structurally equal terms built anywhere in the process
are the *same object*.  That turns the deep structural comparisons the
subtype engine's memo tables would otherwise perform into pointer
checks: dictionary lookups on interned terms hit the identity fast path
before ever calling ``__eq__``, and ``__eq__`` itself starts with an
``is`` check.  Per-node derived results (the hash, the groundness flag,
the variable set, short pretty-printings) are computed once per
canonical node instead of once per structurally-equal copy.  Interning
can be switched off (``set_interning(False)``, the ``--no-intern`` CLI
flags, or ``TLP_NO_INTERN=1`` in the environment) to recover the seed
representation for differential testing; terms built under either
setting compare and hash identically, so the two populations mix freely.
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

__all__ = [
    "Var",
    "Struct",
    "Term",
    "atom",
    "struct",
    "variables_of",
    "is_ground",
    "term_size",
    "term_depth",
    "subterms",
    "occurs_in",
    "variables_in_order",
    "map_variables",
    "rename_apart",
    "fresh_variable",
    "symbols_of",
    "functors_of",
    "InternStats",
    "interning_enabled",
    "set_interning",
    "intern_stats",
    "clear_intern_table",
]


class InternStats:
    """A point-in-time snapshot of the intern table's traffic and size."""

    __slots__ = ("enabled", "structs", "vars", "hits", "misses")

    def __init__(
        self, enabled: bool, structs: int, vars: int, hits: int, misses: int
    ) -> None:
        self.enabled = enabled
        self.structs = structs
        self.vars = vars
        self.hits = hits
        self.misses = misses

    @property
    def size(self) -> int:
        """Live canonical nodes (structs + variables)."""
        return self.structs + self.vars

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def __repr__(self) -> str:
        return (
            f"InternStats(enabled={self.enabled}, structs={self.structs}, "
            f"vars={self.vars}, hits={self.hits}, misses={self.misses})"
        )


class _InternTable:
    """The process-wide canonicalizing table behind ``Var``/``Struct``.

    Values are weak: a canonical node lives exactly as long as something
    outside the table references it, so the table never pins memory the
    program has let go of.  All lookups and inserts happen under one
    lock — the critical section is a dict probe plus (on a miss) a plain
    object allocation, so contention stays low even under the batch
    service's thread pools.
    """

    __slots__ = ("lock", "structs", "vars", "hits", "misses", "enabled")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.structs: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()
        self.vars: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()
        self.hits = 0
        self.misses = 0
        self.enabled = os.environ.get("TLP_NO_INTERN", "") == ""

    def clear(self) -> None:
        with self.lock:
            self.structs.clear()
            self.vars.clear()
            self.hits = 0
            self.misses = 0


_INTERN = _InternTable()


def interning_enabled() -> bool:
    """True iff term construction currently routes through the intern table."""
    return _INTERN.enabled


def set_interning(on: bool) -> bool:
    """Enable/disable hash-consing; returns the previous setting.

    Disabling only affects *future* constructions: already-interned terms
    stay canonical (and keep comparing by identity first), terms built
    while disabled are ordinary unshared objects.  The two populations
    compare and hash identically, so toggling mid-run is always safe —
    it is a performance switch, never a semantic one.
    """
    previous = _INTERN.enabled
    _INTERN.enabled = bool(on)
    return previous


def intern_stats() -> InternStats:
    """Current intern-table statistics (size, hit/miss traffic)."""
    with _INTERN.lock:
        return InternStats(
            enabled=_INTERN.enabled,
            structs=len(_INTERN.structs),
            vars=len(_INTERN.vars),
            hits=_INTERN.hits,
            misses=_INTERN.misses,
        )


def clear_intern_table() -> None:
    """Drop every canonical node and zero the traffic counters.

    Existing terms are unaffected (they simply stop being the canonical
    representative for new constructions).  Mainly for tests and for
    long-lived daemons that want a clean measurement window.
    """
    _INTERN.clear()


class Var:
    """A logical variable.

    Variables are compared by name: two ``Var("X")`` objects are the same
    variable — and, with interning on, the same *object*.  Scoping
    (keeping the variables of two clauses apart) is the caller's job and
    is normally done with :func:`rename_apart`.
    """

    __slots__ = ("name", "_hash", "__weakref__")

    def __new__(cls, name: str) -> "Var":
        table = _INTERN
        if table.enabled and cls is Var:
            with table.lock:
                existing = table.vars.get(name)
                if existing is not None:
                    table.hits += 1
                    return existing
                table.misses += 1
                self = object.__new__(cls)
                self.name = name
                self._hash = hash((name,))
                table.vars[name] = self
                return self
        self = object.__new__(cls)
        self.name = name
        self._hash = hash((name,))
        return self

    def __setattr__(self, attr: str, value: object) -> None:
        if attr in ("name", "_hash") and not hasattr(self, "_hash"):
            object.__setattr__(self, attr, value)
            return
        raise AttributeError(f"Var is immutable (cannot set {attr!r})")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Var):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Var, (self.name,))

    def __repr__(self) -> str:
        return f"Var({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Struct:
    """A compound term ``functor(arg1, ..., argn)``.

    ``args`` is a tuple; a nullary struct (``args == ()``) is a constant.
    The hash and the groundness flag are computed once per canonical
    node: terms are used heavily as dictionary keys in the subtype
    engine's memo tables, and the engine asks "is this ground?" at every
    step — both must be O(1).  With interning on, constructing a term
    that already exists returns the existing node without recomputing
    anything.
    """

    __slots__ = ("functor", "args", "_hash", "ground", "_vars", "_pretty", "__weakref__")

    def __new__(cls, functor: str, args: Tuple["Term", ...] = ()) -> "Struct":
        table = _INTERN
        if table.enabled and cls is Struct:
            key = (functor, args)
            with table.lock:
                existing = table.structs.get(key)
                if existing is not None:
                    table.hits += 1
                    return existing
                table.misses += 1
                self = object.__new__(cls)
                _init_struct(self, functor, args, hash(key))
                table.structs[key] = self
                return self
        self = object.__new__(cls)
        _init_struct(self, functor, args, hash((functor, args)))
        return self

    def __setattr__(self, attr: str, value: object) -> None:
        # The two derived-result caches stay writable (idempotent lazy
        # fills); everything structural is frozen after construction.
        if attr in ("_vars", "_pretty") or not hasattr(self, "ground"):
            object.__setattr__(self, attr, value)
            return
        raise AttributeError(f"Struct is immutable (cannot set {attr!r})")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Struct):
            return (
                self._hash == other._hash
                and self.functor == other.functor
                and self.args == other.args
            )
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Struct, (self.functor, self.args))

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    @property
    def indicator(self) -> Tuple[str, int]:
        """The ``name/arity`` pair identifying this symbol."""
        return (self.functor, len(self.args))

    def __repr__(self) -> str:
        if not self.args:
            return f"Struct({self.functor!r})"
        return f"Struct({self.functor!r}, {self.args!r})"

    def __str__(self) -> str:
        if not self.args:
            return self.functor
        return f"{self.functor}({', '.join(str(a) for a in self.args)})"


def _init_struct(self: Struct, functor: str, args: Tuple["Term", ...], hashed: int) -> None:
    """Populate a freshly allocated struct (both intern paths share this)."""
    object.__setattr__(self, "functor", functor)
    object.__setattr__(self, "args", args)
    object.__setattr__(self, "_hash", hashed)
    ground = True
    for arg in args:
        if not (isinstance(arg, Struct) and arg.ground):
            ground = False
            break
    object.__setattr__(self, "ground", ground)
    object.__setattr__(self, "_vars", None)
    object.__setattr__(self, "_pretty", None)


Term = Union[Var, Struct]


def atom(name: str) -> Struct:
    """Build a constant (nullary struct)."""
    return Struct(name, ())


def struct(functor: str, *args: Term) -> Struct:
    """Build a compound term from varargs (convenience constructor)."""
    return Struct(functor, tuple(args))


def subterms(term: Term) -> Iterator[Term]:
    """Yield every subterm of ``term`` (including ``term`` itself), pre-order."""
    stack: List[Term] = [term]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, Struct):
            stack.extend(reversed(current.args))


def variables_of(term: Term) -> Set[Var]:
    """The set of variables occurring in ``term`` (``var(t)`` in the paper).

    The result is cached per node (a ground struct answers in O(1) from
    its groundness flag; a non-ground struct computes the set once and
    keeps it), so repeated queries — the well-typedness checker poses
    them per atom per clause — do not re-traverse the term.
    """
    if isinstance(term, Var):
        return {term}
    if term.ground:
        return set()
    return set(_variables_frozen(term))


def _variables_frozen(term: Struct) -> "frozenset[Var]":
    """The cached variable set of a non-ground struct."""
    cached = term._vars
    if cached is not None:
        return cached
    # Iterative post-order so children's caches fill first and deep terms
    # cannot exhaust the C stack.
    out: Set[Var] = set()
    stack: List[Term] = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, Var):
            out.add(current)
            continue
        if current.ground:
            continue
        cached = current._vars
        if cached is not None:
            out |= cached
            continue
        stack.extend(current.args)
    frozen = frozenset(out)
    term._vars = frozen
    return frozen


def variables_in_order(term: Term) -> List[Var]:
    """Variables of ``term`` in first-occurrence (left-to-right) order."""
    seen: Set[Var] = set()
    ordered: List[Var] = []
    for sub in subterms(term):
        if isinstance(sub, Var) and sub not in seen:
            seen.add(sub)
            ordered.append(sub)
    return ordered


def is_ground(term: Term) -> bool:
    """True iff ``term`` contains no variables (O(1): cached on Struct)."""
    return isinstance(term, Struct) and term.ground


def term_size(term: Term) -> int:
    """Number of symbol/variable occurrences in ``term``."""
    return sum(1 for _ in subterms(term))


def term_depth(term: Term) -> int:
    """Height of the term tree; a variable or constant has depth 1."""
    depth = 0
    stack: List[Tuple[Term, int]] = [(term, 1)]
    while stack:
        current, level = stack.pop()
        if level > depth:
            depth = level
        if isinstance(current, Struct):
            stack.extend((arg, level + 1) for arg in current.args)
    return depth


def occurs_in(var: Var, term: Term) -> bool:
    """True iff ``var`` occurs in ``term`` (the occurs check)."""
    return any(sub == var for sub in subterms(term))


def symbols_of(term: Term) -> Set[Tuple[str, int]]:
    """All ``name/arity`` indicators of structs occurring in ``term``."""
    return {t.indicator for t in subterms(term) if isinstance(t, Struct)}


def functors_of(term: Term) -> Set[str]:
    """All functor names occurring in ``term``."""
    return {t.functor for t in subterms(term) if isinstance(t, Struct)}


_fresh_counter = itertools.count()


def fresh_variable(stem: str = "_G") -> Var:
    """A globally fresh variable.

    Freshness is process-wide: names drawn here never collide with each
    other.  User-written variables conventionally do not start with ``_G``
    (the parsers enforce nothing, but the workload generators avoid it).
    """
    return Var(f"{stem}{next(_fresh_counter)}")


def map_variables(term: Term, mapping: Dict[Var, Term], default=None) -> Term:
    """Rebuild ``term`` with each variable replaced per ``mapping``.

    ``default`` (if given) is called for variables absent from the
    mapping and its result is recorded there, so shared variables map
    consistently.  Ground subtrees are shared, not rebuilt.  The walk is
    iterative — deep terms from the workload generators cannot exhaust
    the C stack.
    """
    if isinstance(term, Var):
        replacement = mapping.get(term)
        if replacement is None:
            if default is None:
                return term
            replacement = mapping[term] = default(term)
        return replacement
    if term.ground:
        return term
    # Each frame is [node, built_args]; len(built_args) doubles as the
    # index of the next child to process.
    frames: List[List[object]] = [[term, []]]
    result: Optional[Term] = None
    while frames:
        node, built = frames[-1]
        args = node.args  # type: ignore[union-attr]
        index = len(built)  # type: ignore[arg-type]
        if index < len(args):
            child = args[index]
            if isinstance(child, Var):
                replacement = mapping.get(child)
                if replacement is None:
                    if default is None:
                        replacement = child
                    else:
                        replacement = mapping[child] = default(child)
                built.append(replacement)  # type: ignore[union-attr]
            elif child.ground:
                built.append(child)  # type: ignore[union-attr]
            else:
                frames.append([child, []])
            continue
        frames.pop()
        rebuilt: Term = (
            Struct(node.functor, tuple(built)) if args else node  # type: ignore[union-attr,arg-type]
        )
        if frames:
            frames[-1][1].append(rebuilt)  # type: ignore[union-attr]
        else:
            result = rebuilt
    assert result is not None
    return result


def rename_apart(term: Term, taken: Iterable[Var] = ()) -> Tuple[Term, Dict[Var, Var]]:
    """Rename the variables of ``term`` to globally fresh ones.

    Returns the renamed term and the renaming used.  ``taken`` is accepted
    for API symmetry but freshness is global, so no collision with *any*
    existing variable is possible.

    Renaming a clause apart before resolution is the standard way to get
    standardized-apart variants (see ``repro.lp.resolution``); the
    well-typedness checker uses it to produce the per-atom renamings
    ``η_i`` of predicate-type variables (Definition 16).
    """
    del taken  # freshness is global; parameter kept for call-site clarity
    mapping: Dict[Var, Var] = {}
    renamed = map_variables(term, mapping, default=lambda _v: fresh_variable())
    return renamed, mapping
