"""First-order terms.

This module provides the term language shared by every layer of the
reproduction: object-level terms of logic programs, *types* (terms over
``F ∪ T`` in the paper's Definition 1) and atoms of clauses (predicate
symbols applied to terms, which Section 6 of the paper deliberately treats
as function symbols so that ``match`` can be applied to atoms).

A term is either

* a :class:`Var` — a logical variable, identified by name, or
* a :class:`Struct` — a symbol applied to zero or more argument terms.

Nullary structs double as constants/atoms; the paper "abuses the notation
slightly by treating 0-ary symbols as if they were arbitrary n-ary
symbols", and so do we.

Terms are immutable and hashable, so they can live in sets, dict keys and
memo tables.  All structural traversals (variables, size, depth, ground
test) are iterative to stay robust on the deep terms produced by the
benchmark generators.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Set, Tuple, Union

__all__ = [
    "Var",
    "Struct",
    "Term",
    "atom",
    "struct",
    "variables_of",
    "is_ground",
    "term_size",
    "term_depth",
    "subterms",
    "occurs_in",
    "rename_apart",
    "fresh_variable",
    "symbols_of",
    "functors_of",
]


@dataclass(frozen=True)
class Var:
    """A logical variable.

    Variables are compared by name: two ``Var("X")`` objects are the same
    variable.  Scoping (keeping the variables of two clauses apart) is the
    caller's job and is normally done with :func:`rename_apart`.
    """

    name: str

    def __repr__(self) -> str:
        return f"Var({self.name!r})"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Struct:
    """A compound term ``functor(arg1, ..., argn)``.

    ``args`` is a tuple; a nullary struct (``args == ()``) is a constant.
    The hash and the groundness flag are computed once at construction:
    terms are used heavily as dictionary keys in the subtype engine's memo
    tables, and the engine asks "is this ground?" at every recursion step
    — both must be O(1).
    """

    functor: str
    args: Tuple["Term", ...] = ()
    _hash: int = field(init=False, repr=False, compare=False, default=0)
    ground: bool = field(init=False, repr=False, compare=False, default=True)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.functor, self.args)))
        object.__setattr__(
            self,
            "ground",
            all(isinstance(a, Struct) and a.ground for a in self.args),
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    @property
    def indicator(self) -> Tuple[str, int]:
        """The ``name/arity`` pair identifying this symbol."""
        return (self.functor, len(self.args))

    def __repr__(self) -> str:
        if not self.args:
            return f"Struct({self.functor!r})"
        return f"Struct({self.functor!r}, {self.args!r})"

    def __str__(self) -> str:
        if not self.args:
            return self.functor
        return f"{self.functor}({', '.join(str(a) for a in self.args)})"


Term = Union[Var, Struct]


def atom(name: str) -> Struct:
    """Build a constant (nullary struct)."""
    return Struct(name, ())


def struct(functor: str, *args: Term) -> Struct:
    """Build a compound term from varargs (convenience constructor)."""
    return Struct(functor, tuple(args))


def subterms(term: Term) -> Iterator[Term]:
    """Yield every subterm of ``term`` (including ``term`` itself), pre-order."""
    stack: List[Term] = [term]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, Struct):
            stack.extend(reversed(current.args))


def variables_of(term: Term) -> Set[Var]:
    """The set of variables occurring in ``term`` (``var(t)`` in the paper)."""
    return {t for t in subterms(term) if isinstance(t, Var)}


def variables_in_order(term: Term) -> List[Var]:
    """Variables of ``term`` in first-occurrence (left-to-right) order."""
    seen: Set[Var] = set()
    ordered: List[Var] = []
    for sub in subterms(term):
        if isinstance(sub, Var) and sub not in seen:
            seen.add(sub)
            ordered.append(sub)
    return ordered


def is_ground(term: Term) -> bool:
    """True iff ``term`` contains no variables (O(1): cached on Struct)."""
    return isinstance(term, Struct) and term.ground


def term_size(term: Term) -> int:
    """Number of symbol/variable occurrences in ``term``."""
    return sum(1 for _ in subterms(term))


def term_depth(term: Term) -> int:
    """Height of the term tree; a variable or constant has depth 1."""
    depth = 0
    stack: List[Tuple[Term, int]] = [(term, 1)]
    while stack:
        current, level = stack.pop()
        if level > depth:
            depth = level
        if isinstance(current, Struct):
            stack.extend((arg, level + 1) for arg in current.args)
    return depth


def occurs_in(var: Var, term: Term) -> bool:
    """True iff ``var`` occurs in ``term`` (the occurs check)."""
    return any(sub == var for sub in subterms(term))


def symbols_of(term: Term) -> Set[Tuple[str, int]]:
    """All ``name/arity`` indicators of structs occurring in ``term``."""
    return {t.indicator for t in subterms(term) if isinstance(t, Struct)}


def functors_of(term: Term) -> Set[str]:
    """All functor names occurring in ``term``."""
    return {t.functor for t in subterms(term) if isinstance(t, Struct)}


_fresh_counter = itertools.count()


def fresh_variable(stem: str = "_G") -> Var:
    """A globally fresh variable.

    Freshness is process-wide: names drawn here never collide with each
    other.  User-written variables conventionally do not start with ``_G``
    (the parsers enforce nothing, but the workload generators avoid it).
    """
    return Var(f"{stem}{next(_fresh_counter)}")


def rename_apart(term: Term, taken: Iterable[Var] = ()) -> Tuple[Term, Dict[Var, Var]]:
    """Rename the variables of ``term`` to globally fresh ones.

    Returns the renamed term and the renaming used.  ``taken`` is accepted
    for API symmetry but freshness is global, so no collision with *any*
    existing variable is possible.

    Renaming a clause apart before resolution is the standard way to get
    standardized-apart variants (see ``repro.lp.resolution``); the
    well-typedness checker uses it to produce the per-atom renamings
    ``η_i`` of predicate-type variables (Definition 16).
    """
    del taken  # freshness is global; parameter kept for call-site clarity
    mapping: Dict[Var, Var] = {}

    def walk(t: Term) -> Term:
        if isinstance(t, Var):
            if t not in mapping:
                mapping[t] = fresh_variable()
            return mapping[t]
        if not t.args:
            return t
        return Struct(t.functor, tuple(walk(a) for a in t.args))

    return walk(term), mapping
