"""Pretty printing of terms, types, and clause parts.

The printer emits the paper's concrete syntax: infix ``+`` for the
predefined union type constructor (left associative, as the parser reads
it) and ordinary ``name(arg, ...)`` application everywhere else.  Output
round-trips through ``repro.lang.parser``: for every term ``t``,
``parse_term(pretty(t)) == t`` (tested property).
"""

from __future__ import annotations

from typing import Iterable

from .term import Struct, Term, Var

__all__ = ["pretty", "pretty_args", "UNION_TYPE"]

UNION_TYPE = "+"

#: Built-in constraint goal functors rendered infix (2-ary only).
_BUILTIN_GOALS = frozenset({"<", "=<", "=:=", "is"})

#: Renderings at most this long are cached on the node (``Struct._pretty``).
#: The bound keeps deep terms from pinning O(depth²) characters: a
#: 50k-deep ``succ`` tower would otherwise cache every suffix of its own
#: rendering.  Types and atoms — the terms printed over and over in
#: diagnostics and trace events — are far below the limit.
_PRETTY_CACHE_LIMIT = 120


def pretty(term: Term) -> str:
    """Render ``term`` in the paper's concrete syntax.

    Short renderings are cached per node, so with hash-consing on the
    hot printers (trace events, diagnostics) render each distinct type
    once per process rather than once per occurrence.
    """
    if isinstance(term, Var):
        return term.name
    cached = term._pretty
    if cached is not None:
        return cached
    text = _render(term)
    if len(text) <= _PRETTY_CACHE_LIMIT:
        term._pretty = text
    return text


def _render(term: Struct) -> str:
    if term.functor == ">=" and len(term.args) == 2:
        # Subtype atoms of the Horn theory H_C display infix.
        return f"{pretty(term.args[0])} >= {pretty(term.args[1])}"
    if term.functor == ":" and len(term.args) == 2:
        # Typed-unification constraints display infix too.
        return f"{pretty(term.args[0])} : {pretty(term.args[1])}"
    if term.functor in _BUILTIN_GOALS and len(term.args) == 2:
        # Built-in constraint goals (typed-CLP extension) display infix so
        # rewritten clauses and queries re-parse.
        return f"{pretty(term.args[0])} {term.functor} {pretty(term.args[1])}"
    if term.functor == UNION_TYPE and len(term.args) == 2:
        left, right = term.args
        left_str = pretty(left)
        # ``+`` is left associative: a right operand that is itself a union
        # must be parenthesised to round-trip.
        if isinstance(right, Struct) and right.functor == UNION_TYPE and len(right.args) == 2:
            right_str = f"({pretty(right)})"
        else:
            right_str = pretty(right)
        return f"{left_str} + {right_str}"
    if not term.args:
        return term.functor
    return f"{term.functor}({pretty_args(term.args)})"


def pretty_args(args: Iterable[Term]) -> str:
    """Comma-join pretty-printed ``args``, parenthesising top-level unions."""
    rendered = []
    for arg in args:
        text = pretty(arg)
        rendered.append(text)
    return ", ".join(rendered)
