"""Skolemization — the paper's bar operation ``τ̄``.

Definition 5 ("more general type") and Definition 10 ("respectful typing")
both use ``τ̄``: *"Let τ̄ be τ with each variable replaced by a unique
constant not appearing in any type."*  Replacing variables with fresh
constants turns an existentially quantified subtype question into a
universally quantified one: a refutation of ``:- τ1 >= τ̄2`` cannot
instantiate the (frozen) variables of ``τ2``, so success means ``τ1`` can
be specialised to cover *every* instance of ``τ2``.

Frozen constants are nullary structs with a reserved name prefix that the
parsers reject in user programs, so they genuinely "do not appear in any
type".  :func:`melt` inverts the operation, which the test-suite uses to
round-trip.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from .term import Struct, Term, Var, map_variables

__all__ = ["FROZEN_PREFIX", "freeze", "freeze_many", "melt", "is_frozen_constant"]

FROZEN_PREFIX = "'$frozen"

_freeze_counter = itertools.count()


def is_frozen_constant(term: Term) -> bool:
    """True iff ``term`` is a constant produced by :func:`freeze`."""
    return isinstance(term, Struct) and not term.args and term.functor.startswith(FROZEN_PREFIX)


def freeze(term: Term) -> Term:
    """``t̄``: replace each variable of ``term`` with a unique fresh constant.

    Distinct variables map to distinct constants; repeated occurrences of
    the same variable map to the same constant (the paper's ``τ̄`` requires
    exactly this — e.g. the frozen ``f(X, X)`` must stay unifiable only
    with terms whose two arguments are equal).
    """
    frozen, _ = freeze_with_mapping(term)
    return frozen


def _fresh_frozen(_variable: Var) -> Struct:
    return Struct(f"{FROZEN_PREFIX}{next(_freeze_counter)}", ())


def freeze_with_mapping(term: Term) -> Tuple[Term, Dict[Var, Struct]]:
    """Like :func:`freeze` but also return the variable → constant mapping.

    A ground term is its own bar (``t̄ = t``) and is returned as-is — an
    O(1) check on the cached groundness flag that makes the Definition
    5/10 "more general" comparisons free on their ground side.  The
    non-ground walk is iterative (``map_variables``) and shares ground
    subtrees instead of rebuilding them.  Results are never cached across
    calls: each freeze must mint *fresh* constants ("not appearing in any
    type"), so two freezes of the same non-ground term are deliberately
    different.
    """
    if isinstance(term, Struct) and term.ground:
        return term, {}
    mapping: Dict[Var, Struct] = {}
    return map_variables(term, mapping, default=_fresh_frozen), mapping


def freeze_many(terms: "list[Term]") -> "list[Term]":
    """Freeze several terms with one *shared* variable → constant mapping.

    Definition 10's respectfulness check compares ``τ̄`` with ``t̄θ`` where
    the two terms may share type variables; the bar operation assigns each
    *variable* a unique constant, so a variable shared between the terms
    must freeze to the same constant in both.  This helper provides that
    consistent freezing.
    """
    mapping: Dict[Var, Struct] = {}
    return [
        term
        if isinstance(term, Struct) and term.ground
        else map_variables(term, mapping, default=_fresh_frozen)
        for term in terms
    ]


def melt(term: Term, mapping: Dict[Var, Struct]) -> Term:
    """Invert :func:`freeze_with_mapping`: constants back to their variables.

    Frozen constants are themselves ground, so — unlike :func:`freeze` —
    melting cannot skip ground subtrees; it walks everything, iteratively.
    """
    inverse: Dict[Struct, Var] = {const: var for var, const in mapping.items()}
    if not inverse:
        return term
    if isinstance(term, Var):
        return term
    replacement = inverse.get(term)
    if replacement is not None:
        return replacement
    # Each frame is [node, built_args]; len(built_args) indexes the next child.
    frames: List[List[object]] = [[term, []]]
    result: Term = term
    while frames:
        node, built = frames[-1]
        args = node.args  # type: ignore[union-attr]
        index = len(built)  # type: ignore[arg-type]
        if index < len(args):
            child = args[index]
            if isinstance(child, Struct):
                melted = inverse.get(child)
                if melted is not None:
                    built.append(melted)  # type: ignore[union-attr]
                    continue
                if child.args:
                    frames.append([child, []])
                    continue
            built.append(child)  # type: ignore[union-attr]
            continue
        frames.pop()
        rebuilt: Term = (
            Struct(node.functor, tuple(built)) if args else node  # type: ignore[union-attr,arg-type]
        )
        if frames:
            frames[-1][1].append(rebuilt)  # type: ignore[union-attr]
        else:
            result = rebuilt
    return result
