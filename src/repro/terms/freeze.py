"""Skolemization — the paper's bar operation ``τ̄``.

Definition 5 ("more general type") and Definition 10 ("respectful typing")
both use ``τ̄``: *"Let τ̄ be τ with each variable replaced by a unique
constant not appearing in any type."*  Replacing variables with fresh
constants turns an existentially quantified subtype question into a
universally quantified one: a refutation of ``:- τ1 >= τ̄2`` cannot
instantiate the (frozen) variables of ``τ2``, so success means ``τ1`` can
be specialised to cover *every* instance of ``τ2``.

Frozen constants are nullary structs with a reserved name prefix that the
parsers reject in user programs, so they genuinely "do not appear in any
type".  :func:`melt` inverts the operation, which the test-suite uses to
round-trip.
"""

from __future__ import annotations

import itertools
from typing import Dict, Tuple

from .term import Struct, Term, Var

__all__ = ["FROZEN_PREFIX", "freeze", "freeze_many", "melt", "is_frozen_constant"]

FROZEN_PREFIX = "'$frozen"

_freeze_counter = itertools.count()


def is_frozen_constant(term: Term) -> bool:
    """True iff ``term`` is a constant produced by :func:`freeze`."""
    return isinstance(term, Struct) and not term.args and term.functor.startswith(FROZEN_PREFIX)


def freeze(term: Term) -> Term:
    """``t̄``: replace each variable of ``term`` with a unique fresh constant.

    Distinct variables map to distinct constants; repeated occurrences of
    the same variable map to the same constant (the paper's ``τ̄`` requires
    exactly this — e.g. the frozen ``f(X, X)`` must stay unifiable only
    with terms whose two arguments are equal).
    """
    frozen, _ = freeze_with_mapping(term)
    return frozen


def freeze_with_mapping(term: Term) -> Tuple[Term, Dict[Var, Struct]]:
    """Like :func:`freeze` but also return the variable → constant mapping."""
    mapping: Dict[Var, Struct] = {}

    def walk(t: Term) -> Term:
        if isinstance(t, Var):
            if t not in mapping:
                mapping[t] = Struct(f"{FROZEN_PREFIX}{next(_freeze_counter)}", ())
            return mapping[t]
        if not t.args:
            return t
        return Struct(t.functor, tuple(walk(a) for a in t.args))

    return walk(term), mapping


def freeze_many(terms: "list[Term]") -> "list[Term]":
    """Freeze several terms with one *shared* variable → constant mapping.

    Definition 10's respectfulness check compares ``τ̄`` with ``t̄θ`` where
    the two terms may share type variables; the bar operation assigns each
    *variable* a unique constant, so a variable shared between the terms
    must freeze to the same constant in both.  This helper provides that
    consistent freezing.
    """
    mapping: Dict[Var, Struct] = {}

    def walk(t: Term) -> Term:
        if isinstance(t, Var):
            if t not in mapping:
                mapping[t] = Struct(f"{FROZEN_PREFIX}{next(_freeze_counter)}", ())
            return mapping[t]
        if not t.args:
            return t
        return Struct(t.functor, tuple(walk(a) for a in t.args))

    return [walk(term) for term in terms]


def melt(term: Term, mapping: Dict[Var, Struct]) -> Term:
    """Invert :func:`freeze_with_mapping`: constants back to their variables."""
    inverse = {const: var for var, const in mapping.items()}

    def walk(t: Term) -> Term:
        if isinstance(t, Struct):
            if t in inverse:
                return inverse[t]
            if t.args:
                return Struct(t.functor, tuple(walk(a) for a in t.args))
        return t

    return walk(term)
