"""First-order term substrate: terms, substitutions, unification, freezing."""

from .freeze import (
    FROZEN_PREFIX,
    freeze,
    freeze_many,
    freeze_with_mapping,
    is_frozen_constant,
    melt,
)
from .pretty import UNION_TYPE, pretty
from .substitution import EMPTY_SUBSTITUTION, Substitution
from .term import (
    Struct,
    Term,
    Var,
    atom,
    fresh_variable,
    functors_of,
    is_ground,
    occurs_in,
    rename_apart,
    struct,
    subterms,
    symbols_of,
    term_depth,
    term_size,
    variables_in_order,
    variables_of,
)
from .unify import UnificationError, mgu, unifiable, unify

__all__ = [
    "Var",
    "Struct",
    "Term",
    "atom",
    "struct",
    "subterms",
    "variables_of",
    "variables_in_order",
    "is_ground",
    "term_size",
    "term_depth",
    "occurs_in",
    "symbols_of",
    "functors_of",
    "fresh_variable",
    "rename_apart",
    "Substitution",
    "EMPTY_SUBSTITUTION",
    "unify",
    "mgu",
    "unifiable",
    "UnificationError",
    "freeze",
    "freeze_many",
    "freeze_with_mapping",
    "melt",
    "is_frozen_constant",
    "FROZEN_PREFIX",
    "pretty",
    "UNION_TYPE",
]
