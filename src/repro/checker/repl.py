"""An interactive typed-Prolog REPL.

Loads a declaration file and answers queries under the type discipline:
every query is checked (Definition 16, with the directional fallback when
the file declares modes) before it is executed, and execution re-checks
every resolvent (Theorem 6 observation).  Meta-commands expose the type
system itself:

* ``app(X, Y, cons(nil,nil)).`` — run a (type-checked) query;
* ``:sub τ1 >= τ2`` — ask the deterministic subtype engine;
* ``:member τ term`` — ground-term membership ``t ∈ M[τ]``;
* ``:types term`` — which declared constructors can type a ground term;
* ``:why goal, goal...`` — explain a query's well-typedness check
  (per-atom typings, commitments, or the rejection reason);
* ``:lint`` — run the ``tlp-lint`` static analyzer over the loaded
  source (stable TLPxxx codes, fix-it suggestions);
* ``:stats [on|off|reset]`` — toggle/inspect ``repro.obs`` telemetry for
  the session (subtype goals, match calls, SLD steps, timers);
* ``:help`` / ``:quit``.

Run:  python -m repro.checker.repl examples/programs/append.tlp
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Optional

from .. import obs
from ..core.subtype import SubtypeEngine
from ..core.typed_resolution import TypedInterpreter
from ..lang.lexer import LexError
from ..lang.parser import ParseError, parse_query, parse_term
from ..lp.clause import Query
from ..terms.pretty import pretty
from ..terms.term import Struct, fresh_variable, is_ground
from .frontend import CheckedModule, check_text

__all__ = ["Repl", "run_session", "main"]

_HELP = """commands:
  <goal>, <goal>... .      run a type-checked query
  :sub  T1 >= T2           subtype test (deterministic engine)
  :member  T  TERM         ground-term membership t in M[T]
  :types  TERM             declared constructors able to type a ground term
  :why  <goal>, ...        explain the query's well-typedness check
  :lint [CODE,...]         run the static analyzer (optionally disabling rules)
  :modes                   declared modes + per-clause well-modedness verdicts
  :infer                   inferred success sets + reconstructed PRED lines
  :solve                   polymorphic subtype-constraint graphs, solved
  :stats [on|off|reset]    telemetry: show the metrics table / toggle / zero
  :profile [on|off|reset]  span profiler: show self/cumulative table / toggle
  :help                    this message
  :quit                    leave"""


class Repl:
    """One loaded module plus the machinery to answer queries about it."""

    def __init__(
        self,
        module: CheckedModule,
        max_answers: int = 10,
        source_text: Optional[str] = None,
    ) -> None:
        if not module.ok:
            raise ValueError(
                f"module has errors:\n{module.diagnostics.render()}"
            )
        self.module = module
        self.max_answers = max_answers
        #: Original source text, kept for the ``:lint`` meta-command.
        self.source_text = source_text
        checker = module.moded_checker or module.checker
        self.interpreter = TypedInterpreter(checker, module.program, check_program=False)
        self.engine = SubtypeEngine(module.constraints)
        #: Span profiler attached while ``:profile on`` is active.
        self.profiler: Optional[obs.SpanProfiler] = None

    # -- command dispatch ---------------------------------------------------------

    def execute(self, line: str) -> List[str]:
        """Process one input line; returns the output lines."""
        line = line.strip()
        if not line or line.startswith("%"):
            return []
        if line.startswith(":") and not line.startswith(":-"):
            return self._meta(line)
        return self._query(line)

    def _meta(self, line: str) -> List[str]:
        command, _, rest = line.partition(" ")
        rest = rest.strip()
        if command in (":quit", ":q", ":exit"):
            raise EOFError
        if command in (":help", ":h", ":?"):
            return _HELP.splitlines()
        if command == ":sub":
            return self._subtype(rest)
        if command == ":member":
            return self._member(rest)
        if command == ":types":
            return self._types(rest)
        if command == ":why":
            return self._why(rest)
        if command == ":lint":
            return self._lint(rest)
        if command == ":modes":
            return self._modes(rest)
        if command == ":infer":
            return self._infer(rest)
        if command == ":solve":
            return self._solve(rest)
        if command == ":stats":
            return self._stats(rest)
        if command == ":profile":
            return self._profile(rest)
        return [f"unknown command {command!r} — try :help"]

    def _lint(self, rest: str) -> List[str]:
        if self.source_text is None:
            return ["no source text available to lint"]
        from ..analysis import LintConfig, lint_text

        try:
            config = LintConfig.from_spec(disable=rest)
        except ValueError as error:
            return [str(error)]
        report = lint_text(self.source_text, config=config)
        if not report.diagnostics:
            return ["clean: no lint findings"]
        out: List[str] = []
        for diagnostic in report.diagnostics:
            out.append(str(diagnostic))
            for fixit in diagnostic.fixits:
                out.append(f"    fix: {fixit.description}")
        out.append(
            f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
        )
        return out

    def _modes(self, rest: str) -> List[str]:
        """``:modes``: the Section 7 mode environment plus each clause's
        moded-well-typedness verdict (strict or directional)."""
        if rest:
            return ["usage: :modes (no arguments)"]
        modes = self.module.modes
        if modes is None or not len(modes):
            return [
                "no MODE declarations in the loaded module "
                "(strict Definition 16 applies everywhere)"
            ]
        from ..lang.render import render_modes

        out = render_modes(modes).splitlines()
        moded = self.module.moded_checker
        if moded is None:
            return out
        out.append("")
        for clause in self.module.program:
            if any(
                goal.functor == ":" and len(goal.args) == 2
                for goal in clause.body
            ):
                out.append(f"{clause}  --  constrained (checked dynamically)")
                continue
            report = moded.check_clause(clause)
            if report.well_typed:
                out.append(f"{clause}  --  well-moded via {report.via}")
            else:
                out.append(f"{clause}  --  NOT well-moded: {report.reason}")
        return out

    def _infer(self, rest: str) -> List[str]:
        if rest:
            return ["usage: :infer (no arguments)"]
        if self.source_text is None:
            return ["no source text available to analyze"]
        from ..analysis.absint import infer_text

        inference = infer_text(self.source_text)
        if inference is None:
            return [
                "inference unavailable: the file does not parse or its "
                "constraint set falls outside the uniform + guarded fragment"
            ]
        out: List[str] = []
        for indicator in sorted(inference.success):
            out.extend(inference.success[indicator].render())
        declarations = inference.declaration_lines()
        if declarations:
            out.append("reconstructed declarations:")
            out.extend(f"  {line}" for line in declarations)
        return out or ["no predicates to analyze"]

    def _solve(self, rest: str) -> List[str]:
        """``:solve``: render the TLP6xx solver's constraint graphs — per
        polymorphic/built-in clause or query, the solved type-variable
        domains and any unsatisfiability witnesses."""
        if rest:
            return ["usage: :solve (no arguments)"]
        if self.source_text is None:
            return ["no source text available to analyze"]
        from ..analysis.polytypes import solve_text

        solved = solve_text(self.source_text)
        if solved is None:
            return [
                "nothing to solve: no polymorphic declarations or built-in "
                "constraint goals in the loaded module"
            ]
        out = ["candidate ground types: " + ", ".join(solved["candidates"])]
        for item in solved["items"]:
            verdict = "satisfiable" if item["satisfiable"] else "UNSATISFIABLE"
            out.append(f"{item['item']}  --  {verdict}")
            for node in item["nodes"]:
                kind = "type var" if node["rigid"] else "var"
                domain = ", ".join(node["domain"]) or "(empty)"
                out.append(f"  {kind} {node['display']}: {{{domain}}}")
            for group in item["equalities"]:
                out.append("  forced equal: " + " = ".join(group))
            for witness in item["witnesses"]:
                source = " (built-in signature involved)" if witness["builtin"] else ""
                out.append(f"  witness on {witness['node']}{source}:")
                for bound in witness["bounds"]:
                    out.append(f"    {bound}")
        return out

    def _stats(self, rest: str) -> List[str]:
        if rest == "on":
            obs.METRICS.enabled = True
            return ["telemetry on"]
        if rest == "off":
            obs.METRICS.enabled = False
            return ["telemetry off"]
        if rest == "reset":
            obs.METRICS.reset()
            return ["telemetry counters zeroed"]
        if rest:
            return ["usage: :stats [on|off|reset]"]
        state = "on" if obs.METRICS.enabled else "off (`:stats on` to enable)"
        return (
            [f"telemetry {state}"]
            + obs.render_summary().splitlines()
            + obs.runtime_stats_lines()
        )

    def _profile(self, rest: str) -> List[str]:
        """``:profile``: span-level self/cumulative times of REPL queries.

        ``on`` attaches a :class:`~repro.obs.SpanProfiler` to the tracer
        (queries then emit ``typed_query``/``match_call``/``subtype_goal``
        spans); bare ``:profile`` renders the aggregated table; ``reset``
        drops collected spans; ``off`` detaches.
        """
        if rest == "on":
            if self.profiler is not None:
                return ["profiler already on"]
            self.profiler = obs.profile_spans()
            return ["profiler on — run queries, then :profile for the table"]
        if rest == "off":
            if self.profiler is None:
                return ["profiler is not on"]
            obs.TRACER.remove_sink(self.profiler)
            self.profiler = None
            return ["profiler off"]
        if rest == "reset":
            if self.profiler is None:
                return ["profiler is not on"]
            self.profiler.clear()
            return ["profiler spans dropped"]
        if rest:
            return ["usage: :profile [on|off|reset]"]
        if self.profiler is None:
            return ["profiler off (`:profile on` to enable)"]
        return self.profiler.report().render_table().splitlines()

    def _why(self, rest: str) -> List[str]:
        text = rest if rest.startswith(":-") else f":- {rest}"
        if not text.rstrip().endswith("."):
            text += "."
        try:
            parsed = parse_query(text)
        except (ParseError, LexError) as error:
            return [f"syntax error: {error}"]
        checker = self.module.moded_checker or self.module.checker
        report = checker.check_query(Query(parsed.body))
        explain = getattr(report, "explain", None)
        if explain is not None:
            return explain().splitlines()
        verdict = "well-typed" if report.well_typed else f"NOT well-typed: {report.reason}"
        return [verdict]

    # -- queries ---------------------------------------------------------------------

    def _query(self, line: str) -> List[str]:
        text = line if line.startswith(":-") else f":- {line}"
        if not text.rstrip().endswith("."):
            text += "."
        try:
            parsed = parse_query(text)
        except (ParseError, LexError) as error:
            return [f"syntax error: {error}"]
        if any(g.functor == ":" and len(g.args) == 2 for g in parsed.body):
            return self._constrained_query(parsed.body)
        query = Query(parsed.body)
        checker = self.module.moded_checker or self.module.checker
        report = checker.check_query(query)
        if not report.well_typed:
            return [f"ill-typed query: {report.reason}"]
        result = self.interpreter.run(
            query, max_answers=self.max_answers, check_query=False
        )
        out: List[str] = []
        if not result.answers:
            out.append("no.")
        for answer in result.answers:
            if len(answer) == 0:
                out.append("yes.")
            else:
                bindings = ", ".join(
                    f"{var} = {pretty(value)}"
                    for var, value in sorted(answer.items(), key=lambda p: p[0].name)
                )
                out.append(bindings)
        if not result.consistent:
            out.append(
                f"!! {len(result.violations)} resolvent consistency violations"
            )
        return out

    def _constrained_query(self, goals) -> List[str]:
        """Run a typed-unification query (Section 7): ``X : τ`` goals are
        enforced by the constraint store, not Definition 16."""
        from ..lp.constrained import ConstrainedInterpreter
        from ..lp.database import Database

        interpreter = ConstrainedInterpreter(
            Database(self.module.program), self.engine
        )
        # Constraints can prune every answer of an infinite search, so the
        # interactive depth budget is kept modest.
        result = interpreter.run(goals, max_answers=self.max_answers, depth_limit=300)
        out: List[str] = []
        if not result.answers:
            out.append("no.")
        for answer in result.answers:
            if len(answer.substitution) == 0:
                line = "yes."
            else:
                line = ", ".join(
                    f"{var} = {pretty(value)}"
                    for var, value in sorted(
                        answer.substitution.items(), key=lambda p: p[0].name
                    )
                )
            if answer.residual:
                line += "   | " + ", ".join(str(c) for c in answer.residual)
            out.append(line)
        return out

    # -- type-system meta-commands -------------------------------------------------------

    def _parse_term(self, text: str):
        try:
            return parse_term(text), None
        except (ParseError, LexError) as error:
            return None, [f"syntax error: {error}"]

    def _subtype(self, rest: str) -> List[str]:
        left, sep, right = rest.partition(">=")
        if not sep:
            return ["usage: :sub T1 >= T2"]
        sup, errors = self._parse_term(left.strip())
        if errors:
            return errors
        sub, errors = self._parse_term(right.strip())
        if errors:
            return errors
        verdict = self.engine.holds(sup, sub)
        return [f"{pretty(sup)} >= {pretty(sub)}: {'yes' if verdict else 'no'}"]

    def _member(self, rest: str) -> List[str]:
        parts = rest.split(None, 1)
        if len(parts) != 2:
            return ["usage: :member T TERM"]
        type_term, errors = self._parse_term(parts[0])
        if errors:
            return errors
        term, errors = self._parse_term(parts[1])
        if errors:
            return errors
        if not is_ground(term):
            return ["membership needs a ground term"]
        verdict = self.engine.contains(type_term, term)
        return [f"{pretty(term)} in M[{pretty(type_term)}]: {'yes' if verdict else 'no'}"]

    def _types(self, rest: str) -> List[str]:
        term, errors = self._parse_term(rest)
        if errors:
            return errors
        if term is None or not is_ground(term):
            return ["usage: :types GROUND-TERM"]
        symbols = self.module.constraints.symbols
        found: List[str] = []
        for name, arity in symbols.type_constructors.items():
            candidate = Struct(name, tuple(fresh_variable("_R") for _ in range(arity)))
            if self.engine.holds(candidate, term):
                found.append(pretty(candidate) if arity == 0 else f"{name}(...)")
        if not found:
            return [f"no declared constructor types {pretty(term)}"]
        return [f"{pretty(term)} : " + ", ".join(found)]


def run_session(source_text: str, commands: Iterable[str]) -> List[str]:
    """Non-interactive session driver (used by the tests): check the
    source, feed each command, collect all output lines."""
    module = check_text(source_text)
    repl = Repl(module, source_text=source_text)
    out: List[str] = []
    for command in commands:
        try:
            out.extend(repl.execute(command))
        except EOFError:
            break
    return out


def main(argv: Optional[List[str]] = None) -> int:
    """Interactive entry point: ``python -m repro.checker.repl file.tlp``."""
    arguments = argv if argv is not None else sys.argv[1:]
    if len(arguments) != 1:
        print("usage: python -m repro.checker.repl FILE", file=sys.stderr)
        return 2
    with open(arguments[0], "r", encoding="utf-8") as handle:
        source_text = handle.read()
    module = check_text(source_text)
    if not module.ok:
        print(module.diagnostics.render(), file=sys.stderr)
        return 1
    repl = Repl(module, source_text=source_text)
    print(f"loaded {arguments[0]} ({len(module.program)} clauses); :help for help")
    while True:
        try:
            line = input("?- ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            for output in repl.execute(line):
                print(output)
        except EOFError:
            return 0


if __name__ == "__main__":
    sys.exit(main())
