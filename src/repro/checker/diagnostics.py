"""Structured diagnostics for the whole-file type checker and the linter."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..lang.ast import Position

__all__ = ["Severity", "FixIt", "Diagnostic", "DiagnosticBag", "DEFAULT_CODE"]


class Severity:
    """Diagnostic severities (errors make the module ill-typed)."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


#: The "no stable code assigned" code.  Diagnostics carrying it render
#: exactly as they did before codes existed, so cached JSON results and
#: tests matching the old format keep working.
DEFAULT_CODE = "TLP000"


@dataclass(frozen=True)
class FixIt:
    """A machine-applicable suggestion attached to a diagnostic.

    ``replacement`` is the text to insert (or substitute) at
    ``position``; when either is absent the fix-it is advisory only and
    ``description`` carries the full suggestion.
    """

    description: str
    replacement: Optional[str] = None
    position: Optional[Position] = None

    def __str__(self) -> str:
        return self.description


@dataclass(frozen=True)
class Diagnostic:
    """One message, optionally anchored to a source position.

    ``code`` is a stable machine identifier (``TLP123`` style) used by
    the lint rule registry, cache keys, and SARIF output.  The default
    :data:`DEFAULT_CODE` means "unassigned" and is omitted from the
    rendered form for backward compatibility.
    """

    severity: str
    message: str
    position: Optional[Position] = None
    code: str = DEFAULT_CODE
    fixits: Tuple[FixIt, ...] = ()

    def __str__(self) -> str:
        where = f"{self.position}: " if self.position else ""
        label = self.severity
        if self.code and self.code != DEFAULT_CODE:
            label = f"{self.severity}[{self.code}]"
        return f"{where}{label}: {self.message}"


@dataclass
class DiagnosticBag:
    """An append-only collection of diagnostics."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def error(
        self,
        message: str,
        position: Optional[Position] = None,
        code: str = DEFAULT_CODE,
        fixits: Tuple[FixIt, ...] = (),
    ) -> None:
        self.diagnostics.append(
            Diagnostic(Severity.ERROR, message, position, code, fixits)
        )

    def warning(
        self,
        message: str,
        position: Optional[Position] = None,
        code: str = DEFAULT_CODE,
        fixits: Tuple[FixIt, ...] = (),
    ) -> None:
        self.diagnostics.append(
            Diagnostic(Severity.WARNING, message, position, code, fixits)
        )

    def note(
        self,
        message: str,
        position: Optional[Position] = None,
        code: str = DEFAULT_CODE,
        fixits: Tuple[FixIt, ...] = (),
    ) -> None:
        self.diagnostics.append(
            Diagnostic(Severity.NOTE, message, position, code, fixits)
        )

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics) -> None:
        for diagnostic in diagnostics:
            self.diagnostics.append(diagnostic)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == Severity.ERROR for d in self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def render(self) -> str:
        """All diagnostics, one per line."""
        return "\n".join(str(d) for d in self.diagnostics)
