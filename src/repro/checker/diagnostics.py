"""Structured diagnostics for the whole-file type checker."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..lang.ast import Position

__all__ = ["Severity", "Diagnostic", "DiagnosticBag"]


class Severity:
    """Diagnostic severities (errors make the module ill-typed)."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


@dataclass(frozen=True)
class Diagnostic:
    """One message, optionally anchored to a source position."""

    severity: str
    message: str
    position: Optional[Position] = None

    def __str__(self) -> str:
        where = f"{self.position}: " if self.position else ""
        return f"{where}{self.severity}: {self.message}"


@dataclass
class DiagnosticBag:
    """An append-only collection of diagnostics."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def error(self, message: str, position: Optional[Position] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.ERROR, message, position))

    def warning(self, message: str, position: Optional[Position] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.WARNING, message, position))

    def note(self, message: str, position: Optional[Position] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.NOTE, message, position))

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == Severity.ERROR for d in self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def render(self) -> str:
        """All diagnostics, one per line."""
        return "\n".join(str(d) for d in self.diagnostics)
