"""Command-line driver: ``tlp-check file.tlp``.

Checks each file and prints diagnostics; with ``--run`` it additionally
executes the file's queries through the typed interpreter and prints the
answers (with per-resolvent consistency checking, Theorem 6 style).
Exit status: 0 when every file is well-typed, 1 otherwise, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..core.subtype import SubtypeEngine
from ..core.typed_resolution import TypedInterpreter
from ..lp.constrained import ConstrainedInterpreter
from ..lp.database import Database
from ..terms.pretty import pretty
from .frontend import check_text

__all__ = ["main"]


def _build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tlp-check",
        description=(
            "Type-check (and optionally run) typed logic programs in the "
            "declaration language of Jacobs, PLDI 1990."
        ),
    )
    parser.add_argument("files", nargs="+", help="source files to check")
    parser.add_argument(
        "--run",
        action="store_true",
        help="execute the queries of well-typed files through the typed interpreter",
    )
    parser.add_argument(
        "--max-answers",
        type=int,
        default=10,
        help="answers to print per query with --run (default 10)",
    )
    parser.add_argument(
        "--depth-limit",
        type=int,
        default=10_000,
        help="resolution depth bound with --run (default 10000)",
    )
    return parser


def _run_queries(module, max_answers: int, depth_limit: int) -> int:
    """Execute queries; returns the number of consistency violations."""
    assert module.checker is not None
    # For moded modules the directional checker judges resolvents, so
    # moded-but-not-strictly-well-typed resolvents are not false alarms.
    checker = module.moded_checker or module.checker
    interpreter = TypedInterpreter(checker, module.program, check_program=False)
    constrained: Optional[ConstrainedInterpreter] = None
    violations = 0
    for query in module.queries:
        print(f"?- {', '.join(pretty(g) for g in query.goals)}.")
        if any(g.functor == ":" and len(g.args) == 2 for g in query.goals):
            # Typed-unification query: the constrained interpreter
            # enforces the ``X : τ`` store at run time (Section 7).
            if constrained is None:
                constrained = ConstrainedInterpreter(
                    Database(module.program), SubtypeEngine(module.constraints)
                )
            c_result = constrained.run(
                query.goals, max_answers=max_answers, depth_limit=depth_limit
            )
            if not c_result.answers:
                print("   no.")
            for c_answer in c_result.answers:
                _print_answer(c_answer.substitution)
                for residue in c_answer.residual:
                    print(f"     | {residue}")
            continue
        result = interpreter.run(
            query,
            max_answers=max_answers,
            depth_limit=depth_limit,
            check_query=False,
        )
        if not result.answers:
            print("   no.")
        for answer in result.answers:
            _print_answer(answer)
        if not result.consistent:
            violations += len(result.violations) + len(result.answer_violations)
            print(f"   !! {len(result.violations)} resolvent consistency violations")
    return violations


def _print_answer(answer) -> None:
    if len(answer) == 0:
        print("   yes.")
        return
    bindings = ", ".join(
        f"{var} = {pretty(value)}"
        for var, value in sorted(answer.items(), key=lambda pair: pair[0].name)
    )
    print(f"   {bindings}")


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (also installed as the ``tlp-check`` console script)."""
    parser = _build_argument_parser()
    arguments = parser.parse_args(argv)
    exit_code = 0
    for path in arguments.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"{path}: cannot read: {error}", file=sys.stderr)
            return 2
        module = check_text(text)
        if len(module.diagnostics):
            for diagnostic in module.diagnostics:
                print(f"{path}:{diagnostic}")
        if module.ok:
            print(f"{path}: well-typed ({len(module.program)} clauses, "
                  f"{len(module.queries)} queries)")
            if arguments.run and module.queries:
                violations = _run_queries(
                    module, arguments.max_answers, arguments.depth_limit
                )
                if violations:
                    exit_code = 1
        else:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
