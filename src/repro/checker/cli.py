"""Command-line driver: ``tlp-check file.tlp``.

Checks each file and prints diagnostics; with ``--run`` it additionally
executes the file's queries through the typed interpreter and prints the
answers (with per-resolvent consistency checking, Theorem 6 style).

Observability (``repro.obs``):

- ``--stats`` enables the telemetry registry for the run and prints the
  counter/gauge/timer table after all files are processed.  It also
  audits every Definition 16 typing witness of well-typed files through
  the subtype engine (Definition 10 respectfulness), so the subtype
  machinery — not just ``match`` — shows up in the counters.
- ``--trace[=FILE]`` streams structured trace events as JSON Lines to
  ``FILE`` (or stderr when no file is given) while checking runs.
- ``--profile[=FILE]`` rides the same span stream through a
  :class:`~repro.obs.profile.SpanProfiler`: after the run it prints the
  per-span-name self/cumulative time table, and with ``FILE`` writes
  collapsed-stack lines for flamegraph tooling.
- ``--metrics-out FILE`` writes the run's telemetry as Prometheus text
  exposition (the same document ``tlp-serve``'s ``metrics`` op returns).

Exit status: 0 when every file is well-typed, 1 otherwise, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .. import obs
from ..core.subtype import SubtypeEngine
from ..core.typed_resolution import TypedInterpreter
from ..lp.constrained import ConstrainedInterpreter
from ..lp.database import Database
from ..terms.freeze import freeze_with_mapping
from ..terms.pretty import pretty
from ..terms.substitution import Substitution
from ..terms.term import variables_of
from .frontend import check_text

__all__ = ["main"]


def _build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tlp-check",
        description=(
            "Type-check (and optionally run) typed logic programs in the "
            "declaration language of Jacobs, PLDI 1990."
        ),
    )
    parser.add_argument(
        "files",
        nargs="+",
        help="source files (or directories, walked recursively for *.tlp) to check",
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="execute the queries of well-typed files through the typed interpreter",
    )
    parser.add_argument(
        "--typed-run",
        action="store_true",
        help=(
            "execute queries in the mode-checked configuration, asserting "
            "Theorem 6 subject reduction at every resolution step; a query "
            "aborts at its first ill-typed resolvent with a TLP590 "
            "diagnostic (runs even on statically rejected files — the "
            "dynamic witness for the static verdict; takes precedence "
            "over --run)"
        ),
    )
    parser.add_argument(
        "--max-answers",
        type=int,
        default=10,
        help="answers to print per query with --run (default 10)",
    )
    parser.add_argument(
        "--depth-limit",
        type=int,
        default=10_000,
        help="resolution depth bound with --run (default 10000)",
    )
    parser.add_argument(
        "--lint",
        nargs="?",
        const="warn",
        default="off",
        choices=("warn", "error", "off"),
        metavar="MODE",
        help=(
            "also run the tlp-lint static analyzer on each file: 'warn' "
            "(default when the flag is given) reports findings without "
            "affecting exit status, 'error' makes error-severity findings "
            "fail the run, 'off' disables (default)"
        ),
    )
    parser.add_argument(
        "--infer",
        action="store_true",
        help=(
            "run whole-program success-set inference and print "
            "reconstructed PRED declarations for undeclared predicates"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="collect telemetry and print the metrics table after checking",
    )
    parser.add_argument(
        "--no-intern",
        action="store_true",
        help=(
            "disable the hash-consing term intern table for this run "
            "(differential-testing escape hatch; seed representation)"
        ),
    )
    parser.add_argument(
        "--no-shared-memo",
        action="store_true",
        help=(
            "disable the process-wide shared subtype memo; every engine "
            "keeps its own cold memo (seed behaviour)"
        ),
    )
    parser.add_argument(
        "--no-automata",
        action="store_true",
        help=(
            "disable the compiled tree automata for ground subtype/match "
            "queries; every goal runs the template-expansion path "
            "(seed behaviour)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "check files on N parallel workers via the batch service "
            "(plain checking only; --run stays sequential)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "persist per-file verdicts under DIR and skip re-checking "
            "unchanged files (shared with tlp-batch/tlp-serve)"
        ),
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help=(
            "stream structured trace events as JSON Lines to FILE "
            "(stderr when FILE is omitted)"
        ),
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help=(
            "profile the run via the span stream and print the "
            "self/cumulative time table; with FILE, also write "
            "collapsed-stack lines (flamegraph.pl/speedscope input) there"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "write the run's telemetry as Prometheus text exposition to "
            "FILE after checking (implies telemetry collection)"
        ),
    )
    return parser


def _run_queries(module, max_answers: int, depth_limit: int) -> int:
    """Execute queries; returns the number of consistency violations."""
    assert module.checker is not None
    # For moded modules the directional checker judges resolvents, so
    # moded-but-not-strictly-well-typed resolvents are not false alarms.
    checker = module.moded_checker or module.checker
    interpreter = TypedInterpreter(checker, module.program, check_program=False)
    constrained: Optional[ConstrainedInterpreter] = None
    violations = 0
    for query in module.queries:
        print(f"?- {', '.join(pretty(g) for g in query.goals)}.")
        if any(g.functor == ":" and len(g.args) == 2 for g in query.goals):
            # Typed-unification query: the constrained interpreter
            # enforces the ``X : τ`` store at run time (Section 7).
            if constrained is None:
                constrained = ConstrainedInterpreter(
                    Database(module.program),
                    module.engine or SubtypeEngine(module.constraints),
                )
            c_result = constrained.run(
                query.goals, max_answers=max_answers, depth_limit=depth_limit
            )
            if not c_result.answers:
                print("   no.")
            for c_answer in c_result.answers:
                _print_answer(c_answer.substitution)
                for residue in c_answer.residual:
                    print(f"     | {residue}")
            continue
        result = interpreter.run(
            query,
            max_answers=max_answers,
            depth_limit=depth_limit,
            check_query=False,
        )
        if not result.answers:
            print("   no.")
        for answer in result.answers:
            _print_answer(answer)
        if not result.consistent:
            violations += len(result.violations) + len(result.answer_violations)
            print(f"   !! {len(result.violations)} resolvent consistency violations")
    return violations


def _typed_run_queries(path: str, module, arguments) -> int:
    """Execute queries via :class:`~repro.core.typed_run.TypedRunner`,
    asserting subject reduction per step.  Returns the number of aborted
    queries; each violation prints as a span-carrying TLP590 diagnostic
    anchored at the query's source position."""
    from ..core.typed_run import TYPED_RUN_CODE, TypedRunner
    from .diagnostics import Diagnostic, Severity

    checker = module.moded_checker or module.checker
    if checker is None:
        return 0
    runner = TypedRunner(checker, module.program)
    aborted = 0
    for index, query in enumerate(module.queries):
        if _has_constraint_goal(query.goals):
            continue  # ':' queries live in the constrained execution model
        print(f"?- {', '.join(pretty(g) for g in query.goals)}.")
        result = runner.run(
            query,
            max_answers=arguments.max_answers,
            depth_limit=arguments.depth_limit,
        )
        if not result.answers:
            print("   no.")
        for answer in result.answers:
            _print_answer(answer)
        if result.violation is not None:
            aborted += 1
            position = (
                module.query_positions[index]
                if index < len(module.query_positions)
                else None
            )
            diagnostic = Diagnostic(
                Severity.ERROR,
                result.violation.render(),
                position,
                code=TYPED_RUN_CODE,
            )
            print(f"{path}:{diagnostic}")
        else:
            print(
                f"   subject reduction held across {result.steps} "
                f"resolvent(s)."
            )
    return aborted


def _print_answer(answer) -> None:
    if len(answer) == 0:
        print("   yes.")
        return
    bindings = ", ".join(
        f"{var} = {pretty(value)}"
        for var, value in sorted(answer.items(), key=lambda pair: pair[0].name)
    )
    print(f"   {bindings}")


def _has_constraint_goal(goals) -> bool:
    return any(g.functor == ":" and len(g.args) == 2 for g in goals)


def _audit_typing_witnesses(module) -> int:
    """Verify the module's Definition 16 witnesses through the subtype engine.

    Static checking alone only exercises ``match``; this re-derives each
    clause's committed typings and confirms every one is *respectful*
    (Definition 10) via actual ``τ ⪰_C tθ`` subtype goals, so ``--stats``
    reports genuine subtype-engine activity.  Returns the number of
    witnesses confirmed respectful.
    """
    checker = module.moded_checker or module.checker
    if checker is None or module.constraints is None:
        return 0
    # The frontend's shared engine arrives pre-warmed by the moded/mode
    # checking stages, so hot goals of the audit are memo hits.
    engine = module.engine or SubtypeEngine(module.constraints)
    reports = []
    with obs.METRICS.time("cli.witness_audit"), obs.TRACER.span("witness_audit"):
        for clause in module.program:
            if _has_constraint_goal(clause.body):
                continue
            reports.append(checker.check_clause(clause))
        for query in module.queries:
            if _has_constraint_goal(query.goals):
                continue
            reports.append(checker.check_query(query))
        respectful = 0
        for report in reports:
            for check in getattr(report, "atom_checks", []):
                if check.final_typing is None:
                    continue
                committed = (
                    check.eta.apply(check.working_type)
                    if check.eta is not None
                    else check.working_type
                )
                if _witness_respectful(engine, committed, check.atom, check.final_typing):
                    respectful += 1
                    obs.METRICS.inc("cli.respectful_witnesses")
                else:
                    obs.METRICS.inc("cli.unrespectful_witnesses")
    return respectful


def _witness_respectful(engine, committed, atom, typing) -> bool:
    """Definition 10 for an audited witness: ``τ̄ ⪰_C t̄θ``.

    A solved commitment η may leave some of its variables free (any
    instantiation works); those must stay *unfrozen* so the subtype
    engine can bind them — the bar operation applies only to variables
    of the typed atom, shared consistently across both sides.
    """
    if not variables_of(atom) <= typing.domain:
        return False
    typed_frozen, mapping = freeze_with_mapping(typing.apply(atom))
    committed_frozen = Substitution(mapping).apply(committed)
    return engine.holds(committed_frozen, typed_frozen)


def _expand_files(arguments) -> Optional[List[str]]:
    """Resolve file/directory arguments into a flat list of source files.

    Directories are walked recursively for ``*.tlp`` (sorted, so runs are
    deterministic).  Returns ``None`` after printing an error when a path
    is missing or a directory holds no programs.
    """
    from ..service.project import ProjectError, discover_tlp_files

    try:
        expanded = discover_tlp_files(arguments.files)
    except ProjectError as error:
        print(f"tlp-check: {error}", file=sys.stderr)
        return None
    if not expanded:
        print("tlp-check: no .tlp files found", file=sys.stderr)
        return None
    return [str(path) for path in expanded]


def _check_files_batched(arguments, files: List[str]) -> int:
    """Service-backed checking (``--jobs``/``--cache-dir``): same per-file
    lines as the sequential loop, plus cache replay and parallel workers."""
    from ..service.cache import ResultCache
    from ..service.project import Project, ProjectError, ProjectFile
    from ..service.runner import run_batch

    project = Project(name="tlp-check", root=Path("."))
    try:
        for path in files:
            project.files.append(ProjectFile.read(Path(path), display=path))
    except ProjectError as error:
        print(f"tlp-check: {error}", file=sys.stderr)
        return 2
    lint_config = None
    ruleset = ""
    if arguments.lint != "off":
        from ..analysis import LintConfig, ruleset_fingerprint

        lint_config = LintConfig()
        ruleset = ruleset_fingerprint(lint_config)
    cache = (
        ResultCache(arguments.cache_dir, ruleset=ruleset, infer=arguments.infer)
        if arguments.cache_dir
        else None
    )
    report = run_batch(
        project,
        cache=cache,
        jobs=arguments.jobs,
        lint=lint_config,
        infer=arguments.infer,
    )
    lint_errors = 0
    for result in report.results:
        for diagnostic in result.diagnostics:
            print(f"{result.display}:{diagnostic}")
        for finding in result.lint:
            print(f"{result.display}:{finding}")
            if "error[TLP" in finding:
                lint_errors += 1
        for line in result.inferred:
            print(f"{result.display}: inferred {line}")
        print(result.summary_line())
    if arguments.lint == "error" and lint_errors:
        return 1
    return report.exit_code


def _check_files(arguments) -> int:
    """The core loop: check (and optionally run) every file."""
    files = _expand_files(arguments)
    if files is None:
        return 2
    if (
        (arguments.jobs > 1 or arguments.cache_dir)
        and not arguments.run
        and not arguments.typed_run
    ):
        return _check_files_batched(arguments, files)
    multi = len(files) > 1
    exit_code = 0
    lint_config = None
    if arguments.lint != "off":
        from ..analysis import LintConfig

        lint_config = LintConfig()
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"{path}: cannot read: {error}", file=sys.stderr)
            return 2
        # Per-file span: ``--profile``/``--trace`` attribute everything a
        # file costs (check, lint, inference, query runs) to its path.
        with obs.TRACER.span("check_file", path):
            module = check_text(text)
            if len(module.diagnostics):
                for diagnostic in module.diagnostics:
                    print(f"{path}:{diagnostic}")
            if lint_config is not None:
                from ..analysis import lint_text

                lint_report = lint_text(text, path=path, config=lint_config)
                for finding in lint_report.diagnostics:
                    print(f"{path}:{finding}")
                if arguments.lint == "error" and lint_report.errors:
                    exit_code = 1
            if arguments.infer:
                from ..analysis.absint import infer_text

                inference = infer_text(text, path=path)
                if inference is not None:
                    for line in inference.declaration_lines():
                        print(f"{path}: inferred {line}")
            if module.ok:
                print(f"{path}: well-typed ({len(module.program)} clauses, "
                      f"{len(module.queries)} queries)")
                if arguments.stats:
                    witnesses = _audit_typing_witnesses(module)
                    print(
                        f"{path}: {witnesses} typing witnesses verified "
                        f"respectful"
                    )
                if arguments.run and not arguments.typed_run and module.queries:
                    violations = _run_queries(
                        module, arguments.max_answers, arguments.depth_limit
                    )
                    if violations:
                        exit_code = 1
            else:
                if multi:
                    print(
                        f"{path}: ill-typed "
                        f"({len(module.diagnostics)} diagnostics)"
                    )
                exit_code = 1
            # --typed-run executes whenever the pipeline built a checker
            # (restrictions held), even for statically rejected files:
            # the per-step re-check is the dynamic witness for the
            # static verdict, and an ill-moded program is expected to
            # abort at its first violating resolvent.
            if (
                arguments.typed_run
                and module.checker is not None
                and module.queries
            ):
                aborted = _typed_run_queries(path, module, arguments)
                if aborted:
                    exit_code = 1
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (also installed as the ``tlp-check`` console script)."""
    from ..core.automata import AUTOMATA
    from ..core.shared_memo import SHARED_MEMO
    from ..terms.term import set_interning

    parser = _build_argument_parser()
    arguments = parser.parse_args(argv)
    # Escape hatches (restored on exit so library callers of main() keep
    # their process-wide settings).
    intern_before = set_interning(False) if arguments.no_intern else None
    memo_before = (
        SHARED_MEMO.set_enabled(False) if arguments.no_shared_memo else None
    )
    automata_before = (
        AUTOMATA.set_enabled(False) if arguments.no_automata else None
    )
    try:
        observed = (
            arguments.stats
            or arguments.trace is not None
            or arguments.profile is not None
            or arguments.metrics_out is not None
        )
        if not observed:
            return _check_files(arguments)

        # Observed run: enable telemetry (and tracing) for the duration,
        # restoring the process-wide obs state on the way out so library
        # callers of main() are unaffected.  Sinks detach and close via
        # ``TRACER.close_sinks()`` in the ``finally`` — a trace file is
        # flushed and complete on disk even when checking raises.
        was_enabled = obs.METRICS.enabled
        obs.reset()
        obs.METRICS.enabled = True
        profiler = None
        root = None
        try:
            if arguments.trace is not None:
                if arguments.trace == "-":
                    obs.TRACER.add_sink(obs.JsonlSink(sys.stderr))
                else:
                    try:
                        obs.trace_to_path(arguments.trace)
                    except OSError as error:
                        print(
                            f"{arguments.trace}: cannot write trace: {error}",
                            file=sys.stderr,
                        )
                        return 2
            if arguments.profile is not None:
                profiler = obs.profile_spans()
                # One root span around the whole run: per-file spans (and
                # any gaps between them) partition it, so the profile's
                # self times always sum to the profiled wall time.
                root = obs.TRACER.begin()
            exit_code = _check_files(arguments)
            if arguments.stats:
                obs.publish_runtime_gauges()
                print()
                print(obs.render_summary())
                for line in obs.runtime_stats_lines():
                    print(line)
            if profiler is not None and root is not None:
                obs.TRACER.end(root, obs.PhaseEvent, name="tlp_check")
                root = None
                report = profiler.report()
                print()
                print(report.render_table())
                print(
                    f"profile: spans={report.span_count} "
                    f"wall_s={report.wall_s:.6f} "
                    f"self_total_s={report.total_self_s:.6f} "
                    f"coverage={report.coverage:.3f}"
                )
                if arguments.profile != "-":
                    try:
                        with open(
                            arguments.profile, "w", encoding="utf-8"
                        ) as handle:
                            for line in report.collapsed_lines():
                                handle.write(line + "\n")
                    except OSError as error:
                        print(
                            f"{arguments.profile}: cannot write profile: "
                            f"{error}",
                            file=sys.stderr,
                        )
                        return 2
            if arguments.metrics_out is not None:
                obs.publish_runtime_gauges()
                try:
                    with open(
                        arguments.metrics_out, "w", encoding="utf-8"
                    ) as handle:
                        handle.write(obs.prometheus_text())
                except OSError as error:
                    print(
                        f"{arguments.metrics_out}: cannot write metrics: "
                        f"{error}",
                        file=sys.stderr,
                    )
                    return 2
            return exit_code
        finally:
            if root is not None:  # checking raised mid-profile
                obs.TRACER.end(root, obs.PhaseEvent, name="tlp_check")
            obs.TRACER.close_sinks()
            obs.METRICS.enabled = was_enabled
    finally:
        if intern_before is not None:
            set_interning(intern_before)
        if memo_before is not None:
            SHARED_MEMO.set_enabled(memo_before)
        if automata_before is not None:
            AUTOMATA.set_enabled(automata_before)


if __name__ == "__main__":
    sys.exit(main())
