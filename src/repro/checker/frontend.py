"""Whole-file type checker: the artifact Section 7 says the authors were
building ("We are currently implementing a type checker that determines
whether a program satisfies these conditions").

Pipeline, in source order over a parsed :class:`~repro.lang.ast.SourceFile`:

1. **Arity inference.**  ``FUNC``/``TYPE`` declarations introduce names
   without arities (as in the paper's examples); each name's arity is
   inferred from its uses across the whole file and must be consistent.
   Unused symbols default to arity 0.
2. **Declaration processing.**  Build the :class:`SymbolTable`, the
   :class:`ConstraintSet` (with the predefined ``+``), the
   :class:`PredicateTypeEnv` and the :class:`ModeEnv`, diagnosing
   malformed items instead of crashing.
3. **Restriction checks.**  Uniform polymorphism (Definition 6) and
   guardedness (Definition 9); violations are errors because the
   well-typedness algorithm is only defined under them.
4. **Clause/query checks.**  Every program clause and query goes through
   the Definition 16 checker; rejections become positioned errors carrying
   the checker's reason.  If mode declarations are present, the Section 7
   mode checker runs too.

The result object bundles everything later stages need (constraint set,
predicate types, program, queries, a ready :class:`WellTypedChecker`) so
callers can go straight from source text to typed execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..core.builtins import BUILTIN_MODES, builtin_heads, is_builtin_goal
from ..core.declarations import ConstraintSet, DeclarationError, SubtypeConstraint, SymbolTable
from ..obs import METRICS, TRACER
from ..core.moded_welltyped import ModedWellTypedChecker
from ..core.modes import ModeChecker, ModeEnv
from ..core.predicate_types import PredicateTypeEnv
from ..core.restrictions import non_uniform_constraints, unguarded_constructors
from ..core.shared_memo import SHARED_MEMO
from ..core.subtype import SubtypeEngine
from ..core.welltyped import WellTypedChecker
from ..lang.ast import (
    ClauseDecl,
    ConstraintDecl,
    FuncDecl,
    ModeDecl,
    Position,
    PredDecl,
    QueryDecl,
    SourceFile,
    TypeDecl,
)
from ..lang.lexer import LexError
from ..lang.parser import ParseError, parse_file
from ..lp.clause import Clause, Program, Query
from ..terms.term import Struct, Term, subterms
from .cancel import CancelToken, CheckCancelled, checkpoint
from .diagnostics import DiagnosticBag

__all__ = [
    "CheckedModule",
    "CancelToken",
    "CheckCancelled",
    "check_source",
    "check_text",
]


@dataclass
class CheckedModule:
    """Everything produced by checking one source file."""

    diagnostics: DiagnosticBag = field(default_factory=DiagnosticBag)
    symbols: Optional[SymbolTable] = None
    constraints: Optional[ConstraintSet] = None
    predicate_types: Optional[PredicateTypeEnv] = None
    modes: Optional[ModeEnv] = None
    program: Program = field(default_factory=Program)
    queries: List[Query] = field(default_factory=list)
    checker: Optional[WellTypedChecker] = None
    moded_checker: Optional[ModedWellTypedChecker] = None
    #: Source positions parallel to ``program`` / ``queries`` — the
    #: spans typed execution (``--typed-run``) anchors its abort
    #: diagnostics to.  Entries are ``None`` for programmatically built
    #: modules.
    clause_positions: List[Optional["Position"]] = field(default_factory=list)
    query_positions: List[Optional["Position"]] = field(default_factory=list)
    #: One subtype engine for the whole module: every pipeline stage that
    #: issues ``⪰_C`` goals (moded checking, mode analysis, witness audits,
    #: typed/constrained execution) shares this instance, so its ground
    #: memo table is populated once per file rather than once per stage.
    engine: Optional[SubtypeEngine] = None

    @property
    def ok(self) -> bool:
        """True iff no errors were diagnosed."""
        return not self.diagnostics.has_errors


def _infer_arities(source: SourceFile, bag: DiagnosticBag) -> Dict[str, int]:
    """Infer each declared symbol's arity from its uses (paper style)."""
    uses: Dict[str, Set[int]] = {}

    def record(term: Term) -> None:
        for sub in subterms(term):
            if isinstance(sub, Struct):
                uses.setdefault(sub.functor, set()).add(len(sub.args))

    for item in source.items:
        if isinstance(item, ConstraintDecl):
            record(item.lhs)
            record(item.rhs)
        elif isinstance(item, PredDecl):
            for arg in item.head.args:
                record(arg)
        elif isinstance(item, ClauseDecl):
            for atom in (item.head,) + item.body:
                for arg in atom.args:
                    record(arg)
        elif isinstance(item, QueryDecl):
            for atom in item.body:
                for arg in atom.args:
                    record(arg)

    arities: Dict[str, int] = {}
    for item in source.items:
        if isinstance(item, (FuncDecl, TypeDecl)):
            for name in item.names:
                observed = uses.get(name, set())
                if len(observed) > 1:
                    bag.error(
                        f"symbol {name} used with multiple arities "
                        f"{sorted(observed)}",
                        item.position,
                    )
                    continue
                arities[name] = next(iter(observed)) if observed else 0
    return arities


def _is_constraint_goal(goal: Struct) -> bool:
    """True for Section 7 typed-unification constraints ``':'(t, τ)``."""
    return goal.functor == ":" and len(goal.args) == 2


def check_source(
    source: SourceFile, cancel: Optional[CancelToken] = None
) -> CheckedModule:
    """Run the full pipeline over a parsed source file.

    With ``repro.obs`` enabled the whole run is timed
    (``checker.check_source``) and every Definition 16 clause/query check
    gets its own timing sample (``checker.clause_check`` /
    ``checker.query_check``) and trace span, so per-clause cost is
    visible in ``tlp-check --stats`` output.

    ``cancel`` threads a :class:`CancelToken` through the pipeline: the
    checker calls ``cancel.checkpoint()`` before every Definition 16
    clause/query check (and every Section 7 mode check), so a token
    cancelled mid-run raises :class:`CheckCancelled` within one clause
    boundary of the request.
    """
    with METRICS.time("checker.check_source"):
        module = _check_source(source, cancel)
    if METRICS.enabled:
        METRICS.inc("checker.modules_checked")
        if module.diagnostics.has_errors:
            METRICS.inc("checker.modules_rejected")
    return module


def _check_source(
    source: SourceFile, cancel: Optional[CancelToken] = None
) -> CheckedModule:
    module = CheckedModule()
    bag = module.diagnostics

    # Step 1: arities.
    arities = _infer_arities(source, bag)

    # Step 2: symbol table.
    symbols = SymbolTable()
    for item in source.items:
        names_kind = None
        if isinstance(item, FuncDecl):
            names_kind = "function"
        elif isinstance(item, TypeDecl):
            names_kind = "type"
        if names_kind is None:
            continue
        for name in item.names:
            if name not in arities:
                continue  # arity error already diagnosed
            try:
                if names_kind == "function":
                    symbols.declare_function(name, arities[name])
                else:
                    symbols.declare_type_constructor(name, arities[name])
            except DeclarationError as error:
                bag.error(str(error), item.position)
    module.symbols = symbols

    # Step 2b: constraints.
    constraints = ConstraintSet(symbols)
    for item in source.of_kind(ConstraintDecl):
        assert isinstance(item, ConstraintDecl)
        if not isinstance(item.lhs, Struct):
            bag.error("constraint left-hand side must be c(τ1,...,τn)", item.position)
            continue
        try:
            constraints.add(SubtypeConstraint(item.lhs, item.rhs))
        except DeclarationError as error:
            bag.error(str(error), item.position)
    module.constraints = constraints

    # Step 2c: predicate types and modes.  The Section 7 inline form
    # ``PRED p(OUT nat).`` is sugar for ``PRED`` + ``MODE``: the inline
    # tuple is declared into the same ModeEnv, so a conflicting
    # standalone ``MODE`` line (either order) is a positioned error.
    modes = ModeEnv()
    predicate_types = PredicateTypeEnv(constraints)
    for item in source.of_kind(PredDecl):
        assert isinstance(item, PredDecl)
        try:
            predicate_types.declare(item.head)
        except DeclarationError as error:
            bag.error(str(error), item.position)
        if item.modes is not None:
            try:
                modes.declare(item.head.functor, item.modes)
            except DeclarationError as error:
                bag.error(str(error), item.position)
    module.predicate_types = predicate_types

    for item in source.of_kind(ModeDecl):
        assert isinstance(item, ModeDecl)
        try:
            modes.declare(item.name, item.modes)
        except DeclarationError as error:
            bag.error(str(error), item.position)
    module.modes = modes

    # Step 2c-bis: built-in constraint predicate signatures (typed-CLP
    # extension).  Injected only when the source actually calls a
    # built-in, so the paper's pure fragment is checked byte-for-byte as
    # before.  A user declaration for a built-in indicator wins (the
    # lint layer reports the shadowing); built-in modes join the ModeEnv
    # only when the program is already moded, so unmoded files never
    # flip into the directional fallback.
    builtin_used = any(
        is_builtin_goal(goal)
        for item in source.items
        if isinstance(item, (ClauseDecl, QueryDecl))
        for goal in item.body
    )
    if builtin_used:
        for head in builtin_heads(symbols.type_constructors):
            if predicate_types.has_type_for(head):
                continue
            predicate_types.declare(head)
            if len(modes) and modes.modes_of(head) is None:
                modes.declare(head.functor, BUILTIN_MODES[head.functor])

    # Step 2d: clauses and queries (object-level syntax checks).
    for item in source.of_kind(ClauseDecl):
        assert isinstance(item, ClauseDecl)
        ok = True
        for atom in (item.head,) + item.body:
            if atom is not item.head and _is_constraint_goal(atom):
                term_side, type_side = atom.args
                try:
                    constraints.symbols.check_object_term(term_side)
                    constraints.symbols.check_type(type_side)
                except DeclarationError as error:
                    bag.error(str(error), item.position)
                    ok = False
                continue
            for arg in atom.args:
                try:
                    constraints.symbols.check_object_term(arg)
                except DeclarationError as error:
                    bag.error(str(error), item.position)
                    ok = False
        if ok:
            module.program.add(Clause(item.head, item.body))
            module.clause_positions.append(item.position)
    for item in source.of_kind(QueryDecl):
        assert isinstance(item, QueryDecl)
        ok = True
        for goal in item.body:
            if goal.functor == ":" and len(goal.args) == 2:
                # Section 7 typed-unification constraint: object term on
                # the left (variables allowed), a type on the right.
                term_side, type_side = goal.args
                try:
                    constraints.symbols.check_object_term(term_side)
                    constraints.symbols.check_type(type_side)
                except DeclarationError as error:
                    bag.error(str(error), item.position)
                    ok = False
                continue
            for arg in goal.args:
                try:
                    constraints.symbols.check_object_term(arg)
                except DeclarationError as error:
                    bag.error(str(error), item.position)
                    ok = False
        if ok:
            module.queries.append(Query(item.body))
            module.query_positions.append(item.position)

    # Step 3: restrictions.
    offenders = non_uniform_constraints(constraints)
    for constraint in offenders:
        bag.error(
            f"constraint is not uniform polymorphic (Definition 6): {constraint}"
        )
    cyclic = unguarded_constructors(constraints)
    if cyclic:
        bag.error(
            "declarations are not guarded (Definition 9): "
            f"self-dependent constructors {', '.join(cyclic)}"
        )
    if bag.has_errors:
        return module

    # Step 4: well-typedness of every clause and query.  With MODE
    # declarations present the [DH88]-style directional fallback applies
    # (``repro.core.moded_welltyped``); otherwise strict Definition 16.
    checker = WellTypedChecker(constraints, predicate_types)
    module.checker = checker
    # Restrictions were just validated (step 3), so the module-wide shared
    # engine skips re-validation.  The engine also attaches to the
    # process-wide subtype memo: modules over the same declaration scope
    # (batch corpora with a shared prelude, daemon re-checks) start with
    # every verdict earlier engines already derived.
    engine = SubtypeEngine(constraints, validate=False, shared_memo=SHARED_MEMO)
    module.engine = engine
    moded: Optional[ModedWellTypedChecker] = None
    if len(modes):
        moded = ModedWellTypedChecker(
            constraints, predicate_types, modes, engine=engine, strict=checker
        )
        module.moded_checker = moded
    clause_items = source.of_kind(ClauseDecl)
    for clause, item in zip(module.program, clause_items):
        checkpoint(cancel)
        if any(_is_constraint_goal(goal) for goal in clause.body):
            continue  # constrained-model clause: checked dynamically
        detail = str(clause) if TRACER.enabled else ""
        with METRICS.time("checker.clause_check"), TRACER.span("check_clause", detail):
            report = moded.check_clause(clause) if moded else checker.check_clause(clause)
        METRICS.inc("checker.clauses_checked")
        if not report.well_typed:
            METRICS.inc("checker.clauses_rejected")
            bag.error(f"clause is not well-typed: {clause} — {report.reason}", item.position)
    query_items = source.of_kind(QueryDecl)
    for query, item in zip(module.queries, query_items):
        checkpoint(cancel)
        if any(_is_constraint_goal(goal) for goal in query.goals):
            # A query with ``X : τ`` constraints opts into the
            # typed-unification execution model (Section 7): Definition 16
            # does not apply — well-typedness is enforced dynamically by
            # the constraint store of the constrained interpreter.
            continue
        detail = str(query) if TRACER.enabled else ""
        with METRICS.time("checker.query_check"), TRACER.span("check_query", detail):
            report = moded.check_query(query) if moded else checker.check_query(query)
        METRICS.inc("checker.queries_checked")
        if not report.well_typed:
            METRICS.inc("checker.queries_rejected")
            bag.error(f"query is not well-typed: {query} — {report.reason}", item.position)

    # Step 4b: modes, when declared.
    if len(modes):
        mode_checker = ModeChecker(constraints, predicate_types, modes, engine=engine)
        for clause, item in zip(module.program, clause_items):
            checkpoint(cancel)
            if any(_is_constraint_goal(goal) for goal in clause.body):
                continue
            mode_report = mode_checker.check_clause(clause)
            for violation in mode_report.violations:
                bag.error(f"mode violation: {violation}", item.position)
        for query, item in zip(module.queries, query_items):
            if any(_is_constraint_goal(goal) for goal in query.goals):
                continue  # constrained queries live outside the mode system
            mode_report = mode_checker.check_query(query)
            for violation in mode_report.violations:
                bag.error(f"mode violation: {violation}", item.position)
    return module


def check_text(text: str, cancel: Optional[CancelToken] = None) -> CheckedModule:
    """Parse and check source ``text`` (parse errors become diagnostics)."""
    module = CheckedModule()
    try:
        with METRICS.time("checker.parse"):
            source = parse_file(text)
    except (ParseError, LexError) as error:
        module.diagnostics.error(str(error))
        return module
    checkpoint(cancel)
    return check_source(source, cancel)
