"""Cooperative cancellation for in-flight checks.

The Definition 16 pipeline is decidable and fast *per clause*, which is
exactly the granularity an interactive front end wants to abort at: an
editor that re-checks on every keystroke must be able to throw away the
previous request the moment a newer one arrives, without waiting for a
large module to finish.  A :class:`CancelToken` is handed to
:func:`repro.checker.frontend.check_text`; the frontend calls
:meth:`CancelToken.checkpoint` at every clause/query boundary, and a
token cancelled from any thread makes the *next* checkpoint raise
:class:`CheckCancelled` — the check stops within one clause of the
cancel, whatever state the subtype engine is in.

Tokens are thread-safe (the async check server cancels from the event
loop thread while the check runs on an executor thread) and reusable
only in the trivial sense: once cancelled, every later checkpoint
raises.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = ["CheckCancelled", "CancelToken"]


class CheckCancelled(Exception):
    """Raised at a clause-boundary checkpoint of a cancelled check."""


class CancelToken:
    """A one-way cancellation flag checked at clause boundaries.

    ``checkpoints`` counts how many boundaries the guarded work crossed —
    the observability hook the server's cancellation tests (and the
    ``cancelled`` responses) use to show a check stopped *early*.
    """

    def __init__(self) -> None:
        self._cancelled = threading.Event()
        self.checkpoints = 0

    def cancel(self) -> None:
        """Request cancellation (safe from any thread, idempotent)."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def checkpoint(self) -> None:
        """Mark a clause boundary; raise if cancellation was requested."""
        self.checkpoints += 1
        if self._cancelled.is_set():
            raise CheckCancelled(
                f"check cancelled at clause checkpoint {self.checkpoints}"
            )


def checkpoint(cancel: Optional[CancelToken]) -> None:
    """``cancel.checkpoint()`` tolerant of the common ``None`` token."""
    if cancel is not None:
        cancel.checkpoint()
