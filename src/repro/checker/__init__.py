"""Whole-file type checker: frontend, diagnostics, CLI."""

from .diagnostics import Diagnostic, DiagnosticBag, Severity
from .frontend import CheckedModule, check_source, check_text

__all__ = [
    "Diagnostic",
    "DiagnosticBag",
    "Severity",
    "CheckedModule",
    "check_source",
    "check_text",
]
