"""Whole-file type checker: frontend, diagnostics, cancellation, CLI."""

from .cancel import CancelToken, CheckCancelled
from .diagnostics import Diagnostic, DiagnosticBag, Severity
from .frontend import CheckedModule, check_source, check_text

__all__ = [
    "CancelToken",
    "CheckCancelled",
    "Diagnostic",
    "DiagnosticBag",
    "Severity",
    "CheckedModule",
    "check_source",
    "check_text",
]
