"""Logic-programming substrate: clauses, indexed database, SLD-resolution."""

from .clause import Clause, Program, Query, rename_clause_apart
from .constrained import (
    ConstrainedAnswer,
    ConstrainedInterpreter,
    ConstrainedResult,
    TypeConstraint,
)
from .database import Database
from .resolution import SLDEngine, SLDResult, SLDStats, solve, solve_iterative_deepening

__all__ = [
    "Clause",
    "Query",
    "Program",
    "rename_clause_apart",
    "Database",
    "SLDEngine",
    "SLDResult",
    "SLDStats",
    "solve",
    "solve_iterative_deepening",
    "ConstrainedInterpreter",
    "ConstrainedResult",
    "ConstrainedAnswer",
    "TypeConstraint",
]
