"""SLD-resolution.

The paper grounds everything in textbook SLD-resolution [Apt88]:
Definition 3 *defines* the subtype relation as the existence of an
SLD-refutation of ``H_C ∪ {:- τ1 >= τ2}``, and Theorem 6 is a statement
about the resolvents produced while executing a well-typed program.  This
module provides the engine both uses.

Design points:

* **Leftmost selection** (as assumed "without loss of generality" in the
  paper's proofs) over an explicit backtracking stack — no Python
  recursion, so very deep derivations (the benchmark families) are fine.
* **Depth bounding + iterative deepening.**  Plain depth-first SLD is
  incomplete (it can dive into an infinite branch); the naive subtype
  prover needs a complete search, which :func:`solve_iterative_deepening`
  provides: if a round is exhausted without hitting the depth bound the
  whole SLD tree was finite and search stops.
* **Resolvent tracing.**  ``on_resolvent`` receives every resolvent (the
  goal list after applying the step's mgu), which is how the Theorem 6
  consistency experiment observes "every atom of every resolvent".
* **Variant loop check** (off by default).  With ``variant_check=True`` a
  branch is pruned when its resolvent is a variant (equal up to variable
  renaming) of an ancestor resolvent on the same branch.  Splicing such a
  loop out of any refutation yields a shorter refutation, so the check is
  *sound for refutation existence*; it may, however, prune alternative
  answer substitutions, so it is only used where existence is the
  question (the naive subtype prover).
* **Statistics** (steps, unification attempts, cutoffs) for the benchmark
  harness.
* **Telemetry mirroring** (``repro.obs``): when enabled, per-run deltas
  of every counter land in the process-wide registry (``sld.*``) and each
  successful resolution step emits an ``sld_step`` trace event that nests
  under whatever span issued the query.  Disabled, the engine pays one
  flag check per run plus one per successful step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Set, Tuple

from ..obs import METRICS, TRACER, SldStepEvent
from ..terms.pretty import pretty
from ..terms.substitution import EMPTY_SUBSTITUTION, Substitution
from ..terms.term import Struct, Var, variables_of
from ..terms.unify import unify
from .clause import Clause, rename_clause_apart
from .database import Database

__all__ = ["SLDStats", "SLDResult", "SLDEngine", "solve", "solve_iterative_deepening"]

Resolvent = Tuple[Struct, ...]
ResolventHook = Callable[[Resolvent], None]


@dataclass
class SLDStats:
    """Counters accumulated over one or more ``solve`` runs."""

    steps: int = 0
    unification_attempts: int = 0
    unification_failures: int = 0
    depth_cutoffs: int = 0
    step_budget_hits: int = 0
    max_depth_reached: int = 0
    variant_prunes: int = 0


@dataclass
class SLDResult:
    """Outcome of a bounded search: the answers plus exhaustion flags."""

    answers: List[Substitution] = field(default_factory=list)
    hit_depth_limit: bool = False
    hit_step_limit: bool = False

    @property
    def complete(self) -> bool:
        """True iff the SLD tree was fully explored (no bound was hit)."""
        return not (self.hit_depth_limit or self.hit_step_limit)


def _canonical(goals: Resolvent) -> Tuple:
    """A renaming-invariant key for a resolvent (variables numbered in
    first-occurrence order) — the variant check's lookup key."""
    numbering: dict = {}

    def walk(term) -> Tuple:
        if isinstance(term, Var):
            index = numbering.get(term)
            if index is None:
                index = len(numbering)
                numbering[term] = index
            return ("v", index)
        return (term.functor, tuple(walk(a) for a in term.args))

    return tuple(walk(goal) for goal in goals)


class _Frame:
    """One node of the SLD tree: pending goals and remaining clause choices.

    ``answer`` is the query's variable tuple with the accumulated mgus
    applied.  Threading this skeleton instead of composing substitutions
    keeps per-step cost proportional to the answer's size — eager
    composition would re-walk every accumulated binding at every step,
    turning linear derivations cubic.
    """

    __slots__ = ("goals", "answer", "depth", "choices", "position", "canon")

    def __init__(
        self,
        goals: Resolvent,
        answer: Struct,
        depth: int,
        choices: Sequence[Clause],
        canon: Optional[Tuple] = None,
    ) -> None:
        self.goals = goals
        self.answer = answer
        self.depth = depth
        self.choices = choices
        self.position = 0
        self.canon = canon


class SLDEngine:
    """SLD-resolution over a clause :class:`~repro.lp.database.Database`."""

    def __init__(
        self,
        database: Database,
        occurs_check: bool = True,
        on_resolvent: Optional[ResolventHook] = None,
        variant_check: bool = False,
    ) -> None:
        self.database = database
        self.occurs_check = occurs_check
        self.on_resolvent = on_resolvent
        self.variant_check = variant_check
        self.stats = SLDStats()
        # Set while a bounded run is in progress; inspected afterwards.
        self.hit_depth_limit = False
        self.hit_step_limit = False

    def solve(
        self,
        goals: Sequence[Struct],
        depth_limit: Optional[int] = None,
        step_limit: Optional[int] = None,
    ) -> Iterator[Substitution]:
        """Yield answer substitutions for ``goals``, leftmost-first.

        Answers are restricted to the variables of the query.  With
        ``depth_limit`` set, branches longer than that many resolution
        steps are pruned (and :attr:`hit_depth_limit` records that pruning
        happened).  ``step_limit`` bounds total work across the whole
        search.
        """
        self.hit_depth_limit = False
        self.hit_step_limit = False
        goals = tuple(goals)
        if not goals:
            yield EMPTY_SUBSTITUTION
            return
        query_vars: Set[Var] = set()
        for goal in goals:
            query_vars |= variables_of(goal)
        ordered_vars: Tuple[Var, ...] = tuple(sorted(query_vars, key=lambda v: v.name))
        answer_skeleton = Struct("'$answer", ordered_vars)
        on_path: Set[Tuple] = set()
        root = _Frame(
            goals,
            answer_skeleton,
            0,
            self.database.candidates(goals[0]),
            _canonical(goals) if self.variant_check else None,
        )
        if root.canon is not None:
            on_path.add(root.canon)
        stack: List[_Frame] = [root]

        def pop_frame() -> None:
            frame = stack.pop()
            if frame.canon is not None:
                on_path.discard(frame.canon)

        stats_before = self._stats_snapshot()
        try:
            yield from self._search(
                stack, pop_frame, on_path, ordered_vars,
                depth_limit, step_limit,
            )
        finally:
            self._flush_metrics(stats_before)

    def _stats_snapshot(self) -> Tuple[int, ...]:
        stats = self.stats
        return (
            stats.steps,
            stats.unification_attempts,
            stats.unification_failures,
            stats.depth_cutoffs,
            stats.step_budget_hits,
            stats.variant_prunes,
        )

    def _flush_metrics(self, before: Tuple[int, ...]) -> None:
        """Mirror this run's stat deltas into the telemetry registry."""
        if not METRICS.enabled:
            return
        after = self._stats_snapshot()
        METRICS.inc("sld.runs")
        for name, delta in zip(
            (
                "sld.steps",
                "sld.unification_attempts",
                "sld.unification_failures",
                "sld.depth_cutoffs",
                "sld.step_budget_hits",
                "sld.variant_prunes",
            ),
            (now - then for now, then in zip(after, before)),
        ):
            if delta:
                METRICS.inc(name, delta)
        METRICS.gauge_max("sld.max_depth_reached", self.stats.max_depth_reached)

    def _search(
        self,
        stack: List[_Frame],
        pop_frame: Callable[[], None],
        on_path: Set[Tuple],
        ordered_vars: Tuple[Var, ...],
        depth_limit: Optional[int],
        step_limit: Optional[int],
    ) -> Iterator[Substitution]:
        steps_taken = 0
        while stack:
            frame = stack[-1]
            if depth_limit is not None and frame.depth >= depth_limit:
                self.hit_depth_limit = True
                self.stats.depth_cutoffs += 1
                pop_frame()
                continue
            if frame.position >= len(frame.choices):
                pop_frame()
                continue
            clause = frame.choices[frame.position]
            frame.position += 1
            if step_limit is not None and steps_taken >= step_limit:
                self.hit_step_limit = True
                self.stats.step_budget_hits += 1
                return
            steps_taken += 1
            renamed = rename_clause_apart(clause)
            self.stats.unification_attempts += 1
            theta = unify(frame.goals[0], renamed.head, occurs_check=self.occurs_check)
            if theta is None:
                self.stats.unification_failures += 1
                continue
            self.stats.steps += 1
            new_goals: Resolvent = tuple(
                theta.apply(g) for g in renamed.body + frame.goals[1:]
            )
            new_answer = theta.apply(frame.answer)
            assert isinstance(new_answer, Struct)
            if self.on_resolvent is not None:
                self.on_resolvent(new_goals)
            depth = frame.depth + 1
            if depth > self.stats.max_depth_reached:
                self.stats.max_depth_reached = depth
            if TRACER.enabled:
                TRACER.point(
                    SldStepEvent,
                    goal=pretty(frame.goals[0]),
                    depth=depth,
                    resolvent_size=len(new_goals),
                )
            if not new_goals:
                yield Substitution(
                    {
                        var: value
                        for var, value in zip(ordered_vars, new_answer.args)
                        if value != var
                    }
                )
                continue
            canon: Optional[Tuple] = None
            if self.variant_check:
                canon = _canonical(new_goals)
                if canon in on_path:
                    self.stats.variant_prunes += 1
                    continue
                on_path.add(canon)
            stack.append(
                _Frame(
                    new_goals,
                    new_answer,
                    depth,
                    self.database.candidates(new_goals[0]),
                    canon,
                )
            )

    def has_refutation(
        self,
        goals: Sequence[Struct],
        depth_limit: Optional[int] = None,
        step_limit: Optional[int] = None,
    ) -> bool:
        """True iff at least one answer exists within the given bounds."""
        for _ in self.solve(goals, depth_limit=depth_limit, step_limit=step_limit):
            return True
        return False


def solve(
    database: Database,
    goals: Sequence[Struct],
    depth_limit: Optional[int] = None,
    step_limit: Optional[int] = None,
    max_answers: Optional[int] = None,
    occurs_check: bool = True,
    on_resolvent: Optional[ResolventHook] = None,
    variant_check: bool = False,
) -> SLDResult:
    """One bounded SLD run, collecting up to ``max_answers`` answers."""
    engine = SLDEngine(
        database,
        occurs_check=occurs_check,
        on_resolvent=on_resolvent,
        variant_check=variant_check,
    )
    result = SLDResult()
    for answer in engine.solve(goals, depth_limit=depth_limit, step_limit=step_limit):
        result.answers.append(answer)
        if max_answers is not None and len(result.answers) >= max_answers:
            break
    result.hit_depth_limit = engine.hit_depth_limit
    result.hit_step_limit = engine.hit_step_limit
    return result


def solve_iterative_deepening(
    database: Database,
    goals: Sequence[Struct],
    max_depth: int = 64,
    start_depth: int = 4,
    depth_step: int = 4,
    step_limit_per_round: Optional[int] = None,
    max_answers: Optional[int] = None,
    occurs_check: bool = True,
    variant_check: bool = False,
) -> SLDResult:
    """Complete (up to ``max_depth``) search by iterative deepening.

    Each round re-runs depth-first search with a larger depth bound.  The
    search stops early when a round completes without being cut off — the
    SLD tree is then finite and fully explored, so the result is exact.
    Answers are deduplicated across rounds by their printed form.
    """
    final = SLDResult()
    seen: Set[str] = set()
    depth = start_depth
    while True:
        round_result = solve(
            database,
            goals,
            depth_limit=depth,
            step_limit=step_limit_per_round,
            max_answers=None,
            occurs_check=occurs_check,
            variant_check=variant_check,
        )
        for answer in round_result.answers:
            key = repr(answer)
            if key not in seen:
                seen.add(key)
                final.answers.append(answer)
                if max_answers is not None and len(final.answers) >= max_answers:
                    final.hit_depth_limit = round_result.hit_depth_limit
                    final.hit_step_limit = round_result.hit_step_limit
                    return final
        if round_result.complete:
            final.hit_depth_limit = False
            final.hit_step_limit = False
            return final
        if depth >= max_depth:
            final.hit_depth_limit = round_result.hit_depth_limit
            final.hit_step_limit = round_result.hit_step_limit
            return final
        depth = min(depth + depth_step, max_depth)
