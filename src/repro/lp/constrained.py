"""Type-constrained execution — the paper's third Section 7 alternative.

    "Another alternative, possible only in a system that supports typed
    unification [GM86, AKN86, Smo88], is to constrain X to be a nat,
    e.g., :- p(X), X:nat, q(X)."

This module makes that query executable.  A goal list may contain *type
constraints* ``X : τ`` alongside ordinary atoms; execution proceeds by
SLD-resolution on the ordinary atoms while the constraint store watches
the bindings:

* a constraint whose term is **ground** is checked immediately against
  ``M_C[[τ]]`` (via the deterministic subtype engine) — failure prunes
  the branch exactly where typed unification would have failed;
* a constraint whose term still has variables is **delayed**
  (coroutining) and re-examined after every resolution step;
* constraints still unresolved at an answer are reported as *residual*
  (the answer is conditional on them), mirroring how order-sorted logic
  programming presents constrained answers.

This is deliberately a separate computation model from the Definition 16
pipeline: the paper contrasts it with the prescriptive approach, where
the same effect needs a conversion predicate.  The tests replay the
paper's scenario — ``p`` over ``nat``, ``q`` over ``int`` — and show the
constraint store stopping the int→nat flow that Definition 16 could only
forbid statically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.subtype import SubtypeEngine
from ..terms.pretty import pretty
from ..terms.substitution import Substitution
from ..terms.term import Struct, Term, is_ground, variables_of
from ..terms.unify import unify
from .clause import rename_clause_apart
from .database import Database

__all__ = [
    "TypeConstraint",
    "ConstrainedAnswer",
    "ConstrainedResult",
    "ConstrainedInterpreter",
]

CONSTRAINT_FUNCTOR = ":"
"""Constraint goals travel as ``':'(term, type)`` structs."""


@dataclass(frozen=True)
class TypeConstraint:
    """``term : type`` — the term must inhabit ``M_C[[type]]``."""

    term: Term
    type_term: Term

    def __str__(self) -> str:
        return f"{pretty(self.term)} : {pretty(self.type_term)}"


@dataclass
class ConstrainedAnswer:
    """An answer substitution plus any constraints left unresolved."""

    substitution: Substitution
    residual: Tuple[TypeConstraint, ...] = ()

    @property
    def unconditional(self) -> bool:
        return not self.residual


@dataclass
class ConstrainedResult:
    """All answers of one constrained run."""

    answers: List[ConstrainedAnswer] = field(default_factory=list)
    pruned_by_constraints: int = 0
    hit_depth_limit: bool = False


class _Frame:
    __slots__ = ("goals", "constraints", "answer", "depth", "choices", "position")

    def __init__(self, goals, constraints, answer, depth, choices) -> None:
        self.goals = goals
        self.constraints = constraints
        self.answer = answer
        self.depth = depth
        self.choices = choices
        self.position = 0


class ConstrainedInterpreter:
    """SLD-resolution with a delayed type-constraint store."""

    def __init__(self, database: Database, engine: SubtypeEngine) -> None:
        self.database = database
        self.engine = engine

    # -- goal-list plumbing ---------------------------------------------------------

    @staticmethod
    def split_goals(
        goals: Sequence[Struct],
    ) -> Tuple[Tuple[Struct, ...], Tuple[TypeConstraint, ...]]:
        """Separate ordinary atoms from ``':'``-shaped constraint goals."""
        ordinary: List[Struct] = []
        constraints: List[TypeConstraint] = []
        for goal in goals:
            if goal.functor == CONSTRAINT_FUNCTOR and len(goal.args) == 2:
                constraints.append(TypeConstraint(goal.args[0], goal.args[1]))
            else:
                ordinary.append(goal)
        return tuple(ordinary), tuple(constraints)

    def _settle(
        self, constraints: Tuple[TypeConstraint, ...]
    ) -> Optional[Tuple[TypeConstraint, ...]]:
        """Check every ground constraint; ``None`` means a violation
        (prune), otherwise the remaining (delayed) constraints."""
        remaining: List[TypeConstraint] = []
        for constraint in constraints:
            if is_ground(constraint.term):
                if not self.engine.contains(constraint.type_term, constraint.term):
                    return None
            else:
                remaining.append(constraint)
        return tuple(remaining)

    # -- execution ----------------------------------------------------------------------

    def run(
        self,
        goals: Sequence[Struct],
        max_answers: Optional[int] = None,
        depth_limit: int = 10_000,
    ) -> ConstrainedResult:
        """Execute ``goals`` (ordinary atoms and ``X : τ`` constraints)."""
        result = ConstrainedResult()
        ordinary, constraints = self.split_goals(goals)
        query_vars = sorted(
            {v for g in goals for v in variables_of(g)}, key=lambda v: v.name
        )
        answer_skeleton = Struct("'$answer", tuple(query_vars))
        settled = self._settle(constraints)
        if settled is None:
            result.pruned_by_constraints += 1
            return result
        if not ordinary:
            self._emit(result, answer_skeleton, query_vars, settled)
            return result
        stack = [
            _Frame(ordinary, settled, answer_skeleton, 0, self.database.candidates(ordinary[0]))
        ]
        while stack:
            frame = stack[-1]
            if frame.depth >= depth_limit:
                result.hit_depth_limit = True
                stack.pop()
                continue
            if frame.position >= len(frame.choices):
                stack.pop()
                continue
            clause = frame.choices[frame.position]
            frame.position += 1
            renamed = rename_clause_apart(clause)
            theta = unify(frame.goals[0], renamed.head)
            if theta is None:
                continue
            new_goals = tuple(theta.apply(g) for g in renamed.body + frame.goals[1:])
            # Clause bodies may themselves carry constraints.
            new_goals, body_constraints = self.split_goals(new_goals)
            new_constraints = tuple(
                TypeConstraint(theta.apply(c.term), c.type_term)
                for c in frame.constraints
            ) + body_constraints
            settled = self._settle(new_constraints)
            if settled is None:
                result.pruned_by_constraints += 1
                continue
            new_answer = theta.apply(frame.answer)
            assert isinstance(new_answer, Struct)
            if not new_goals:
                self._emit(result, new_answer, query_vars, settled)
                if max_answers is not None and len(result.answers) >= max_answers:
                    return result
                continue
            stack.append(
                _Frame(
                    new_goals,
                    settled,
                    new_answer,
                    frame.depth + 1,
                    self.database.candidates(new_goals[0]),
                )
            )
        return result

    @staticmethod
    def _emit(result, answer_term: Struct, query_vars, residual) -> None:
        bindings = {
            var: value
            for var, value in zip(query_vars, answer_term.args)
            if value != var
        }
        result.answers.append(
            ConstrainedAnswer(Substitution(bindings), tuple(residual))
        )
