"""Clauses, programs and queries.

Section 5 of the paper fixes the syntax of logic programs: an *atom* is a
predicate symbol applied to terms over ``F``; a *program clause* is
``h :- b.`` with head atom ``h`` and body atom list ``b``; a *query*
(negative clause) is ``:- b.``; a *program* is a sequence of program
clauses.

These classes are shared between the object level (user programs being
type-checked and executed) and the meta level (the Horn theory ``H_C`` of
the subtype predicate ``>=``, see ``repro.core.horn``) — the paper uses
the very same clause language for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from ..terms.pretty import pretty
from ..terms.term import Struct, Term, Var, fresh_variable, variables_of

__all__ = ["Clause", "Query", "Program", "rename_clause_apart"]


@dataclass(frozen=True)
class Clause:
    """A program clause ``head :- body`` (a fact when ``body`` is empty)."""

    head: Struct
    body: Tuple[Struct, ...] = ()

    @property
    def is_fact(self) -> bool:
        """True iff the body is empty."""
        return not self.body

    @property
    def indicator(self) -> Tuple[str, int]:
        """``name/arity`` of the head predicate."""
        return self.head.indicator

    def variables(self) -> Set[Var]:
        """All variables occurring in the clause."""
        out = variables_of(self.head)
        for atom_ in self.body:
            out |= variables_of(atom_)
        return out

    def atoms(self) -> Tuple[Struct, ...]:
        """Head followed by body atoms."""
        return (self.head,) + self.body

    def __str__(self) -> str:
        if self.is_fact:
            return f"{pretty(self.head)}."
        body = ", ".join(pretty(a) for a in self.body)
        return f"{pretty(self.head)} :- {body}."


@dataclass(frozen=True)
class Query:
    """A negative clause ``:- goals.``"""

    goals: Tuple[Struct, ...]

    def variables(self) -> Set[Var]:
        """All variables occurring in the goals."""
        out: Set[Var] = set()
        for goal in self.goals:
            out |= variables_of(goal)
        return out

    def __str__(self) -> str:
        return ":- " + ", ".join(pretty(g) for g in self.goals) + "."


class Program:
    """An ordered sequence of program clauses."""

    def __init__(self, clauses: Iterable[Clause] = ()) -> None:
        self.clauses: List[Clause] = list(clauses)

    def add(self, clause: Clause) -> None:
        """Append ``clause`` to the program."""
        self.clauses.append(clause)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def predicates(self) -> Set[Tuple[str, int]]:
        """All predicate indicators defined by this program."""
        return {clause.indicator for clause in self.clauses}

    def __str__(self) -> str:
        return "\n".join(str(clause) for clause in self.clauses)


def rename_clause_apart(clause: Clause) -> Clause:
    """A variant of ``clause`` with globally fresh variables.

    Used before every resolution step so the clause shares no variables
    with the current resolvent (standardising apart).
    """
    mapping: Dict[Var, Var] = {}

    def walk(term: Term) -> Term:
        if isinstance(term, Var):
            if term not in mapping:
                mapping[term] = fresh_variable()
            return mapping[term]
        if not term.args:
            return term
        return Struct(term.functor, tuple(walk(a) for a in term.args))

    head = walk(clause.head)
    assert isinstance(head, Struct)
    return Clause(head, tuple(walk(a) for a in clause.body))  # type: ignore[arg-type]
