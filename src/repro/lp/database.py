"""Clause database with optional first-argument indexing.

The SLD engine asks the database for the candidate clauses of a selected
goal.  Without indexing, candidates are simply the clauses whose head has
the goal's predicate indicator, in program order.  With first-argument
indexing (the classic WAM optimisation, on by default), clauses whose
head's first argument is a struct are bucketed by that struct's
``name/arity``; a goal with a struct first argument then only sees the
matching bucket merged (in program order) with the clauses whose head has
a variable first argument.

Indexing never changes the solution set — only how many head-unification
attempts fail — which is exactly what ablation experiment A2 measures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..terms.term import Struct, Var
from .clause import Clause, Program

__all__ = ["Database"]

_Indicator = Tuple[str, int]


class _PredicateEntry:
    """Clauses of one predicate plus its first-argument index."""

    __slots__ = ("clauses", "by_first_arg", "var_first_arg")

    def __init__(self) -> None:
        # (sequence number, clause) pairs, in insertion order.
        self.clauses: List[Tuple[int, Clause]] = []
        self.by_first_arg: Dict[_Indicator, List[Tuple[int, Clause]]] = {}
        self.var_first_arg: List[Tuple[int, Clause]] = []

    def add(self, seq: int, clause: Clause) -> None:
        self.clauses.append((seq, clause))
        if not clause.head.args:
            return
        first = clause.head.args[0]
        if isinstance(first, Var):
            self.var_first_arg.append((seq, clause))
        else:
            assert isinstance(first, Struct)
            self.by_first_arg.setdefault(first.indicator, []).append((seq, clause))


class Database:
    """An indexed store of program clauses."""

    def __init__(self, clauses: Iterable[Clause] = (), first_arg_indexing: bool = True) -> None:
        self._entries: Dict[_Indicator, _PredicateEntry] = {}
        self._seq = 0
        self.first_arg_indexing = first_arg_indexing
        for clause in clauses:
            self.add(clause)

    @classmethod
    def from_program(cls, program: Program, first_arg_indexing: bool = True) -> "Database":
        """Build a database from a :class:`~repro.lp.clause.Program`."""
        return cls(program, first_arg_indexing=first_arg_indexing)

    def add(self, clause: Clause) -> None:
        """Append ``clause`` (program order is preserved for candidates)."""
        entry = self._entries.setdefault(clause.indicator, _PredicateEntry())
        entry.add(self._seq, clause)
        self._seq += 1

    def __len__(self) -> int:
        return sum(len(entry.clauses) for entry in self._entries.values())

    def predicates(self) -> List[_Indicator]:
        """All predicate indicators with at least one clause."""
        return list(self._entries)

    def clauses_for(self, indicator: _Indicator) -> List[Clause]:
        """All clauses of ``indicator`` in program order."""
        entry = self._entries.get(indicator)
        if entry is None:
            return []
        return [clause for _, clause in entry.clauses]

    def candidates(self, goal: Struct) -> List[Clause]:
        """Clauses whose head might unify with ``goal``, in program order.

        This is an over-approximation filter: every clause that unifies
        with ``goal`` is returned (completeness), some returned clauses
        may still fail to unify.
        """
        entry = self._entries.get(goal.indicator)
        if entry is None:
            return []
        if not self.first_arg_indexing or not goal.args:
            return [clause for _, clause in entry.clauses]
        first = goal.args[0]
        if isinstance(first, Var):
            return [clause for _, clause in entry.clauses]
        assert isinstance(first, Struct)
        indexed = entry.by_first_arg.get(first.indicator, [])
        if not entry.var_first_arg:
            return [clause for _, clause in indexed]
        # Merge the indexed bucket with variable-headed clauses by sequence
        # number so program order is preserved.
        merged: List[Tuple[int, Clause]] = sorted(
            indexed + entry.var_first_arg, key=lambda pair: pair[0]
        )
        return [clause for _, clause in merged]
