"""Applying machine fix-its to source text.

The LSP adapter translates :class:`~repro.checker.diagnostics.FixIt`
objects into workspace edits (``repro.service.aserver.lsp``); this
module is the same semantics for plain text, so tests, CI gates, and
``tlp-lint --fix``-style tooling can apply a fix-it and re-lint without
a language client in the loop:

* a fix-it whose position carries a **span** replaces exactly that
  range with its replacement text;
* a fix-it with replacement text but no span is applied only when the
  replacement is a complete declaration line (``FUNC``/``TYPE``/
  ``PRED``/``MODE``/constraint) — it is inserted on a fresh line above
  its anchor (the fix-it's position, falling back to the diagnostic's);
* anything else is advisory: the description carries the suggestion and
  :func:`apply_fixits` skips it.

Overlapping edits are resolved first-wins (in diagnostic order); edits
are applied bottom-up so earlier spans stay valid.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..checker.diagnostics import Diagnostic, FixIt
from ..lang.ast import Position

__all__ = [
    "is_machine_applicable",
    "edit_for",
    "apply_fixits",
]

_DECLARATION_KEYWORDS = ("FUNC", "TYPE", "PRED", "MODE")


def _offset(text: str, line: int, column: int) -> Optional[int]:
    """Absolute offset of 1-based ``line``/``column``, or None when out
    of range (a stale fix-it against edited text)."""
    lines = text.split("\n")
    if not 1 <= line <= len(lines):
        return None
    base = sum(len(lines[i]) + 1 for i in range(line - 1))
    # Column may point one past the end of the line (exclusive ends).
    if column - 1 > len(lines[line - 1]):
        return None
    return base + column - 1


def edit_for(
    text: str, diagnostic: Diagnostic, fixit: FixIt
) -> Optional[Tuple[int, int, str]]:
    """The ``(start, end, replacement)`` edit for one fix-it, or None
    when it is advisory (mirrors the LSP adapter's ``_fixit_edit``)."""
    replacement = fixit.replacement
    if not replacement:
        return None
    position = fixit.position
    if position is not None and position.has_span:
        start = _offset(text, position.line, position.column)
        end = _offset(text, position.end_line, position.end_column)
        if start is None or end is None or end < start:
            return None
        return start, end, replacement
    stripped = replacement.strip()
    if not (stripped.endswith(".") and stripped.startswith(_DECLARATION_KEYWORDS)):
        return None  # not a declaration line: nowhere safe to splice it
    anchor: Optional[Position] = position or diagnostic.position
    line = anchor.line if anchor is not None else 1
    start = _offset(text, line, 1)
    if start is None:
        start = len(text)
    return start, start, replacement.rstrip("\n") + "\n"


def is_machine_applicable(text: str, diagnostic: Diagnostic, fixit: FixIt) -> bool:
    """True iff :func:`apply_fixits` would actually edit ``text``."""
    return edit_for(text, diagnostic, fixit) is not None


def apply_fixits(text: str, diagnostics: Iterable[Diagnostic]) -> str:
    """Apply every machine-applicable fix-it of ``diagnostics``.

    Overlaps resolve first-wins in diagnostic order, so when two
    findings rewrite the same item only the first rewrite lands (the
    second becomes stale and is expected to clear on re-lint).
    """
    edits: List[Tuple[int, int, str]] = []
    for diagnostic in diagnostics:
        for fixit in diagnostic.fixits:
            edit = edit_for(text, diagnostic, fixit)
            if edit is None:
                continue
            start, end, _ = edit
            if any(
                (start < e and b < end) or (start == b and end == e)
                for b, e, _ in edits
            ):
                continue  # overlap (or same-point duplicate): first wins
            edits.append(edit)
    out = text
    for start, end, replacement in sorted(edits, key=lambda e: (e[0], e[1]), reverse=True):
        out = out[:start] + replacement + out[end:]
    return out
