"""The subtype information-flow pass: rule ``TLP301`` (§7, after [DH88]).

The paper's concluding remarks observe that with ``PRED p(nat)`` and
``PRED q(int)`` (``int ⪰ nat``), the query ``:- q(X), p(X).`` is a
trap: ``q`` may bind ``X`` to *any* ``int`` — say ``pred(0)`` — which
``p`` must never see.  Information may only flow **sub→super**; the
remedies are mode declarations ([DH88]) or an explicit *filter
predicate* (``int2nat(X, N)``) that narrows the value.

This pass finds exactly those supertype→subtype flows statically:

1. **Mode inference.**  Where ``MODE`` declarations exist they are
   used.  For predicates *defined in the file*, OUT (producer)
   positions are inferred by an optimistic fixpoint dataflow over the
   call graph: every position starts OUT, and a head position loses the
   claim when some clause cannot bind all its variables from the body
   goals' OUT positions (facts bind their ground arguments outright).
   OUT is conditional on success, so optimism about recursive calls is
   sound.  Predicates that are declared but never defined produce
   nothing — their positions consume.
2. **Flow check.**  Each clause body / query is replayed left to right.
   Producer occurrences stamp their variables with the position's
   declared type; a later consumer occurrence at declared type ``τ``
   of a variable stamped ``σ`` is flagged when ``σ ≻ τ`` strictly —
   the value set shrinks along the flow, so some producible values are
   ill-typed at the consumer.  The fix-it suggests the §7 filter
   predicate (``int2nat``-style) by name.

Incomparable type pairs are left to the Definition 16 checker (they are
type errors, not flow errors), and the pass runs only when the
constraint set is uniform and guarded — the subtype engine's
termination guarantee requires both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..checker.diagnostics import FixIt, Severity
from ..core.builtins import BUILTIN_MODES, is_builtin_indicator
from ..lang.ast import ClauseDecl, QueryDecl
from ..terms.pretty import pretty
from ..terms.term import Struct, Term, Var, variables_of
from .context import LintContext, _is_constraint_goal
from .registry import register

_Indicator = Tuple[str, int]

IN = "IN"
OUT = "OUT"


def _declared_types(ctx: LintContext, atom: Struct) -> Optional[Tuple[Term, ...]]:
    pred = ctx.pred_decls.get(atom.indicator)
    return pred.head.args if pred is not None else None


class ModeInference:
    """IN/OUT positions per predicate: declared when present, otherwise
    inferred by the boundness least fixpoint described in the module
    docstring.

    With ``use_declared=False`` the inference ignores ``MODE``
    declarations for predicates *defined in the file* and reports what
    the dataflow alone supports — the "pure" producer sets the TLP503/
    TLP505 declaration-vs-dataflow rules compare declarations against.
    Declaration-only predicates keep their declared modes either way
    (there are no clauses to infer from).
    """

    def __init__(self, ctx: LintContext, use_declared: bool = True) -> None:
        self.ctx = ctx
        self.use_declared = use_declared
        self.defined: Dict[_Indicator, List[ClauseDecl]] = {}
        for clause in ctx.clause_items:
            self.defined.setdefault(clause.head.indicator, []).append(clause)
        # Optimistic (greatest) fixpoint: every position of a defined
        # predicate starts OUT and loses the claim when some clause
        # cannot bind it.  OUT means "ground *if* the goal succeeds", so
        # optimism about recursive calls is sound — a recursion with no
        # base case never succeeds, vacuously keeping its claim.
        self.out_positions: Dict[_Indicator, Set[int]] = {
            (name, arity): set(range(arity))
            for (name, arity) in self.defined
        }
        self._solve()

    def _declared_out(self, indicator: _Indicator) -> Optional[Set[int]]:
        if not self.use_declared and indicator in self.defined:
            return None
        mode = self.ctx.mode_decls.get(indicator)
        if mode is None:
            # Built-in constraint predicates carry fixed modes ('X is E'
            # produces X; comparisons consume) unless the file shadows
            # them with its own declarations.
            name, arity = indicator
            if (
                is_builtin_indicator(name, arity)
                and indicator not in self.ctx.pred_decls
            ):
                return {
                    i for i, m in enumerate(BUILTIN_MODES[name]) if m == OUT
                }
            return None
        return {i for i, m in enumerate(mode.modes) if m == OUT}

    def producer_positions(self, atom: Struct) -> Set[int]:
        """Positions of ``atom`` that bind their variables when the goal
        succeeds (declared OUT, or inferred for defined predicates;
        undefined predicates bind nothing)."""
        declared = self._declared_out(atom.indicator)
        if declared is not None:
            return declared
        return self.out_positions.get(atom.indicator, set())

    def consumer_positions(self, atom: Struct) -> Set[int]:
        """The complement: positions that read already-bound values."""
        producers = self.producer_positions(atom)
        return {i for i in range(len(atom.args)) if i not in producers}

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for indicator, clauses in self.defined.items():
                if self._declared_out(indicator) is not None:
                    continue  # declared modes win; nothing to infer
                agreed: Optional[Set[int]] = None
                for clause in clauses:
                    bound: Set[Var] = set()
                    for goal in clause.body:
                        if _is_constraint_goal(goal):
                            continue
                        for position in self.producer_positions(goal):
                            if position < len(goal.args):
                                bound |= variables_of(goal.args[position])
                    ok = {
                        position
                        for position, arg in enumerate(clause.head.args)
                        if variables_of(arg) <= bound
                    }
                    agreed = ok if agreed is None else agreed & ok
                agreed = agreed or set()
                if agreed != self.out_positions[indicator]:
                    self.out_positions[indicator] = agreed
                    changed = True


def _filter_name(supertype: Term, subtype: Term) -> str:
    sup = supertype.functor if isinstance(supertype, Struct) else "super"
    sub = subtype.functor if isinstance(subtype, Struct) else "sub"
    return f"{sup}2{sub}"


@register(
    "TLP301",
    "subtype-information-flow",
    Severity.WARNING,
    "variable flows from a supertype position into a strict-subtype "
    "position without an intervening filter predicate",
    "§7 (the information-flow problem, after [DH88])",
)
def check_information_flow(ctx: LintContext) -> None:
    engine = ctx.engine
    if engine is None:
        return  # no uniform+guarded constraint set: pass does not apply
    inference = ModeInference(ctx)
    for clause in ctx.clause_items:
        _check_flow(ctx, engine, inference, clause, clause.head, clause.body)
    for query in ctx.query_items:
        _check_flow(ctx, engine, inference, query, None, query.body)


def _check_flow(
    ctx: LintContext,
    engine,
    inference: ModeInference,
    owner,
    head: Optional[Struct],
    goals: Tuple[Struct, ...],
) -> None:
    # var -> productions as (declared type, producing atom, 1-based arg pos)
    produced: Dict[Var, List[Tuple[Term, Struct, int]]] = {}
    reported: Set[Tuple[str, int, str]] = set()

    def produce(var: Var, sigma: Term, atom: Struct, position: int) -> None:
        if variables_of(sigma):
            return  # polymorphic position: the TLP6xx solver's territory
        produced.setdefault(var, []).append((sigma, atom, position))

    def consume(atom: Struct, position: int, arg: Term, tau: Term) -> None:
        if variables_of(tau):
            return  # polymorphic position: the TLP6xx solver's territory
        for var in variables_of(arg):
            for sigma, producer, producer_pos in produced.get(var, []):
                if engine.more_general(tau, sigma):
                    continue  # sub→super: the safe direction
                if not engine.more_general(sigma, tau):
                    continue  # incomparable: a typing problem, not a flow one
                if (
                    producer.indicator in ctx.mode_decls
                    and atom.indicator in ctx.mode_decls
                ):
                    # Both endpoints carry explicit MODE declarations:
                    # the flow is judged by the declared direction, and
                    # any violation is TLP502's (with its structured
                    # filter-insertion fix-it), not a TLP301 heuristic.
                    continue
                key = (var.name, position, pretty(atom))
                if key in reported:
                    continue
                reported.add(key)
                filter_name = _filter_name(sigma, tau)
                fresh = f"{var.name}_{_suffix(tau)}"
                ctx.report(
                    check_information_flow._rule,
                    f"variable {var.name} flows from supertype "
                    f"{pretty(sigma)} (produced by {pretty(producer)} "
                    f"argument {producer_pos}) into the strict-subtype "
                    f"position {pretty(atom)} argument {position + 1} of "
                    f"type {pretty(tau)} without an intervening filter "
                    f"predicate",
                    owner.position,
                    fixits=(
                        FixIt(
                            f"insert a filter goal "
                            f"`{filter_name}({var.name}, {fresh})` before "
                            f"{pretty(atom)} and consume {fresh} instead "
                            f"(declare `PRED {filter_name}"
                            f"({pretty(sigma)}, {pretty(tau)}).` with "
                            f"`MODE {filter_name}(IN, OUT).`)"
                        ),
                    ),
                )

    if head is not None:
        head_types = _declared_types(ctx, head)
        head_producers = inference.producer_positions(head)
        if head_types is not None:
            # The head's IN positions are produced by the caller.
            for position, (arg, arg_type) in enumerate(
                zip(head.args, head_types)
            ):
                if position not in head_producers:
                    for var in variables_of(arg):
                        produce(var, arg_type, head, position + 1)

    for goal in goals:
        if _is_constraint_goal(goal):
            continue
        types = _declared_types(ctx, goal)
        if types is None or len(types) != len(goal.args):
            continue  # TLP201/TLP202 report the declaration problem
        producers = inference.producer_positions(goal)
        # Consumers read before the goal binds its producers.
        for position, (arg, tau) in enumerate(zip(goal.args, types)):
            if position not in producers:
                consume(goal, position, arg, tau)
        for position, (arg, sigma) in enumerate(zip(goal.args, types)):
            if position in producers:
                for var in variables_of(arg):
                    produce(var, sigma, goal, position + 1)

    if head is not None:
        head_types = _declared_types(ctx, head)
        head_producers = inference.producer_positions(head)
        if head_types is not None:
            # OUT head positions are consumed by the clause's callers.
            for position, (arg, arg_type) in enumerate(
                zip(head.args, head_types)
            ):
                if position in head_producers:
                    consume(head, position, arg, arg_type)


def _suffix(tau: Term) -> str:
    return tau.functor if isinstance(tau, Struct) else "narrow"
