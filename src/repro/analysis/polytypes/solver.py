"""The polymorphic subtype-constraint solver (after Fages & Coquery).

The paper's Definition 16 checks each clause with per-position ``match``
against *ground* declared types.  Typed constraint logic programs
generalize this: ``PRED`` declarations may carry type variables
(``PRED sel(A, A).``) and built-in constraint predicates come with
declared numeric signatures, so clause checking produces a set of
subtype *inequalities* — ``τ ⊑ α``, ``α ⊑ τ``, ``α ⊑ β`` — instead of a
per-position yes/no.  This module closes such a set over a constraint
graph:

* **Nodes** stand for type variables: use-site instances of declaration
  variables (renamed apart per atom occurrence), the *rigid* declaration
  variables of a clause head (universally quantified — a clause must be
  well-typed for **every** instantiation), and one node per program
  variable (the type of its value set).
* **Bounds** against the ground lattice: producers contribute lower
  bounds (``σ ⊑ α`` — values up to ``σ`` flow in), consumers contribute
  upper bounds (``α ⊑ τ`` — every value must fit ``τ``), and ground
  argument terms contribute membership constraints (``t ∈ M[[α]]``).
* **Edges** ``α ⊑ β`` link nodes; cycles collapse to equality classes
  (Tarjan SCC) before propagation.
* **Solving** is bound intersection against the finite set of *candidate
  ground types* (every ground type the program mentions): each node's
  domain starts as the candidates satisfying its own bounds, then arc
  consistency prunes along edges to a fixpoint.  An empty domain is an
  unsatisfiability **witness** carrying every bound that contributed,
  with provenance (atom, argument position, produced/consumed) so the
  lint layer can report spans and build fix-its.

On a variable-free (monomorphic) program every constraint is ground, so
the solver degenerates to exactly the engine's ``⪰_C`` verdicts and
``match`` membership — the differential the tests pin.

Ground-ground constraints between same-constructor applications
decompose pointwise (uniform polymorphism makes constructor arguments
covariant); everything else is answered by the
:class:`~repro.core.subtype.SubtypeEngine` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...terms.pretty import pretty
from ...terms.term import Struct, Term, variables_of

__all__ = [
    "Bound",
    "ConstraintGraph",
    "Node",
    "Solution",
    "Witness",
    "ground_types_in",
]

LOWER = "lower"  # σ ⊑ α : produced values reach the variable
UPPER = "upper"  # α ⊑ τ : consumed values must fit the type
MEMBER = "member"  # t ∈ M[[α]] : a ground argument term inhabits the type


def ground_types_in(term: Term, is_type_name) -> List[Struct]:
    """Every subterm of ``term`` that is a *ground type*: a variable-free
    term whose every constructor is a declared type name."""

    found: List[Struct] = []

    def is_ground_type(candidate: Term) -> bool:
        if not isinstance(candidate, Struct) or not is_type_name(candidate.functor):
            return False
        return all(is_ground_type(arg) for arg in candidate.args)

    def walk(candidate: Term) -> None:
        if not isinstance(candidate, Struct):
            return
        if is_ground_type(candidate):
            found.append(candidate)
        for arg in candidate.args:
            walk(arg)

    walk(term)
    return found


@dataclass(frozen=True)
class Bound:
    """One collected constraint endpoint, with provenance for witnesses."""

    kind: str  # LOWER | UPPER | MEMBER
    type: Optional[Term] = None  # the ground type (LOWER/UPPER)
    term: Optional[Term] = None  # the ground object term (MEMBER)
    origin: str = ""  # human-readable provenance
    builtin: bool = False  # contributed by a built-in signature
    atom: Optional[Struct] = None  # the goal that contributed the bound
    position: Optional[int] = None  # its 0-based argument position

    def describe(self) -> str:
        if self.kind == LOWER:
            return f"{pretty(self.type)} ⊑ it ({self.origin})"
        if self.kind == UPPER:
            return f"it ⊑ {pretty(self.type)} ({self.origin})"
        return f"{pretty(self.term)} ∈ it ({self.origin})"


@dataclass
class Node:
    """One type variable of the constraint graph."""

    key: str  # stable identity ("var X", "type A", "type A#2")
    display: str  # name shown in diagnostics ("X", "A")
    rigid: bool = False  # universally quantified (clause-head decl var)
    bounds: List[Bound] = field(default_factory=list)
    domain: Optional[Tuple[Term, ...]] = None  # set by solve()


@dataclass(frozen=True)
class Edge:
    """``lower ⊑ upper`` between two nodes."""

    lower: str
    upper: str
    origin: str = ""
    builtin: bool = False


@dataclass(frozen=True)
class Witness:
    """One unsatisfiable node: its bounds cannot be met by any candidate."""

    node: Node
    bounds: Tuple[Bound, ...]
    builtin: bool  # any contributing constraint came from a built-in
    reason: str

    def describe_bounds(self) -> str:
        return "; ".join(bound.describe() for bound in self.bounds)


@dataclass
class Solution:
    """The solved graph: final domains, equality classes, witnesses."""

    nodes: Dict[str, Node]
    candidates: Tuple[Term, ...]
    witnesses: List[Witness]
    equalities: List[Tuple[str, ...]]  # collapsed cycles (len > 1)

    @property
    def satisfiable(self) -> bool:
        return not self.witnesses

    def domain_of(self, key: str) -> Tuple[Term, ...]:
        node = self.nodes.get(key)
        return node.domain if node is not None and node.domain is not None else ()

    def committed(self, key: str) -> bool:
        """True iff solving shrank the node's domain below the full
        candidate set — for a rigid variable, the clause does not work
        for every instantiation."""
        node = self.nodes.get(key)
        if node is None or node.domain is None:
            return False
        return len(node.domain) < len(self.candidates)


class ConstraintGraph:
    """Collect subtype constraints, then :meth:`solve` them."""

    def __init__(self, engine, candidates: Sequence[Term]) -> None:
        self.engine = engine
        self.candidates: Tuple[Term, ...] = tuple(candidates)
        self.nodes: Dict[str, Node] = {}
        self.edges: List[Edge] = []
        self.witnesses: List[Witness] = []

    # -- construction --------------------------------------------------------

    def node(self, key: str, display: str = "", rigid: bool = False) -> Node:
        found = self.nodes.get(key)
        if found is None:
            found = Node(key, display or key, rigid)
            self.nodes[key] = found
        return found

    def add_lower(
        self,
        key: str,
        tau: Term,
        origin: str,
        builtin: bool = False,
        atom: Optional[Struct] = None,
        position: Optional[int] = None,
    ) -> None:
        self.node(key).bounds.append(
            Bound(LOWER, type=tau, origin=origin, builtin=builtin, atom=atom, position=position)
        )

    def add_upper(
        self,
        key: str,
        tau: Term,
        origin: str,
        builtin: bool = False,
        atom: Optional[Struct] = None,
        position: Optional[int] = None,
    ) -> None:
        self.node(key).bounds.append(
            Bound(UPPER, type=tau, origin=origin, builtin=builtin, atom=atom, position=position)
        )

    def add_member(
        self,
        key: str,
        term: Term,
        origin: str,
        builtin: bool = False,
        atom: Optional[Struct] = None,
        position: Optional[int] = None,
    ) -> None:
        self.node(key).bounds.append(
            Bound(MEMBER, term=term, origin=origin, builtin=builtin, atom=atom, position=position)
        )

    def add_edge(self, lower_key: str, upper_key: str, origin: str, builtin: bool = False) -> None:
        self.node(lower_key)
        self.node(upper_key)
        self.edges.append(Edge(lower_key, upper_key, origin, builtin))

    def add_ground(
        self, sub: Term, sup: Term, origin: str, builtin: bool = False
    ) -> None:
        """A ground-ground constraint ``sub ⊑ sup``: decompose
        same-constructor applications pointwise, ask the engine for the
        rest, record a witness on refutation."""
        if (
            isinstance(sub, Struct)
            and isinstance(sup, Struct)
            and sub.functor == sup.functor
            and len(sub.args) == len(sup.args)
            and sub.args
        ):
            for left, right in zip(sub.args, sup.args):
                self.add_ground(left, right, origin, builtin)
            return
        if not self.engine.holds(sup, sub):
            ghost = Node(f"ground {pretty(sub)}", pretty(sub))
            bound = Bound(UPPER, type=sup, origin=origin, builtin=builtin)
            ghost.bounds.append(Bound(LOWER, type=sub, origin=origin, builtin=builtin))
            ghost.bounds.append(bound)
            self.witnesses.append(
                Witness(
                    ghost,
                    tuple(ghost.bounds),
                    builtin,
                    f"{pretty(sub)} ⊑ {pretty(sup)} does not hold in the "
                    f"declared lattice ({origin})",
                )
            )

    def check_member(
        self, tau: Term, term: Term, origin: str, builtin: bool = False
    ) -> bool:
        """A ground membership constraint ``term ∈ M[[τ]]``; records a
        witness (and returns False) when it fails."""
        if not variables_of(term) and self.engine.contains(tau, term):
            return True
        ghost = Node(f"ground {pretty(term)}", pretty(term))
        ghost.bounds.append(Bound(MEMBER, term=term, origin=origin, builtin=builtin))
        ghost.bounds.append(Bound(UPPER, type=tau, origin=origin, builtin=builtin))
        self.witnesses.append(
            Witness(
                ghost,
                tuple(ghost.bounds),
                builtin,
                f"term {pretty(term)} is not a member of {pretty(tau)} ({origin})",
            )
        )
        return False

    # -- solving -------------------------------------------------------------

    def _collapse_cycles(self) -> Tuple[Dict[str, str], List[Tuple[str, ...]]]:
        """Tarjan SCC over the edge relation: every cycle ``α ⊑ … ⊑ α``
        forces equality, so members share one representative node."""
        graph: Dict[str, List[str]] = {key: [] for key in self.nodes}
        for edge in self.edges:
            if edge.lower in graph and edge.upper in graph:
                graph[edge.lower].append(edge.upper)
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        counter = [0]
        components: List[List[str]] = []

        def strongconnect(root: str) -> None:
            # Iterative Tarjan: (node, child iterator) frames.
            work = [(root, iter(graph[root]))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = low[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack[child] = True
                        work.append((child, iter(graph[child])))
                        advanced = True
                        break
                    if on_stack.get(child):
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)

        for key in graph:
            if key not in index:
                strongconnect(key)

        representative: Dict[str, str] = {}
        equalities: List[Tuple[str, ...]] = []
        for component in components:
            ordered = sorted(component)
            rep = ordered[0]
            for member in ordered:
                representative[member] = rep
            if len(ordered) > 1:
                equalities.append(tuple(ordered))
        return representative, equalities

    def solve(self) -> Solution:
        representative, equalities = self._collapse_cycles()

        # Merge cycle members into their representative.
        merged: Dict[str, Node] = {}
        for key, node in self.nodes.items():
            rep = representative.get(key, key)
            target = merged.get(rep)
            if target is None:
                target = Node(rep, node.display, node.rigid)
                merged[rep] = target
            target.bounds.extend(node.bounds)
            target.rigid = target.rigid or node.rigid
            if key == rep:
                target.display = node.display
        edges = {
            (representative.get(e.lower, e.lower), representative.get(e.upper, e.upper), e.builtin)
            for e in self.edges
        }
        edges = {(low, up, b) for (low, up, b) in edges if low != up}

        holds = self.engine.holds
        contains = self.engine.contains

        def admits(gamma: Term, node: Node) -> bool:
            for bound in node.bounds:
                if bound.kind == LOWER and not holds(gamma, bound.type):
                    return False
                if bound.kind == UPPER and not holds(bound.type, gamma):
                    return False
                if bound.kind == MEMBER and not contains(gamma, bound.term):
                    return False
            return True

        domains: Dict[str, List[Term]] = {
            key: [gamma for gamma in self.candidates if admits(gamma, node)]
            for key, node in merged.items()
        }

        # Arc consistency over ``lower ⊑ upper`` edges, to a fixpoint.
        changed = True
        while changed:
            changed = False
            for low_key, up_key, _ in edges:
                low_dom = domains.get(low_key)
                up_dom = domains.get(up_key)
                if low_dom is None or up_dom is None:
                    continue
                kept = [g for g in low_dom if any(holds(d, g) for d in up_dom)]
                if len(kept) != len(low_dom):
                    domains[low_key] = kept
                    changed = True
                kept = [d for d in up_dom if any(holds(d, g) for g in domains[low_key])]
                if len(kept) != len(up_dom):
                    domains[up_key] = kept
                    changed = True

        for key, node in merged.items():
            node.domain = tuple(domains[key])

        witnesses = list(self.witnesses)
        # The pruning runs both directions along every edge, so one
        # unsatisfiable conflict empties its entire edge-connected
        # component.  Emit ONE witness per component, pooling the member
        # nodes' own bounds — the report then shows the actual conflict
        # (e.g. incomparable lower bounds meeting on a shared type
        # variable) rather than whichever node it surfaced on.
        if self.candidates:
            witnesses.extend(self._component_witnesses(merged, edges))

        # Expose solved domains on the original (pre-merge) nodes too.
        for key, node in self.nodes.items():
            rep = representative.get(key, key)
            node.domain = merged[rep].domain
            node.bounds = merged[rep].bounds

        return Solution(dict(self.nodes), self.candidates, witnesses, equalities)

    def _component_witnesses(self, merged, edges) -> List[Witness]:
        empty = {
            key
            for key, node in merged.items()
            if not node.domain
            and (node.bounds or any(key in (low, up) for (low, up, _) in edges))
        }
        neighbours: Dict[str, List[str]] = {key: [] for key in empty}
        for low, up, _ in edges:
            if low in empty and up in empty:
                neighbours[low].append(up)
                neighbours[up].append(low)
        witnesses: List[Witness] = []
        seen: set = set()
        for start in sorted(empty):
            if start in seen:
                continue
            component: List[str] = []
            frontier = [start]
            while frontier:
                key = frontier.pop()
                if key in seen:
                    continue
                seen.add(key)
                component.append(key)
                frontier.extend(neighbours[key])
            component.sort()
            pooled: List[Bound] = []
            for key in component:
                pooled.extend(merged[key].bounds)
            if not pooled:
                continue  # no constraint ever touched it; nothing to report
            # Surface the witness on the most-constrained node (ties
            # break on the sorted key, for determinism).
            rep = sorted(component, key=lambda k: (-len(merged[k].bounds), k))[0]
            node = merged[rep]
            builtin = any(bound.builtin for bound in pooled) or any(
                b for (low, up, b) in edges if low in component or up in component
            )
            witnesses.append(
                Witness(
                    node,
                    tuple(pooled),
                    builtin,
                    f"no type in the declared lattice satisfies the bounds "
                    f"on {node.display}",
                )
            )
        return witnesses

    # -- principal bounds ----------------------------------------------------

    def principal_bound(self, solution: Solution, key: str) -> Optional[Term]:
        """The *most general* type in the node's solved domain — the
        maximum under ``⪰_C`` when one exists (it powers declaration
        rewrites); None for empty or maximum-free domains."""
        domain = solution.domain_of(key)
        if not domain:
            return None
        for gamma in domain:
            if all(self.engine.holds(gamma, other) for other in domain):
                return gamma
        return None

    def minimal_bound(self, solution: Solution, key: str) -> Optional[Term]:
        """The *least* type in the node's solved domain (the principal
        narrowing target for filter insertions), when one exists."""
        domain = solution.domain_of(key)
        if not domain:
            return None
        for gamma in domain:
            if all(self.engine.holds(other, gamma) for other in domain):
                return gamma
        return None
