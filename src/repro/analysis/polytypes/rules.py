"""The typed-CLP rule family ``TLP601``–``TLP605`` (after Fages & Coquery).

Where the ``TLP3xx``/``TLP5xx`` families check *ground* declared types,
this family handles the polymorphic extension: ``PRED`` declarations
with type variables (``PRED append(list(A), list(A), list(A)).``) and
built-in constraint predicates with declared numeric signatures.  Each
clause or query is compiled to a subtype-constraint graph (see
:mod:`.solver`) and solved against the finite set of ground types the
program mentions:

* ``TLP601`` — the collected bounds on some type variable (a use-site
  instance or a program variable's value type) admit no ground type:
  the clause is unsatisfiable under every instantiation.  Supertype→
  subtype crossings carry the §7 filter-insertion fix-it;
* ``TLP602`` — the same conflict, but caused by a built-in constraint
  signature: an argument of ``<``/``=<``/``=:=``/``is`` cannot be
  numeric;
* ``TLP603`` — a clause *commits* a universally quantified type
  variable of its own head declaration: the declaration promises every
  instantiation, the clause body only works for some.  When the
  committed domain has a maximum, the fix-it rewrites the ``PRED`` line
  with it;
* ``TLP604`` — a type variable that occurs only **once** in its
  declaration constrains nothing (any argument type is accepted there);
  when the defining clauses pin it down, the fix-it substitutes the
  principal (most general) bound;
* ``TLP605`` — a ``PRED``/``MODE``/clause definition shadows a built-in
  constraint predicate, suppressing its signature; the fix-it comments
  the declaration out.

The family is gated on the file actually leaving the paper's
monomorphic fragment — a polymorphic ``PRED`` declaration, an
unshadowed built-in goal, or (for ``TLP605`` alone) a shadowing
declaration.  Variable-free programs produce no ``TLP6xx`` findings and
are linted byte-for-byte as before (the differential the tests pin).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...checker.diagnostics import FixIt, Severity
from ...core.builtins import (
    BUILTIN_PREDICATES,
    is_builtin_goal,
    is_builtin_indicator,
    numeric_type_name,
)
from ...lang.ast import ClauseDecl, ModeDecl, PredDecl, QueryDecl
from ...obs import METRICS
from ...terms.pretty import pretty
from ...terms.term import Struct, Term, Var, variables_of
from ..context import LintContext, _is_constraint_goal
from ..flow import ModeInference, _filter_name
from ..modes import _fresh_name, _goals_of, _owners, _rename, _render_goals
from ..registry import register
from .solver import LOWER, MEMBER, UPPER, ConstraintGraph, Solution, ground_types_in

_Indicator = Tuple[str, int]


# -- the shared semantic world (built once per lint run) ---------------------


@dataclass
class _PolyWorld:
    """Everything the TLP6xx rules share: the candidate ground types,
    the (declaration-aware) mode inference driving constraint
    directions, the built-in signatures, and the per-item solutions."""

    engine: object
    candidates: Tuple[Term, ...]
    inference: ModeInference
    numeric: Optional[str]
    builtin_sig: Dict[str, Tuple[Term, ...]]
    poly_decls: Dict[_Indicator, PredDecl]
    solved: Dict[int, Tuple[ConstraintGraph, Solution]] = field(default_factory=dict)


def _candidates(ctx: LintContext) -> Tuple[Term, ...]:
    """Every ground type the program mentions (Fages & Coquery solve
    over this finite set), deduplicated and sorted for determinism."""
    seen: Dict[str, Term] = {}

    def note(term: Term) -> None:
        for ground in ground_types_in(term, ctx.is_type_name):
            seen.setdefault(pretty(ground), ground)

    for pred in ctx.pred_decls.values():
        for arg in pred.head.args:
            note(arg)
    for item in ctx.constraint_items:
        note(item.lhs)
    numeric = numeric_type_name(ctx.type_decls)
    if numeric is not None:
        seen.setdefault(numeric, Struct(numeric, ()))
    return tuple(seen[key] for key in sorted(seen))


def _world(ctx: LintContext) -> Optional[_PolyWorld]:
    cached = ctx.__dict__.get("_tlp6_world", "unset")
    if cached != "unset":
        return cached
    world: Optional[_PolyWorld] = None
    engine = ctx.engine
    if engine is not None:
        poly = {
            indicator: decl
            for indicator, decl in ctx.pred_decls.items()
            if any(variables_of(arg) for arg in decl.head.args)
        }
        builtin_used = any(
            not _is_constraint_goal(goal)
            and is_builtin_goal(goal)
            and goal.indicator not in ctx.pred_decls
            for owner in _owners(ctx)
            for goal in _goals_of(owner)
        )
        if poly or builtin_used:
            with METRICS.time("analysis.polytypes.build"):
                numeric = numeric_type_name(ctx.type_decls)
                builtin_sig: Dict[str, Tuple[Term, ...]] = {}
                if numeric is not None:
                    tau: Term = Struct(numeric, ())
                    builtin_sig = {
                        name: (tau,) * arity
                        for name, arity in BUILTIN_PREDICATES.items()
                    }
                world = _PolyWorld(
                    engine,
                    _candidates(ctx),
                    ModeInference(ctx),
                    numeric,
                    builtin_sig,
                    poly,
                )
            if METRICS.enabled:
                METRICS.inc("analysis.polytypes.files")
    ctx.__dict__["_tlp6_world"] = world
    return world


def _involved(world: _PolyWorld, ctx: LintContext, owner) -> bool:
    """True iff the item leaves the monomorphic fragment: it calls (or
    is a clause of) a polymorphic predicate, or uses a built-in goal."""
    for goal in _goals_of(owner):
        if _is_constraint_goal(goal):
            continue
        if goal.indicator in world.poly_decls:
            return True
        if is_builtin_goal(goal) and goal.indicator not in ctx.pred_decls:
            return True
    return False


# -- constraint collection ---------------------------------------------------


def _rigid_key(var: Var) -> str:
    return f"type {var.name}"


def _position_types(
    world: _PolyWorld, ctx: LintContext, goal: Struct, is_head: bool, instance: int
):
    """Per-position type entries for ``goal``: ``("ground", τ)``,
    ``("node", key, display)`` for a type-variable position, or ``None``
    for positions the collection skips (compound types carrying
    variables — deliberately coarse).  Returns ``(None, False)`` when
    the goal has no usable signature."""
    decl = ctx.pred_decls.get(goal.indicator)
    if decl is not None:
        if len(decl.head.args) != len(goal.args):
            return None, False
        entries = []
        for arg_type in decl.head.args:
            if not variables_of(arg_type):
                entries.append(("ground", arg_type))
            elif isinstance(arg_type, Var):
                # Head occurrences keep the declaration's (rigid)
                # variable; body occurrences are renamed apart per atom.
                key = (
                    _rigid_key(arg_type)
                    if is_head
                    else f"type {arg_type.name}@{instance}"
                )
                entries.append(("node", key, arg_type.name))
            else:
                entries.append(None)
        return entries, False
    if is_builtin_goal(goal):
        signature = world.builtin_sig.get(goal.functor)
        if signature is None:
            return None, False  # no numeric lattice: nothing to check
        return [("ground", tau) for tau in signature], True
    return None, False


def _collect(world: _PolyWorld, ctx: LintContext, owner) -> ConstraintGraph:
    """Compile one clause/query to its subtype-constraint graph.

    Producer positions contribute lower bounds (values flow *in*),
    consumer positions upper bounds (values must *fit*), ground argument
    terms membership constraints.  The clause head is dual: its IN
    positions are produced by the caller, its OUT positions consumed by
    the caller (the :mod:`..flow` convention)."""
    graph = ConstraintGraph(world.engine, world.candidates)
    head = owner.head if isinstance(owner, ClauseDecl) else None
    if head is not None:
        decl = ctx.pred_decls.get(head.indicator)
        if decl is not None:
            for arg in decl.head.args:
                for var in sorted(variables_of(arg), key=lambda v: v.name):
                    graph.node(_rigid_key(var), var.name, rigid=True)
    instance = 0
    for goal in _goals_of(owner):
        if _is_constraint_goal(goal):
            continue
        is_head = head is not None and goal is head
        if not is_head:
            instance += 1
        entries, builtin = _position_types(world, ctx, goal, is_head, instance)
        if entries is None:
            continue
        producers = world.inference.producer_positions(goal)
        if is_head:
            produced = {
                index for index in range(len(goal.args)) if index not in producers
            }
        else:
            produced = producers
        for position, (entry, arg) in enumerate(zip(entries, goal.args)):
            if entry is None:
                continue
            origin = f"argument {position + 1} of {pretty(goal)}"
            arg_vars = variables_of(arg)
            if entry[0] == "ground":
                tau = entry[1]
                if not arg_vars:
                    graph.check_member(tau, arg, origin, builtin)
                elif isinstance(arg, Var):
                    vkey = f"var {arg.name}"
                    graph.node(vkey, arg.name)
                    if position in produced:
                        graph.add_lower(
                            vkey, tau, origin, builtin, atom=goal, position=position
                        )
                    else:
                        graph.add_upper(
                            vkey, tau, origin, builtin, atom=goal, position=position
                        )
                continue
            _, key, display = entry
            graph.node(key, display, rigid=is_head)
            if not arg_vars:
                graph.add_member(key, arg, origin, builtin, atom=goal, position=position)
            elif isinstance(arg, Var):
                vkey = f"var {arg.name}"
                graph.node(vkey, arg.name)
                if position in produced:
                    graph.add_edge(key, vkey, origin, builtin)
                else:
                    graph.add_edge(vkey, key, origin, builtin)
    return graph


def _solution(world: _PolyWorld, ctx: LintContext, owner) -> Tuple[ConstraintGraph, Solution]:
    key = id(owner)
    found = world.solved.get(key)
    if found is None:
        with METRICS.time("analysis.polytypes.solve"):
            graph = _collect(world, ctx, owner)
            solution = graph.solve()
        if METRICS.enabled:
            METRICS.inc("analysis.polytypes.owners")
            if solution.witnesses:
                METRICS.inc("analysis.polytypes.witnesses", len(solution.witnesses))
        found = (graph, solution)
        world.solved[key] = found
    return found


# -- witness classification and fix-its --------------------------------------


def _admits(engine, gamma: Term, bounds) -> bool:
    for bound in bounds:
        if bound.kind == LOWER and not engine.holds(gamma, bound.type):
            return False
        if bound.kind == UPPER and not engine.holds(bound.type, gamma):
            return False
        if bound.kind == MEMBER and not engine.contains(gamma, bound.term):
            return False
    return True


def _builtin_caused(world: _PolyWorld, witness) -> bool:
    """A conflict is the built-in's fault when some built-in signature
    contributed a bound AND dropping the built-in bounds makes the rest
    satisfiable — otherwise the user-level constraints conflict on
    their own and TLP601 owns the report."""
    if not witness.builtin and not any(b.builtin for b in witness.bounds):
        return False
    user_bounds = [bound for bound in witness.bounds if not bound.builtin]
    if not user_bounds:
        return True
    return any(
        _admits(world.engine, gamma, user_bounds) for gamma in world.candidates
    )


def _render_rewritten(owner, goals) -> str:
    if isinstance(owner, QueryDecl):
        return f":- {_render_goals(goals)}."
    return f"{pretty(owner.head)} :- {_render_goals(goals)}."


def _filter_fix(ctx: LintContext, owner, witness, engine) -> Optional[FixIt]:
    """The §7 remedy for a supertype→subtype crossing: insert the
    ``int2nat``-style filter before the consumer and consume the
    narrowed variable.  Applies when the witness pools a ground lower
    bound σ and a ground upper bound τ with σ ≻ τ strictly and the
    consuming occurrence is a plain variable in the item's body."""
    lowers = [b for b in witness.bounds if b.kind == LOWER and b.type is not None]
    uppers = [
        b
        for b in witness.bounds
        if b.kind == UPPER
        and b.type is not None
        and b.atom is not None
        and b.position is not None
    ]
    for upper in uppers:
        index = next(
            (i for i, goal in enumerate(owner.body) if goal is upper.atom), None
        )
        if index is None:
            continue
        arg = upper.atom.args[upper.position]
        if not isinstance(arg, Var):
            continue
        tau = upper.type
        for lower in lowers:
            sigma = lower.type
            if not engine.holds(sigma, tau) or engine.holds(tau, sigma):
                continue  # not a strict supertype→subtype crossing
            filter_name = _filter_name(sigma, tau)
            fresh = Var(_fresh_name(owner, arg, tau))
            rewritten = Struct(
                upper.atom.functor,
                tuple(
                    _rename(a, arg, fresh) if p == upper.position else a
                    for p, a in enumerate(upper.atom.args)
                ),
            )
            goals = list(owner.body)
            goals[index] = rewritten
            goals.insert(index, Struct(filter_name, (arg, fresh)))
            description = (
                f"insert the filter goal `{filter_name}({arg.name}, "
                f"{fresh.name})` before {pretty(upper.atom)} and consume "
                f"{fresh.name} instead (declare `PRED {filter_name}"
                f"({pretty(sigma)}, {pretty(tau)}).` with "
                f"`MODE {filter_name}(IN, OUT).` if it does not exist)"
            )
            if owner.position.has_span:
                return FixIt(description, _render_rewritten(owner, goals), owner.position)
            return FixIt(description)
    return None


def _principal(engine, domain) -> Optional[Term]:
    """The maximum of ``domain`` under ``⪰_C`` — the most general type
    a committed variable still works at — when one exists."""
    for gamma in domain:
        if all(engine.holds(gamma, other) for other in domain):
            return gamma
    return None


def _decl_var_occurrences(decl: PredDecl) -> Dict[str, int]:
    counts: Dict[str, int] = {}

    def walk(term: Term) -> None:
        if isinstance(term, Var):
            counts[term.name] = counts.get(term.name, 0) + 1
        elif isinstance(term, Struct):
            for arg in term.args:
                walk(arg)

    for arg in decl.head.args:
        walk(arg)
    return counts


def _render_pred_decl(decl: PredDecl, substitution: Dict[str, Term]) -> str:
    """The ``PRED`` line with ``substitution`` applied to its argument
    types, preserving §7 inline modes."""

    def subst(term: Term) -> Term:
        if isinstance(term, Var):
            return substitution.get(term.name, term)
        if isinstance(term, Struct):
            return Struct(term.functor, tuple(subst(arg) for arg in term.args))
        return term

    args = [pretty(subst(arg)) for arg in decl.head.args]
    if decl.modes is not None:
        args = [f"{mode} {arg}" for mode, arg in zip(decl.modes, args)]
    name = decl.head.functor
    if not args:
        return f"PRED {name}."
    return f"PRED {name}({', '.join(args)})."


# -- TLP601: unsolvable type-variable bounds ---------------------------------


@register(
    "TLP601",
    "unsolvable-variable-bounds",
    Severity.ERROR,
    "the subtype constraints collected on a type variable admit no "
    "ground type of the declared lattice — the clause or query is "
    "ill-typed under every instantiation",
    "typed CLP (Fages & Coquery), after §S4–S7",
)
def check_unsolvable_bounds(ctx: LintContext) -> None:
    world = _world(ctx)
    if world is None:
        return
    for owner in _owners(ctx):
        if not _involved(world, ctx, owner):
            continue
        _, solution = _solution(world, ctx, owner)
        for witness in solution.witnesses:
            if _builtin_caused(world, witness):
                continue  # TLP602's report
            fixits: Tuple[FixIt, ...] = ()
            fix = _filter_fix(ctx, owner, witness, world.engine)
            if fix is not None:
                fixits = (fix,)
            else:
                fixits = (
                    FixIt(
                        "weaken one of the conflicting positions (the bounds "
                        "meet on a shared variable), or split the variable"
                    ),
                )
            ctx.report(
                check_unsolvable_bounds._rule,
                f"unsatisfiable subtype constraints on {witness.node.display}: "
                f"{witness.describe_bounds()}",
                owner.position,
                fixits=fixits,
            )


# -- TLP602: ill-typed built-in constraint calls -----------------------------


@register(
    "TLP602",
    "ill-typed-builtin-call",
    Severity.ERROR,
    "an argument of a built-in constraint predicate (<, =<, =:=, is) "
    "cannot be numeric under the declared lattice",
    "typed CLP (Fages & Coquery): built-in constraint signatures",
)
def check_builtin_calls(ctx: LintContext) -> None:
    world = _world(ctx)
    if world is None:
        return
    for owner in _owners(ctx):
        if not _involved(world, ctx, owner):
            continue
        _, solution = _solution(world, ctx, owner)
        for witness in solution.witnesses:
            if not _builtin_caused(world, witness):
                continue
            fixits: Tuple[FixIt, ...] = ()
            fix = _filter_fix(ctx, owner, witness, world.engine)
            if fix is not None:
                fixits = (fix,)
            else:
                numeric = world.numeric or "a numeric type"
                fixits = (
                    FixIt(
                        f"built-ins range over `{numeric}` here — produce the "
                        f"argument at a subtype of `{numeric}`, or drop the "
                        f"built-in goal"
                    ),
                )
            ctx.report(
                check_builtin_calls._rule,
                f"ill-typed built-in constraint call: "
                f"{witness.describe_bounds()}",
                owner.position,
                fixits=fixits,
            )


# -- TLP603: clauses committing universally quantified variables -------------


@register(
    "TLP603",
    "polymorphic-declaration-mismatch",
    Severity.ERROR,
    "a clause commits a universally quantified type variable of its own "
    "head declaration to a strict subset of the ground types — the "
    "declaration promises every instantiation",
    "typed CLP (Fages & Coquery): parametric declarations are universal",
)
def check_committed_declarations(ctx: LintContext) -> None:
    world = _world(ctx)
    if world is None:
        return
    for owner in ctx.clause_items:
        if not _involved(world, ctx, owner):
            continue
        decl = world.poly_decls.get(owner.head.indicator)
        if decl is None:
            continue
        _, solution = _solution(world, ctx, owner)
        if not solution.satisfiable:
            continue  # TLP601/602 already explain the clause
        occurrences = _decl_var_occurrences(decl)
        for name, count in sorted(occurrences.items()):
            if count < 2:
                continue  # single-occurrence variables are TLP604's
            key = _rigid_key(Var(name))
            if not solution.committed(key):
                continue
            domain = solution.domain_of(key)
            rendered = ", ".join(pretty(gamma) for gamma in domain)
            fixits: Tuple[FixIt, ...] = ()
            principal = _principal(world.engine, domain)
            if principal is not None and decl.position.has_span:
                replacement = _render_pred_decl(decl, {name: principal})
                fixits = (
                    FixIt(
                        f"the clause only works at {{{rendered}}} — declare "
                        f"the principal instance instead: `{replacement}`",
                        replacement,
                        decl.position,
                    ),
                )
            else:
                fixits = (
                    FixIt(
                        f"generalize the clause to work at every type, or "
                        f"declare a concrete instance (it only works at "
                        f"{{{rendered}}})"
                    ),
                )
            ctx.report(
                check_committed_declarations._rule,
                f"clause commits the universally quantified type variable "
                f"{name} of PRED {owner.head.functor}/"
                f"{len(owner.head.args)} to {{{rendered}}} — the "
                f"declaration promises every instantiation",
                owner.position,
                fixits=fixits,
            )


# -- TLP604: type variables that constrain nothing ---------------------------


@register(
    "TLP604",
    "unconstrained-type-variable",
    Severity.WARNING,
    "a type variable occurs only once in its PRED declaration — it "
    "links no positions, so any argument type is accepted there",
    "typed CLP (Fages & Coquery): parametric declarations link positions",
)
def check_single_occurrence_variables(ctx: LintContext) -> None:
    world = _world(ctx)
    if world is None:
        return
    for indicator, decl in sorted(world.poly_decls.items()):
        occurrences = _decl_var_occurrences(decl)
        for name, count in sorted(occurrences.items()):
            if count != 1:
                continue
            fixits: Tuple[FixIt, ...] = ()
            principal = _clause_principal(world, ctx, indicator, name)
            if principal is not None and decl.position.has_span:
                replacement = _render_pred_decl(decl, {name: principal})
                fixits = (
                    FixIt(
                        f"the defining clauses pin the position down — "
                        f"declare it concretely: `{replacement}`",
                        replacement,
                        decl.position,
                    ),
                )
            else:
                fixits = (
                    FixIt(
                        f"replace {name} with a concrete type, or repeat it "
                        f"at another argument position to link the two"
                    ),
                )
            ctx.report(
                check_single_occurrence_variables._rule,
                f"type variable {name} occurs only once in PRED "
                f"{indicator[0]}/{indicator[1]} — it links no positions, "
                f"so any argument type is accepted there",
                decl.position,
                fixits=fixits,
            )


def _clause_principal(
    world: _PolyWorld, ctx: LintContext, indicator: _Indicator, name: str
) -> Optional[Term]:
    """The most general type the defining clauses still admit for the
    declaration variable ``name`` — only when they genuinely commit it
    (the intersected domain is a strict, non-empty subset)."""
    key = _rigid_key(Var(name))
    intersection: Optional[Dict[str, Term]] = None
    for owner in ctx.clause_items:
        if owner.head.indicator != indicator:
            continue
        _, solution = _solution(world, ctx, owner)
        if not solution.satisfiable:
            return None
        domain = {pretty(gamma): gamma for gamma in solution.domain_of(key)}
        if intersection is None:
            intersection = domain
        else:
            intersection = {
                rendered: gamma
                for rendered, gamma in intersection.items()
                if rendered in domain
            }
    if not intersection or len(intersection) >= len(world.candidates):
        return None
    return _principal(world.engine, list(intersection.values()))


# -- TLP605: shadowed built-in constraint predicates -------------------------


@register(
    "TLP605",
    "builtin-shadowed",
    Severity.WARNING,
    "a PRED/MODE declaration or clause redefines a built-in constraint "
    "predicate, suppressing its numeric signature",
    "typed CLP (Fages & Coquery): built-ins carry fixed signatures",
)
def check_builtin_shadowing(ctx: LintContext) -> None:
    for item in ctx.source.items:
        if isinstance(item, PredDecl):
            name, arity = item.head.indicator
            if not is_builtin_indicator(name, arity):
                continue
            args = [pretty(arg) for arg in item.head.args]
            if item.modes is not None:
                args = [f"{m} {a}" for m, a in zip(item.modes, args)]
            line = f"PRED {name}({', '.join(args)})."
            _report_shadowing(ctx, item, name, arity, line)
        elif isinstance(item, ModeDecl):
            name, arity = item.name, len(item.modes)
            if not is_builtin_indicator(name, arity):
                continue
            line = f"MODE {name}({', '.join(item.modes)})."
            _report_shadowing(ctx, item, name, arity, line)
        elif isinstance(item, ClauseDecl):
            if not is_builtin_goal(item.head):
                continue
            name, arity = item.head.indicator
            ctx.report(
                check_builtin_shadowing._rule,
                f"clause redefines the built-in constraint predicate "
                f"{name}/{arity} — its numeric signature is suppressed "
                f"for this file",
                item.position,
                fixits=(
                    FixIt(
                        f"rename the predicate (e.g. `my_{_slug(name)}`) so "
                        f"the built-in keeps its signature"
                    ),
                ),
            )


def _slug(name: str) -> str:
    return {"<": "lt", "=<": "leq", "=:=": "eq", "is": "is"}.get(name, name)


# -- the solver as a service (REPL ``:solve``, daemon ``solve`` op) ----------


def solve_text(text: str, path: str = "<text>") -> Optional[dict]:
    """Parse ``text`` and report the solved constraint graphs of every
    polymorphic/built-in item as plain JSON-ready data.

    Returns ``None`` when the file never leaves the monomorphic
    fragment (or the constraint set falls outside uniform+guarded, so
    no subtype engine exists).  Parse errors propagate — callers render
    them.
    """
    from ...lang.parser import parse_file
    from ..modes import _render_owner

    source = parse_file(text)
    ctx = LintContext.build(source, path=path)
    world = _world(ctx)
    if world is None:
        return None
    items = []
    for owner in _owners(ctx):
        if not _involved(world, ctx, owner):
            continue
        _, solution = _solution(world, ctx, owner)
        nodes = []
        for key in sorted(solution.nodes):
            node = solution.nodes[key]
            nodes.append(
                {
                    "key": key,
                    "display": node.display,
                    "rigid": node.rigid,
                    "domain": [pretty(gamma) for gamma in (node.domain or ())],
                }
            )
        items.append(
            {
                "item": _render_owner(owner),
                "line": owner.position.line,
                "satisfiable": solution.satisfiable,
                "nodes": nodes,
                "equalities": [list(group) for group in solution.equalities],
                "witnesses": [
                    {
                        "node": witness.node.display,
                        "builtin": _builtin_caused(world, witness),
                        "bounds": [bound.describe() for bound in witness.bounds],
                        "reason": witness.reason,
                    }
                    for witness in solution.witnesses
                ],
            }
        )
    return {
        "candidates": [pretty(gamma) for gamma in world.candidates],
        "items": items,
    }


def _report_shadowing(ctx: LintContext, item, name: str, arity: int, line: str) -> None:
    fixits: Tuple[FixIt, ...] = ()
    if item.position.has_span:
        fixits = (
            FixIt(
                f"comment the declaration out so the built-in keeps its "
                f"numeric signature: `% {line}`",
                f"% {line}",
                item.position,
            ),
        )
    else:
        fixits = (FixIt("remove the declaration"),)
    ctx.report(
        check_builtin_shadowing._rule,
        f"declaration shadows the built-in constraint predicate "
        f"{name}/{arity} — its numeric signature is suppressed for this "
        f"file",
        item.position,
        fixits=fixits,
    )
