"""Polymorphic subtype-constraint solving: the ``TLP6xx`` lint family.

The package splits into the solver proper (:mod:`.solver` — constraint
graphs over type variables, Tarjan cycle collapse, arc consistency
against the finite candidate ground-type set, unsatisfiability
witnesses) and the lint rules that drive it (:mod:`.rules` —
``TLP601``–``TLP605``, constraint collection from clauses and queries,
fix-its).  Importing :mod:`.rules` registers the rules.
"""

from .solver import (
    Bound,
    ConstraintGraph,
    Edge,
    Node,
    Solution,
    Witness,
    ground_types_in,
)

__all__ = [
    "Bound",
    "ConstraintGraph",
    "Edge",
    "Node",
    "Solution",
    "Witness",
    "ground_types_in",
    "solve_text",
]


def solve_text(text, path="<text>"):
    """Lazy re-export of :func:`.rules.solve_text` (importing the rules
    module registers the TLP6xx rules as a side effect, which the
    solver-only API should not force)."""
    from .rules import solve_text as _solve_text

    return _solve_text(text, path=path)
