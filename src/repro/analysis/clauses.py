"""Clause/query analyses: rules ``TLP201``-``TLP204``.

These passes walk program clauses and queries (the object level) against
the declaration indices — they are the "does the program even fit its
declarations" checks that run before any Definition 16 typing:

* **TLP201** goals on predicates with no ``PRED`` declaration — the set
  ``D`` must assign a type to every predicate (Definition 14);
* **TLP202** arity mismatches: symbols used at several arities, and
  calls whose arity disagrees with the ``PRED`` declaration;
* **TLP203** singleton variables — almost always a typo in logic
  programs (a misspelt variable silently becomes unconstrained);
* **TLP204** undeclared function symbols in object terms (and type
  constructors smuggled into object positions).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Set, Tuple

from ..checker.diagnostics import FixIt, Severity
from ..core.builtins import is_builtin_indicator
from ..lang.ast import ClauseDecl, QueryDecl
from ..terms.pretty import pretty
from ..terms.term import Struct, Term, Var, subterms, variables_of
from .context import LintContext, _is_constraint_goal
from .registry import register


@register(
    "TLP201",
    "undeclared-predicate",
    Severity.ERROR,
    "predicate has no PRED declaration: the checker cannot assign "
    "type(A) to its atoms",
    "§6, Definitions 14-15",
)
def check_undeclared_predicates(ctx: LintContext) -> None:
    reported: Set[Tuple[str, int]] = set()
    for owner, goal, _is_head in ctx.predicate_goals():
        indicator = goal.indicator
        if indicator in ctx.pred_decls or indicator in reported:
            continue
        if is_builtin_indicator(*indicator):
            continue  # built-in constraint predicates carry their own signatures
        if goal.functor in ctx.pred_names:
            continue  # declared at another arity: TLP202's business
        reported.add(indicator)
        name, arity = indicator
        fixit = _declaration_fixit(ctx, indicator)
        ctx.report(
            check_undeclared_predicates._rule,
            f"no PRED declaration for {name}/{arity}: declare its "
            f"argument types before using it",
            owner.position,
            fixits=(fixit,),
        )


def _declaration_fixit(ctx: LintContext, indicator: Tuple[str, int]) -> FixIt:
    """The TLP201 fix-it: the *reconstructed* declaration when the
    success-set inference produced a checker-validated one for this
    predicate, else the generic placeholder."""
    inference = ctx.inference
    if inference is not None:
        reconstruction = inference.reconstructions().get(indicator)
        if reconstruction is not None and reconstruction.defined:
            if reconstruction.validated:
                return FixIt(
                    f"declare `{reconstruction.line}` (inferred from the "
                    f"predicate's clauses and accepted by the checker)",
                    replacement=reconstruction.line,
                )
            return FixIt(
                f"declare it; the inferred success set suggests "
                f"`{reconstruction.line}` as a starting point",
                replacement=reconstruction.line,
            )
    name, arity = indicator
    placeholder = ", ".join(f"T{i + 1}" for i in range(arity))
    suggestion = f"PRED {name}({placeholder})." if arity else f"PRED {name}."
    return FixIt(f"add `{suggestion}` with the intended types")


@register(
    "TLP202",
    "arity-mismatch",
    Severity.ERROR,
    "symbol or predicate used with an arity different from its "
    "declaration (or used at several arities)",
    "§2 (fixed-arity alphabets F, T, P)",
)
def check_arity_mismatches(ctx: LintContext) -> None:
    for name in sorted(set(ctx.func_decls) | set(ctx.type_decls)):
        observed = ctx.arities.get(name, set())
        if len(observed) > 1:
            position = ctx.func_decls.get(name) or ctx.type_decls.get(name)
            ctx.report(
                check_arity_mismatches._rule,
                f"symbol {name} is used with multiple arities "
                f"{sorted(observed)}: every symbol has one fixed arity",
                position,
            )
    reported: Set[Tuple[str, int]] = set()
    for owner, goal, _is_head in ctx.predicate_goals():
        indicator = goal.indicator
        if indicator in ctx.pred_decls or indicator in reported:
            continue
        declared = ctx.pred_names.get(goal.functor)
        if not declared:
            continue  # fully undeclared: TLP201's business
        reported.add(indicator)
        arities = ", ".join(str(a) for a in sorted(set(declared)))
        ctx.report(
            check_arity_mismatches._rule,
            f"predicate {goal.functor} called with arity "
            f"{len(goal.args)} but declared with arity {arities}",
            owner.position,
        )


def _variable_occurrences(item) -> Counter:
    """Occurrence counts of every variable in a clause or query."""
    counts: Counter = Counter()
    atoms = (
        (item.head,) + item.body if isinstance(item, ClauseDecl) else item.body
    )
    for atom in atoms:
        for arg in atom.args:
            for sub in subterms(arg):
                if isinstance(sub, Var):
                    counts[sub] += 1
    return counts


@register(
    "TLP203",
    "singleton-variable",
    Severity.WARNING,
    "variable occurs exactly once in its clause: likely a typo "
    "(prefix with _ to mark it intentional)",
    "lint hygiene (standard Prolog practice)",
)
def check_singleton_variables(ctx: LintContext) -> None:
    for item in ctx.clause_items + ctx.query_items:
        what = "clause" if isinstance(item, ClauseDecl) else "query"
        for var, count in sorted(
            _variable_occurrences(item).items(), key=lambda pair: pair[0].name
        ):
            if count != 1 or var.name.startswith("_"):
                continue
            ctx.report(
                check_singleton_variables._rule,
                f"singleton variable {var.name} in this {what}: it is "
                f"never constrained elsewhere",
                item.position,
                fixits=(
                    FixIt(
                        f"rename {var.name} to _{var.name} if the "
                        f"single occurrence is intentional",
                        replacement=f"_{var.name}",
                    ),
                ),
            )


@register(
    "TLP204",
    "undeclared-symbol",
    Severity.ERROR,
    "object term uses a symbol that is not a declared function symbol",
    "§2, Definition 1 (object terms range over F only)",
)
def check_undeclared_symbols(ctx: LintContext) -> None:
    reported: Set[str] = set()

    def check_object(term: Term, owner) -> None:
        for sub in subterms(term):
            if not isinstance(sub, Struct) or sub.functor in reported:
                continue
            if ctx.is_func_name(sub.functor):
                continue
            reported.add(sub.functor)
            if ctx.is_type_name(sub.functor):
                ctx.report(
                    check_undeclared_symbols._rule,
                    f"type constructor {sub.functor} used in an object "
                    f"term ({pretty(term)}): object terms range over "
                    f"function symbols only",
                    owner.position,
                )
            else:
                ctx.report(
                    check_undeclared_symbols._rule,
                    f"symbol {sub.functor} is not a declared function "
                    f"symbol",
                    owner.position,
                    fixits=(
                        FixIt(
                            f"declare it with `FUNC {sub.functor}.`",
                            replacement=f"FUNC {sub.functor}.",
                        ),
                    ),
                )

    def check_type_term(term: Term, owner) -> None:
        for sub in subterms(term):
            if not isinstance(sub, Struct) or sub.functor in reported:
                continue
            if ctx.is_func_name(sub.functor) or ctx.is_type_name(sub.functor):
                continue
            reported.add(sub.functor)
            ctx.report(
                check_undeclared_symbols._rule,
                f"symbol {sub.functor} in type {pretty(term)} is neither "
                f"a declared function symbol nor a type constructor",
                owner.position,
                fixits=(
                    FixIt(
                        f"declare it with `TYPE {sub.functor}.` (or "
                        f"`FUNC {sub.functor}.`)",
                        replacement=f"TYPE {sub.functor}.",
                    ),
                ),
            )

    for item in ctx.clause_items + ctx.query_items:
        atoms = (
            (item.head,) + item.body
            if isinstance(item, ClauseDecl)
            else item.body
        )
        for atom in atoms:
            if _is_constraint_goal(atom) and atom is not getattr(item, "head", None):
                term_side, type_side = atom.args
                check_object(term_side, item)
                check_type_term(type_side, item)
                continue
            for arg in atom.args:
                check_object(arg, item)
