"""Shared state for one lint run over one parsed source file.

The context is built **once** per file and handed to every rule:
declaration indices (who declared what, where), inferred arities, the
item lists in source order, and — lazily — the semantic objects the
dataflow passes need (a :class:`~repro.core.declarations.ConstraintSet`
and a :class:`~repro.core.subtype.SubtypeEngine`).  The lazy pieces are
*best-effort*: the linter runs before the type checker, on programs the
checker may reject, so every construction failure degrades to "that
analysis is skipped" rather than an exception.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..checker.diagnostics import DiagnosticBag, FixIt, Severity
from ..core.declarations import ConstraintSet, DeclarationError, SubtypeConstraint, SymbolTable
from ..core.restrictions import is_guarded, is_uniform_polymorphic
from ..core.subtype import SubtypeEngine
from ..lang.ast import (
    ClauseDecl,
    ConstraintDecl,
    FuncDecl,
    ModeDecl,
    Position,
    PredDecl,
    QueryDecl,
    SourceFile,
    TypeDecl,
)
from ..terms.pretty import UNION_TYPE
from ..terms.term import Struct, Term, Var, subterms

__all__ = ["LintContext"]

_Indicator = Tuple[str, int]


def _is_constraint_goal(goal: Struct) -> bool:
    """Section 7 typed-unification goals ``':'(t, τ)`` (not predicates)."""
    return goal.functor == ":" and len(goal.args) == 2


@dataclass
class LintContext:
    """Everything a rule's check function can see."""

    source: SourceFile
    path: str = "<text>"
    bag: DiagnosticBag = field(default_factory=DiagnosticBag)

    # Declaration indices, filled by ``build``.
    func_decls: Dict[str, Position] = field(default_factory=dict)
    type_decls: Dict[str, Position] = field(default_factory=dict)
    pred_decls: Dict[_Indicator, PredDecl] = field(default_factory=dict)
    pred_names: Dict[str, List[int]] = field(default_factory=dict)
    mode_decls: Dict[_Indicator, ModeDecl] = field(default_factory=dict)
    #: Indicators whose entry in ``mode_decls`` was synthesized from the
    #: §7 inline form ``PRED p(OUT nat).`` — fix-its that rewrite the
    #: declaration must rewrite the PRED line, not emit a MODE line.
    inline_mode_decls: Set[_Indicator] = field(default_factory=set)
    arities: Dict[str, Set[int]] = field(default_factory=dict)
    constraint_items: List[ConstraintDecl] = field(default_factory=list)
    clause_items: List[ClauseDecl] = field(default_factory=list)
    query_items: List[QueryDecl] = field(default_factory=list)

    # Lazy semantic layer (None until requested, False-y on failure).
    _constraints: Optional[ConstraintSet] = field(default=None, repr=False)
    _constraints_failed: bool = field(default=False, repr=False)
    _engine: Optional[SubtypeEngine] = field(default=None, repr=False)
    _engine_failed: bool = field(default=False, repr=False)
    _inference: Optional[object] = field(default=None, repr=False)
    _inference_failed: bool = field(default=False, repr=False)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, source: SourceFile, path: str = "<text>") -> "LintContext":
        ctx = cls(source=source, path=path)
        for item in source.items:
            if isinstance(item, FuncDecl):
                for name in item.names:
                    ctx.func_decls.setdefault(name, item.position)
            elif isinstance(item, TypeDecl):
                for name in item.names:
                    ctx.type_decls.setdefault(name, item.position)
            elif isinstance(item, PredDecl):
                indicator = item.head.indicator
                ctx.pred_decls.setdefault(indicator, item)
                ctx.pred_names.setdefault(item.head.functor, []).append(
                    len(item.head.args)
                )
                if item.modes is not None:
                    # Inline modes are sugar for a MODE declaration; the
                    # synthesized item points at the PRED line.
                    if indicator not in ctx.mode_decls:
                        ctx.mode_decls[indicator] = ModeDecl(
                            item.head.functor, item.modes, item.position
                        )
                        ctx.inline_mode_decls.add(indicator)
            elif isinstance(item, ModeDecl):
                ctx.mode_decls.setdefault((item.name, len(item.modes)), item)
            elif isinstance(item, ConstraintDecl):
                ctx.constraint_items.append(item)
            elif isinstance(item, ClauseDecl):
                ctx.clause_items.append(item)
            elif isinstance(item, QueryDecl):
                ctx.query_items.append(item)
        ctx._record_arities()
        return ctx

    def _record_arities(self) -> None:
        def record(term: Term) -> None:
            for sub in subterms(term):
                if isinstance(sub, Struct):
                    self.arities.setdefault(sub.functor, set()).add(len(sub.args))

        for item in self.constraint_items:
            record(item.lhs)
            record(item.rhs)
        for indicator, pred in self.pred_decls.items():
            for arg in pred.head.args:
                record(arg)
        for clause in self.clause_items:
            for atom in (clause.head,) + clause.body:
                for arg in atom.args:
                    record(arg)
        for query in self.query_items:
            for goal in query.body:
                for arg in goal.args:
                    record(arg)

    # -- views ---------------------------------------------------------------

    def is_type_name(self, name: str) -> bool:
        return name in self.type_decls or name == UNION_TYPE

    def is_func_name(self, name: str) -> bool:
        return name in self.func_decls

    def predicate_goals(self):
        """Every (owner item, goal atom, is_head) triple in source order,
        skipping Section 7 ``':'`` constraint goals."""
        for clause in self.clause_items:
            yield clause, clause.head, True
            for goal in clause.body:
                if not _is_constraint_goal(goal):
                    yield clause, goal, False
        for query in self.query_items:
            for goal in query.body:
                if not _is_constraint_goal(goal):
                    yield query, goal, False

    # -- the lazy semantic layer ---------------------------------------------

    @property
    def constraints(self) -> Optional[ConstraintSet]:
        """A best-effort constraint set (None when it cannot be built).

        Malformed constraints are *skipped* (the checker reports them);
        the set carries everything well-formed so downstream analyses
        see as much of the program as possible.
        """
        if self._constraints is None and not self._constraints_failed:
            try:
                symbols = SymbolTable()
                for name, position in self.func_decls.items():
                    observed = self.arities.get(name, set())
                    if len(observed) > 1:
                        continue
                    symbols.declare_function(
                        name, next(iter(observed)) if observed else 0
                    )
                for name, position in self.type_decls.items():
                    observed = self.arities.get(name, set())
                    if len(observed) > 1:
                        continue
                    symbols.declare_type_constructor(
                        name, next(iter(observed)) if observed else 0
                    )
                constraints = ConstraintSet(symbols)
                for item in self.constraint_items:
                    if not isinstance(item.lhs, Struct):
                        continue
                    try:
                        constraints.add(SubtypeConstraint(item.lhs, item.rhs))
                    except DeclarationError:
                        continue
                self._constraints = constraints
            except DeclarationError:
                self._constraints_failed = True
        return self._constraints

    @property
    def engine(self) -> Optional[SubtypeEngine]:
        """A deterministic subtype engine, or None when the constraint
        set is absent, non-uniform, or unguarded (the engine's
        termination guarantee — Theorems 1-3 — needs both)."""
        if self._engine is None and not self._engine_failed:
            constraints = self.constraints
            if (
                constraints is None
                or not is_uniform_polymorphic(constraints)
                or not is_guarded(constraints)
            ):
                self._engine_failed = True
                return None
            self._engine = SubtypeEngine(constraints, validate=False)
        return self._engine

    @property
    def inference(self):
        """Whole-file success-set inference
        (:class:`~repro.analysis.absint.ProgramInference`), or None when
        the engine is unavailable or the fixpoint cannot be built.  Like
        the other lazy pieces this is best-effort: the TLP4xx rules and
        the reconstruction-backed fix-its all degrade to silence."""
        if self._inference is None and not self._inference_failed:
            if self.engine is None:
                self._inference_failed = True
                return None
            from .absint import ProgramInference

            try:
                self._inference = ProgramInference.from_context(self)
            except (DeclarationError, RecursionError, ValueError):
                self._inference_failed = True
        return self._inference

    # -- reporting -----------------------------------------------------------

    def report(
        self,
        rule,
        message: str,
        position: Optional[Position] = None,
        fixits: Tuple[FixIt, ...] = (),
    ) -> None:
        """Emit one finding under ``rule``'s code and severity."""
        if rule.severity == Severity.ERROR:
            self.bag.error(message, position, code=rule.code, fixits=fixits)
        elif rule.severity == Severity.WARNING:
            self.bag.warning(message, position, code=rule.code, fixits=fixits)
        else:
            self.bag.note(message, position, code=rule.code, fixits=fixits)
