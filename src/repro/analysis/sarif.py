"""SARIF 2.1.0 output for ``tlp-lint`` (CI code-scanning upload format.)

One *run* per invocation: the tool driver advertises every enabled rule
(stable id, description, default level), and each diagnostic becomes a
``result`` with ``ruleId``, ``level``, message text, a physical location
whose region carries the parser's item span (start *and* end), and the
machine-applicable fix-its as ``fixes`` descriptions.

The emitted document sticks to the subset of the SARIF 2.1.0 schema that
GitHub code scanning consumes; ``tests/analysis/test_sarif.py`` validates
the structure against a vendored schema fragment.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..checker.diagnostics import Diagnostic, Severity
from .registry import ANALYZER_VERSION, LintConfig, RuleRegistry, SYNTAX_ERROR_CODE

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "note",
}


def _rule_descriptor(rule) -> Dict[str, Any]:
    return {
        "id": rule.code,
        "name": rule.slug,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": f"{rule.summary} [{rule.paper}]"},
        "defaultConfiguration": {"level": _LEVELS.get(rule.severity, "warning")},
    }


def _syntax_rule_descriptor() -> Dict[str, Any]:
    return {
        "id": SYNTAX_ERROR_CODE,
        "name": "syntax-error",
        "shortDescription": {"text": "the file does not parse"},
        "fullDescription": {
            "text": "lexical or syntax error reported by the parser"
        },
        "defaultConfiguration": {"level": "error"},
    }


def _region(diagnostic: Diagnostic) -> Optional[Dict[str, int]]:
    position = diagnostic.position
    if position is None:
        return None
    region: Dict[str, int] = {
        "startLine": position.line,
        "startColumn": position.column,
    }
    if position.end_line is not None and position.end_column is not None:
        region["endLine"] = position.end_line
        region["endColumn"] = position.end_column
    return region


def _result(
    path: str, diagnostic: Diagnostic, rule_index: Dict[str, int]
) -> Dict[str, Any]:
    location: Dict[str, Any] = {
        "physicalLocation": {"artifactLocation": {"uri": path}}
    }
    region = _region(diagnostic)
    if region is not None:
        location["physicalLocation"]["region"] = region
    result: Dict[str, Any] = {
        "ruleId": diagnostic.code,
        "level": _LEVELS.get(diagnostic.severity, "warning"),
        "message": {"text": diagnostic.message},
        "locations": [location],
    }
    index = rule_index.get(diagnostic.code)
    if index is not None:
        result["ruleIndex"] = index
    if diagnostic.fixits:
        result["fixes"] = [
            {"description": {"text": fixit.description}}
            for fixit in diagnostic.fixits
        ]
    return result


def to_sarif(
    findings: Sequence[Tuple[str, Diagnostic]],
    registry: RuleRegistry,
    config: Optional[LintConfig] = None,
) -> Dict[str, Any]:
    """Build the SARIF document for ``(path, diagnostic)`` findings."""
    config = config or LintConfig()
    rules: List[Dict[str, Any]] = [_syntax_rule_descriptor()]
    rules.extend(_rule_descriptor(rule) for rule in registry.selected(config))
    rule_index = {descriptor["id"]: i for i, descriptor in enumerate(rules)}
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "tlp-lint",
                        "informationUri": (
                            "https://github.com/paper-repro/tlp"
                        ),
                        "version": ANALYZER_VERSION,
                        "rules": rules,
                    }
                },
                "results": [
                    _result(path, diagnostic, rule_index)
                    for path, diagnostic in findings
                ],
            }
        ],
    }
