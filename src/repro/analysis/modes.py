"""Declared-mode analyses: the ``TLP5xx`` rule family (§7, after [DH88]).

Where :mod:`repro.analysis.flow` (``TLP301``) *infers* producer
positions to find suspicious supertype→subtype flows, this family takes
``MODE`` declarations (standalone ``MODE p(IN, OUT).`` lines or the §7
inline form ``PRED p(OUT nat).``) as ground truth and checks the
program against them:

* ``TLP501`` — the declarations themselves are inconsistent: a ``MODE``
  whose arity matches no ``PRED``, a ``MODE`` for an undeclared
  predicate, or two declarations that disagree;
* ``TLP502`` — an ill-moded call site: a body goal consumes a variable
  against the declared flow direction (produced at a strict supertype
  of the consumer's ``IN`` type, or consumed before any production).
  Supertype flows carry a machine-applicable fix-it that inserts the §7
  filter predicate (``int2nat``-style) and renames the consuming
  occurrence;
* ``TLP503`` — declared modes contradict the clause dataflow: a head
  ``OUT`` position its clause never produces (or produces at a type
  that cannot flow out).  The unproduced case carries a fix-it that
  flips the declaration to ``IN``;
* ``TLP504`` — the clause is not well-moded: the strict Definition 16
  check fails *and* the directional [DH88]/Smaus–Fages–Deransart
  fallback (:class:`~repro.core.moded_welltyped.ModedWellTypedChecker`)
  rejects it too.  When the rejection is a missing ``MODE`` on a
  predicate carrying a shared variable, the fix-it inserts the inferred
  declaration;
* ``TLP505`` — a declared ``OUT`` position that is **never produced**:
  the predicate has no clauses at that arity, so nothing can ever bind
  it.  For uncalled predicates the fix-it flips the claim to ``IN``.

The whole family is gated on the file actually declaring modes —
unmoded programs are ``TLP301``'s territory and produce no ``TLP5xx``
findings at all.  Rules degrade to silence when the semantic layer
(constraint set, subtype engine, predicate types) cannot be built; the
TLP1xx/2xx rules report those problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from ..checker.diagnostics import FixIt, Severity
from ..core.declarations import DeclarationError
from ..core.modes import (
    FLOW,
    IN,
    OUT,
    UNPRODUCED,
    ModeChecker,
    ModeEnv,
    ModeReport,
    ModeViolation,
)
from ..core.moded_welltyped import ModedWellTypedChecker
from ..core.predicate_types import PredicateTypeEnv
from ..lang.ast import ClauseDecl, ModeDecl, PredDecl, QueryDecl
from ..lp.clause import Clause, Query
from ..terms.pretty import pretty
from ..terms.term import Struct, Term, Var, variables_of
from .context import LintContext, _is_constraint_goal
from .flow import ModeInference, _filter_name, _suffix
from .registry import register

_Indicator = Tuple[str, int]
_Owner = Union[ClauseDecl, QueryDecl]


# -- the shared semantic world (built once per lint run) ---------------------


@dataclass
class _ModeWorld:
    """Everything the TLP5xx rules share: the typed/moded checkers over
    the lint context's best-effort constraint set, the pure (declaration
    -blind) mode inference, and the per-item mode reports."""

    predicate_types: PredicateTypeEnv
    mode_env: ModeEnv
    checker: ModeChecker
    moded: ModedWellTypedChecker
    pure: ModeInference
    reports: Dict[int, ModeReport] = field(default_factory=dict)
    flagged: Set[int] = field(default_factory=set)  # items with a TLP502/503 finding


def _world(ctx: LintContext) -> Optional[_ModeWorld]:
    cached = ctx.__dict__.get("_tlp5_world", "unset")
    if cached != "unset":
        return cached
    world: Optional[_ModeWorld] = None
    constraints = ctx.constraints
    engine = ctx.engine
    if ctx.mode_decls and constraints is not None and engine is not None:
        predicate_types = PredicateTypeEnv(constraints)
        for pred in ctx.pred_decls.values():
            try:
                predicate_types.declare(pred.head)
            except DeclarationError:
                continue  # TLP2xx reports the malformed declaration
        mode_env = ModeEnv()
        for (name, _), decl in sorted(ctx.mode_decls.items()):
            try:
                mode_env.declare(name, decl.modes)
            except DeclarationError:
                continue  # conflicting duplicates: TLP501 reports them
        world = _ModeWorld(
            predicate_types,
            mode_env,
            ModeChecker(constraints, predicate_types, mode_env, engine=engine),
            ModedWellTypedChecker(
                constraints, predicate_types, mode_env, engine=engine
            ),
            ModeInference(ctx, use_declared=False),
        )
    ctx.__dict__["_tlp5_world"] = world
    return world


def _owners(ctx: LintContext) -> List[_Owner]:
    return list(ctx.clause_items) + list(ctx.query_items)


def _goals_of(owner: _Owner) -> Tuple[Struct, ...]:
    if isinstance(owner, ClauseDecl):
        return (owner.head,) + owner.body
    return owner.body


def _checkable(world: _ModeWorld, owner: _Owner) -> bool:
    """Mode semantics are defined only when every atom has a declared
    predicate type of matching arity and no ':' constraint goals opt
    the item out of the static system (mirrors the frontend)."""
    for goal in _goals_of(owner):
        if _is_constraint_goal(goal):
            return False
        if not world.predicate_types.has_type_for(goal):
            return False
        declared = world.predicate_types.type_of(goal)
        if len(declared.args) != len(goal.args):
            return False
    return True


def _report_for(world: _ModeWorld, owner: _Owner) -> ModeReport:
    key = id(owner)
    report = world.reports.get(key)
    if report is None:
        if isinstance(owner, ClauseDecl):
            report = world.checker.check_clause(Clause(owner.head, owner.body))
        else:
            report = world.checker.check_query(Query(owner.body))
        world.reports[key] = report
    return report


# -- rendering helpers for machine fix-its -----------------------------------


def _render_goals(goals) -> str:
    return ", ".join(pretty(goal) for goal in goals)


def _render_owner(owner: _Owner) -> str:
    if isinstance(owner, QueryDecl):
        return f":- {_render_goals(owner.body)}."
    if owner.body:
        return f"{pretty(owner.head)} :- {_render_goals(owner.body)}."
    return f"{pretty(owner.head)}."


def _render_mode_decl(ctx: LintContext, indicator: _Indicator, modes) -> str:
    """The rewritten declaration: a ``MODE`` line, or the whole inline
    ``PRED`` line when the modes came from the §7 inline form."""
    name, _ = indicator
    if indicator in ctx.inline_mode_decls:
        pred = ctx.pred_decls.get(indicator)
        if pred is not None:
            args = ", ".join(
                f"{mode} {pretty(arg)}" for mode, arg in zip(modes, pred.head.args)
            )
            return f"PRED {name}({args})."
    return f"MODE {name}({', '.join(modes)})."


def _fresh_name(owner: _Owner, variable: Var, tau: Term) -> str:
    taken: Set[str] = set()
    for goal in _goals_of(owner):
        taken |= {var.name for var in variables_of(goal)}
    name = f"{variable.name}_{_suffix(tau)}"
    while name in taken:
        name += "_"
    return name


def _rename(term: Term, variable: Var, fresh: Var) -> Term:
    if isinstance(term, Var):
        return fresh if term == variable else term
    if isinstance(term, Struct):
        return Struct(
            term.functor, tuple(_rename(arg, variable, fresh) for arg in term.args)
        )
    return term


def _inferred_modes(world: _ModeWorld, indicator: _Indicator) -> Tuple[str, ...]:
    """The declaration the pure dataflow supports: OUT where every
    clause grounds the position from its body, IN elsewhere."""
    _, arity = indicator
    out = world.pure.out_positions.get(indicator, set())
    return tuple(OUT if position in out else IN for position in range(arity))


def _filter_rewrite(owner: _Owner, violation: ModeViolation) -> Optional[str]:
    """The owner item rewritten with the §7 filter inserted before the
    violating consumer and the consumed occurrence renamed."""
    if violation.produced_type is None or violation.consumer_type is None:
        return None
    goals = owner.body
    index = next((i for i, goal in enumerate(goals) if goal is violation.atom), None)
    if index is None:
        return None
    fresh = Var(_fresh_name(owner, violation.variable, violation.consumer_type))
    filter_goal = Struct(
        _filter_name(violation.produced_type, violation.consumer_type),
        (violation.variable, fresh),
    )
    consumer = violation.atom
    new_consumer = Struct(
        consumer.functor,
        tuple(
            _rename(arg, violation.variable, fresh)
            if position == violation.position
            else arg
            for position, arg in enumerate(consumer.args)
        ),
    )
    new_goals = list(goals)
    new_goals[index] = new_consumer
    new_goals.insert(index, filter_goal)
    if isinstance(owner, QueryDecl):
        return f":- {_render_goals(new_goals)}."
    return f"{pretty(owner.head)} :- {_render_goals(new_goals)}."


# -- TLP501: the declarations themselves -------------------------------------


@register(
    "TLP501",
    "mode-declaration-mismatch",
    Severity.ERROR,
    "a MODE declaration matches no PRED declaration (wrong arity or "
    "undeclared predicate) or conflicts with an earlier mode declaration",
    "§7 (modes, after [DH88])",
)
def check_mode_declarations(ctx: LintContext) -> None:
    if not ctx.mode_decls:
        return
    world = _world(ctx)
    seen: Dict[_Indicator, Tuple[Tuple[str, ...], object]] = {}
    for item in ctx.source.items:
        if isinstance(item, ModeDecl):
            name, modes, inline = item.name, item.modes, False
        elif isinstance(item, PredDecl) and item.modes is not None:
            name, modes, inline = item.head.functor, item.modes, True
        else:
            continue
        indicator = (name, len(modes))
        first = seen.get(indicator)
        if first is not None and first[0] != modes:
            fixits: Tuple[FixIt, ...] = ()
            if item.position.has_span:
                replacement = _render_mode_decl(ctx, indicator, first[0])
                # The later declaration loses; rewriting an inline PRED
                # line keeps its types and only changes the modes.
                if inline:
                    pred_args = ", ".join(
                        f"{mode} {pretty(arg)}"
                        for mode, arg in zip(first[0], item.head.args)
                    )
                    replacement = f"PRED {name}({pred_args})."
                fixits = (
                    FixIt(
                        f"restate the earlier declaration "
                        f"`{name}({', '.join(first[0])})`",
                        replacement,
                        item.position,
                    ),
                )
            ctx.report(
                check_mode_declarations._rule,
                f"conflicting mode declaration for {name}/{len(modes)}: "
                f"{', '.join(modes)} here but {', '.join(first[0])} earlier",
                item.position,
                fixits=fixits,
            )
            continue
        seen.setdefault(indicator, (modes, item))
        if inline:
            continue  # the inline form is arity-correct by construction
        declared_arities = set(ctx.pred_names.get(name, []))
        if not declared_arities:
            ctx.report(
                check_mode_declarations._rule,
                f"MODE declaration for {name}/{len(modes)} but no PRED "
                f"declaration for {name}",
                item.position,
                fixits=(
                    FixIt(
                        f"declare `PRED {name}(...).` with {len(modes)} "
                        f"argument types, or remove the MODE line"
                    ),
                ),
            )
            continue
        if len(modes) in declared_arities:
            continue
        fixits = ()
        if len(declared_arities) == 1 and item.position.has_span:
            arity = next(iter(declared_arities))
            target = (name, arity)
            if world is not None:
                inferred = _inferred_modes(world, target)
            else:
                inferred = tuple(IN for _ in range(arity))
            adjusted = tuple(
                modes[position] if position < len(modes) else inferred[position]
                for position in range(arity)
            )
            fixits = (
                FixIt(
                    f"match the declared arity: `MODE {name}"
                    f"({', '.join(adjusted)}).`",
                    f"MODE {name}({', '.join(adjusted)}).",
                    item.position,
                ),
            )
        ctx.report(
            check_mode_declarations._rule,
            f"MODE declaration for {name}/{len(modes)} does not match the "
            f"declared arity "
            f"{'/'.join(str(a) for a in sorted(declared_arities))} of PRED "
            f"{name}",
            item.position,
            fixits=fixits,
        )


# -- TLP502: ill-moded call sites --------------------------------------------


@register(
    "TLP502",
    "ill-moded-call",
    Severity.ERROR,
    "a call site consumes a variable against the declared flow direction "
    "(supertype production into a subtype IN position, or consumption "
    "before any production)",
    "§7 (modes, after [DH88])",
)
def check_ill_moded_calls(ctx: LintContext) -> None:
    world = _world(ctx)
    if world is None:
        return
    for owner in _owners(ctx):
        if not _checkable(world, owner):
            continue
        for violation in _report_for(world, owner).violations:
            if violation.at_head:
                continue  # the head's OUT epilogue is TLP503's
            fixits: Tuple[FixIt, ...] = ()
            if violation.kind == FLOW:
                sigma = pretty(violation.produced_type)
                tau = pretty(violation.consumer_type)
                filter_name = _filter_name(
                    violation.produced_type, violation.consumer_type
                )
                description = (
                    f"insert the filter goal `{filter_name}"
                    f"({violation.variable.name}, ...)` before "
                    f"{pretty(violation.atom)} and consume the narrowed "
                    f"variable instead (declare `PRED {filter_name}"
                    f"({sigma}, {tau}).` with `MODE {filter_name}(IN, OUT).` "
                    f"if it does not exist)"
                )
                rewrite = _filter_rewrite(owner, violation)
                if rewrite is not None and owner.position.has_span:
                    fixits = (FixIt(description, rewrite, owner.position),)
                else:
                    fixits = (FixIt(description),)
            else:
                fixits = (
                    FixIt(
                        f"produce {violation.variable.name} before "
                        f"{pretty(violation.atom)} (reorder the body or add "
                        f"a producing goal)"
                    ),
                )
            world.flagged.add(id(owner))
            ctx.report(
                check_ill_moded_calls._rule,
                f"ill-moded call: {violation}",
                owner.position,
                fixits=fixits,
            )


# -- TLP503: declared modes vs the clause dataflow ---------------------------


@register(
    "TLP503",
    "mode-contradicts-dataflow",
    Severity.WARNING,
    "a head OUT position is never produced by its clause (or is produced "
    "at a type that cannot flow out) — the declaration contradicts the "
    "dataflow",
    "§7 (modes, after [DH88])",
)
def check_declaration_vs_dataflow(ctx: LintContext) -> None:
    world = _world(ctx)
    if world is None:
        return
    for owner in _owners(ctx):
        if not isinstance(owner, ClauseDecl) or not _checkable(world, owner):
            continue
        for violation in _report_for(world, owner).violations:
            if not violation.at_head:
                continue
            indicator = owner.head.indicator
            decl = ctx.mode_decls.get(indicator)
            fixits: Tuple[FixIt, ...] = ()
            if (
                violation.kind == UNPRODUCED
                and decl is not None
                and decl.position.has_span
            ):
                flipped = tuple(
                    IN if position == violation.position else mode
                    for position, mode in enumerate(decl.modes)
                )
                fixits = (
                    FixIt(
                        f"declare the position IN instead: "
                        f"`{_render_mode_decl(ctx, indicator, flipped)}`",
                        _render_mode_decl(ctx, indicator, flipped),
                        decl.position,
                    ),
                )
            world.flagged.add(id(owner))
            ctx.report(
                check_declaration_vs_dataflow._rule,
                f"declared modes contradict the clause dataflow: {violation}",
                owner.position,
                fixits=fixits,
            )


# -- TLP504: well-modedness (the [DH88] directional conditions) --------------


@register(
    "TLP504",
    "not-well-moded",
    Severity.ERROR,
    "the clause fails strict Definition 16 well-typedness and the "
    "directional (moded) fallback rejects it too",
    "§7 (modes; Smaus–Fages–Deransart subject-reduction conditions)",
)
def check_well_modedness(ctx: LintContext) -> None:
    world = _world(ctx)
    if world is None:
        return
    for owner in _owners(ctx):
        if id(owner) in world.flagged or not _checkable(world, owner):
            continue  # TLP502/503 already explain the failure
        if isinstance(owner, ClauseDecl):
            report = world.moded.check_clause(Clause(owner.head, owner.body))
        else:
            report = world.moded.check_query(Query(owner.body))
        if report.well_typed:
            continue
        fixits: Tuple[FixIt, ...] = ()
        missing = _missing_mode_indicators(world, owner)
        if missing and owner.position.has_span:
            lines = []
            for indicator in missing:
                inferred = _inferred_modes(world, indicator)
                lines.append(f"MODE {indicator[0]}({', '.join(inferred)}).")
            fixits = (
                FixIt(
                    "declare modes for the predicates carrying shared "
                    "variables: " + " ".join(f"`{line}`" for line in lines),
                    "\n".join(lines) + "\n" + _render_owner(owner),
                    owner.position,
                ),
            )
        ctx.report(
            check_well_modedness._rule,
            f"not well-moded: {_render_owner(owner)} — {report.reason}",
            owner.position,
            fixits=fixits,
        )


def _missing_mode_indicators(world: _ModeWorld, owner: _Owner) -> List[_Indicator]:
    """Predicates of ``owner`` that carry a shared (or repeated) variable
    but have no mode declaration — the directional fallback's
    precondition, recomputed so the fix-it need not parse reasons."""
    goals = _goals_of(owner)
    variable_atoms: Dict[Var, List[Struct]] = {}
    for goal in goals:
        for var in variables_of(goal):
            variable_atoms.setdefault(var, []).append(goal)
    missing: List[_Indicator] = []
    for var, touching in variable_atoms.items():
        multi_position = any(
            sum(1 for arg in atom.args for v in variables_of(arg) if v == var) > 1
            for atom in touching
        )
        if len(touching) <= 1 and not multi_position:
            continue
        for atom in touching:
            if world.mode_env.modes_of(atom) is not None:
                continue
            if atom.indicator not in missing:
                missing.append(atom.indicator)
    return missing


# -- TLP505: OUT positions nothing can ever produce --------------------------


@register(
    "TLP505",
    "out-never-produced",
    Severity.WARNING,
    "a predicate declares an OUT position but has no clauses at that "
    "arity — the position is never produced",
    "§7 (modes, after [DH88])",
)
def check_unproduced_out(ctx: LintContext) -> None:
    world = _world(ctx)
    if world is None:
        return
    defined: Set[_Indicator] = {
        clause.head.indicator for clause in ctx.clause_items
    }
    called: Set[_Indicator] = set()
    for owner in _owners(ctx):
        for goal in _goals_of(owner):
            if isinstance(owner, ClauseDecl) and goal is owner.head:
                continue
            if not _is_constraint_goal(goal):
                called.add(goal.indicator)
    for indicator, decl in sorted(ctx.mode_decls.items()):
        name, arity = indicator
        if indicator in defined or OUT not in decl.modes:
            continue
        if indicator not in ctx.pred_decls:
            continue  # TLP501 reports the dangling declaration
        out_positions = [
            position + 1 for position, mode in enumerate(decl.modes) if mode == OUT
        ]
        fixits: Tuple[FixIt, ...] = ()
        if indicator not in called and decl.position.has_span:
            all_in = tuple(IN for _ in decl.modes)
            fixits = (
                FixIt(
                    f"no caller relies on the OUT claim — declare "
                    f"`{_render_mode_decl(ctx, indicator, all_in)}` (or "
                    f"define clauses for {name}/{arity})",
                    _render_mode_decl(ctx, indicator, all_in),
                    decl.position,
                ),
            )
        else:
            fixits = (
                FixIt(
                    f"define clauses for {name}/{arity} that bind the OUT "
                    f"position(s), or declare them IN"
                ),
            )
        positions = ", ".join(str(p) for p in out_positions)
        ctx.report(
            check_unproduced_out._rule,
            f"{name}/{arity} declares OUT argument(s) {positions} but has "
            f"no clauses — the position is never produced",
            decl.position,
            fixits=fixits,
        )
