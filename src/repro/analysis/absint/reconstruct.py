"""Declaration reconstruction: ``PRED p(τ1,…,τn)`` from success sets.

For every predicate *defined but not declared* in a file, synthesize a
declaration candidate from its inferred success set and validate it with
the existing Definition 16 checker (:mod:`repro.core.welltyped`) — the
acceptance bar is not "describes the success set" but "makes every
clause of the predicate well-typed", which is strictly harder: a
success-set component can be ⊤ (``app``'s second argument succeeds on
anything) while well-typedness needs the agreement between positions
that the declared ``app(list(A), list(A), list(A))`` provides.

The search is deliberately small and deterministic:

1. **candidate 0** — the folded success tuple itself, display-renamed;
2. **candidate 1** (the *agreement repair*) — when the tuple mixes ⊤
   positions with exactly one distinct non-⊤ component, the ⊤ positions
   are replaced by *that same term object*, sharing its type variables
   across positions (``(list(A), ⊤, ⊤) → (list(A), list(A),
   list(A))``).  This is the move Definition 16 forces whenever one
   clause variable occurs in several head positions: their types must
   agree up to the rigid-variable unification, and a shared variable is
   the only way an open component survives it.

Each candidate is validated by checking the predicate's own clauses
under an environment holding the file's real declarations, the current
candidates for its undeclared defined predicates, and all-distinct-
variable ⊤ declarations for undeclared *undefined* predicates (an open
world cannot refute those).  The first validating candidate wins; if
none validates the folded tuple is kept with ``validated=False`` and
surfaces (TLP201's fix-it) fall back to a hedged wording.
"""

from __future__ import annotations

from dataclasses import dataclass
from string import ascii_uppercase
from typing import Dict, List, Optional, Tuple

from ...core.predicate_types import PredicateTypeEnv
from ...core.welltyped import WellTypedChecker
from ...lp.clause import Clause
from ...terms.pretty import pretty
from ...terms.term import Struct, Term, Var, variables_in_order
from .callgraph import Indicator, _is_constraint_goal
from .domain import canonical

__all__ = ["Reconstruction", "reconstruct_declarations", "render_declaration"]


def _display_rename(components: Tuple[Term, ...]) -> Tuple[Term, ...]:
    """Rename type variables to ``A, B, …`` across the whole tuple (in
    order of first appearance, preserving sharing between positions)."""
    carrier = Struct("$tuple", tuple(components))
    mapping: Dict[Var, Var] = {}
    for variable in variables_in_order(carrier):
        index = len(mapping)
        letters = ascii_uppercase[index % 26]
        suffix = "" if index < 26 else str(index // 26)
        mapping[variable] = Var(letters + suffix)

    def walk(term: Term) -> Term:
        if isinstance(term, Var):
            return mapping[term]
        if not term.args:
            return term
        return Struct(term.functor, tuple(walk(arg) for arg in term.args))

    return tuple(walk(component) for component in components)


def render_declaration(indicator: Indicator, components: Tuple[Term, ...]) -> str:
    """The concrete ``PRED …`` source line for a component tuple."""
    name, _arity = indicator
    renamed = _display_rename(components)
    return f"PRED {pretty(Struct(name, renamed))}."


@dataclass(frozen=True)
class Reconstruction:
    """One synthesized declaration and how far it got."""

    indicator: Indicator
    #: The declaration head as a term (``app(list(A), list(A), list(A))``).
    head: Struct
    #: True when the Definition 16 checker accepts every clause under it
    #: (vacuously true for open-world predicates with no clauses).
    validated: bool
    #: The ready-to-paste source line (``PRED app(list(A), …).``).
    line: str
    #: False for open-world predicates (called but not defined in the
    #: file): their tuple is all-⊤, not inferred from clauses.
    defined: bool = True


def _agreement_repair(components: Tuple[Term, ...]) -> Optional[Tuple[Term, ...]]:
    """Candidate 1 of the module docstring, or None when inapplicable."""
    open_positions = [
        index for index, c in enumerate(components) if isinstance(c, Var)
    ]
    closed = [c for c in components if not isinstance(c, Var)]
    if not open_positions or not closed:
        return None
    distinct: List[Term] = []
    for component in closed:
        if not any(canonical(component) == canonical(seen) for seen in distinct):
            distinct.append(component)
    if len(distinct) != 1:
        return None
    shared = distinct[0]
    return tuple(
        shared if index in open_positions else component
        for index, component in enumerate(components)
    )


def reconstruct_declarations(inference) -> Dict[Indicator, Reconstruction]:
    """Synthesize + validate declarations for every undeclared defined
    predicate of a :class:`~repro.analysis.absint.ProgramInference`."""
    # Open-world indicators: called somewhere but neither declared nor
    # defined — give them all-distinct-variable ⊤ declarations so the
    # checker has a predicate type for every body atom (and so a caller
    # pasting the reconstructed block gets a checkable file).
    mentioned = set()
    for clause in inference.clauses:
        for goal in clause.body:
            if not _is_constraint_goal(goal):
                mentioned.add(goal.indicator)
    for query in inference.queries:
        for goal in query.body:
            if not _is_constraint_goal(goal):
                mentioned.add(goal.indicator)
    unknown = [
        indicator
        for indicator in sorted(mentioned)
        if indicator not in inference.pred_decls
        and indicator not in inference.clauses_by_pred
    ]
    undeclared = sorted(
        indicator
        for indicator in inference.clauses_by_pred
        if indicator not in inference.pred_decls
    )
    if not undeclared and not unknown:
        return {}

    def candidates_for(indicator: Indicator) -> List[Tuple[Term, ...]]:
        success = inference.success[indicator]
        if success.bottom:
            # An empty success set constrains nothing; all-⊤ is the only
            # honest candidate.
            _name, arity = indicator
            return [tuple(Var(f"_B{i}") for i in range(arity))]
        out = [success.folded]
        repaired = _agreement_repair(success.folded)
        if repaired is not None:
            out.append(repaired)
        return out

    chosen: Dict[Indicator, Tuple[Term, ...]] = {
        indicator: candidates_for(indicator)[0] for indicator in undeclared
    }

    def build_environment() -> PredicateTypeEnv:
        environment = PredicateTypeEnv(inference.constraints)
        for declaration in inference.pred_decls.values():
            environment.declare(declaration.head)
        for indicator, components in chosen.items():
            name, _arity = indicator
            environment.declare(Struct(name, _display_rename(components)))
        for indicator in unknown:
            name, arity = indicator
            environment.declare(
                Struct(name, tuple(Var(f"_B{i}") for i in range(arity)))
            )
        return environment

    def validates(indicator: Indicator) -> bool:
        try:
            checker = WellTypedChecker(inference.constraints, build_environment())
        except Exception:
            return False
        for clause_decl in inference.clauses_by_pred[indicator]:
            body = tuple(
                goal for goal in clause_decl.body if not _is_constraint_goal(goal)
            )
            try:
                report = checker.check_clause(Clause(clause_decl.head, body))
            except Exception:
                return False
            if not report.well_typed:
                return False
        return True

    validated: Dict[Indicator, bool] = {}
    for indicator in undeclared:
        verdict = validates(indicator)
        if not verdict:
            for alternative in candidates_for(indicator)[1:]:
                chosen[indicator] = alternative
                verdict = validates(indicator)
                if verdict:
                    break
            if not verdict:
                chosen[indicator] = candidates_for(indicator)[0]
        validated[indicator] = verdict

    out: Dict[Indicator, Reconstruction] = {}
    for indicator in undeclared:
        name, _arity = indicator
        renamed = _display_rename(chosen[indicator])
        out[indicator] = Reconstruction(
            indicator=indicator,
            head=Struct(name, renamed),
            validated=validated[indicator],
            line=render_declaration(indicator, chosen[indicator]),
        )
    for indicator in unknown:
        name, arity = indicator
        components = tuple(Var(f"_B{i}") for i in range(arity))
        out[indicator] = Reconstruction(
            indicator=indicator,
            head=Struct(name, _display_rename(components)),
            validated=True,  # vacuous: no clauses to refute it
            line=render_declaration(indicator, components),
            defined=False,
        )
    return out
