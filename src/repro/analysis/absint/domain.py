"""The success-set type domain: abstract values in the paper's ``>=`` form.

An abstract value describes one predicate's *success set* — an
over-approximation of the argument tuples the predicate can succeed on —
using the paper's type language itself (Definition 1: function symbols
double as singleton type constructors, so every finite observation is
expressible, and the predefined union ``+`` joins observations that no
declared constructor covers).

Per argument position the domain keeps two views:

* **members** — a finite, canonically-renamed, subsumption-reduced set
  of type terms, one per distinct clause contribution (``{nil,
  cons(_A0, list(_A1))}``).  Members are what the TLP403/TLP404
  declaration comparisons consult: they are exact observations, so an
  "is any part of the success set inside the declared type" question has
  a false-positive-free answer.
* **folded** — the members generalized to a single type term: the
  *tightest* declared constructor that covers them all (``list(A)``
  above), else the ``+``-union of the members.  The folded view is what
  body-goal matching, reconstruction, and fix-its use: it is the
  rendering in the paper's own constraint form ``c(Ā) >= every member``.

⊥ (the empty success set — no clause instance can ever succeed) is
represented by the absence of a member tuple, and ⊤ by a free type
variable (every term is in the denotation of some type, so a free
variable constrains nothing).

Ordering and termination: joins only ever add members; the member count
per position is capped (overflow collapses the position to ⊤); widening
truncates members below a depth bound (subterms beyond it become fresh
variables, i.e. ⊤).  Canonical renaming makes α-equivalent members
syntactically equal, so the per-position state space is finite and every
ascending chain stabilizes.

Folding to a covering constructor ``c(H̄)`` with *free* holes is sound
because of the predefined union: if ``c(H)`` covers each member with
per-member hole instantiations, the single instantiation ``H := τ1 +
… + τk`` (the union of the per-member choices) covers them all — the
union constraints ``A + B >= A`` / ``A + B >= B`` lift each member's
derivation unchanged.  This is precisely the "name-based type union"
completion the paper's concluding remarks call for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.declarations import ConstraintSet
from ...core.subtype import SubtypeEngine
from ...terms.freeze import freeze
from ...terms.pretty import UNION_TYPE, pretty
from ...terms.term import Struct, Term, Var, fresh_variable

__all__ = ["SuccessSet", "TypeDomain", "canonical", "truncate_depth"]

#: Member-list cap per argument position; overflow widens to ⊤.
MAX_MEMBERS = 8

#: Depth bound applied by widening: subterms deeper than this become ⊤.
WIDEN_DEPTH = 4


def canonical(term: Term, stem: str = "_A") -> Term:
    """Rename variables to ``_A0, _A1, …`` in order of first appearance,
    so α-equivalent terms become syntactically equal (the join's dedupe
    and the fixpoint's change detection both rely on this)."""
    mapping: Dict[Var, Var] = {}

    def walk(node: Term) -> Term:
        if isinstance(node, Var):
            renamed = mapping.get(node)
            if renamed is None:
                renamed = Var(f"{stem}{len(mapping)}")
                mapping[node] = renamed
            return renamed
        if not node.args:
            return node
        return Struct(node.functor, tuple(walk(arg) for arg in node.args))

    return walk(term)


def truncate_depth(term: Term, bound: int) -> Term:
    """Replace subterms beyond ``bound`` with fresh variables (⊤) — the
    widening operator.  Always an over-approximation: a free variable's
    denotation includes every term."""
    if bound <= 0:
        return fresh_variable("_W")
    if isinstance(term, Var) or not term.args:
        return term
    return Struct(
        term.functor, tuple(truncate_depth(arg, bound - 1) for arg in term.args)
    )


def _share_variables(term: Term) -> Term:
    """Collapse all variables of ``term`` into one shared variable.

    Used by the fold test: checking ``c(H̄) >= member`` with the member's
    free variables frozen as *distinct* constants is too strong (a
    uniform constructor wants one element type), while one shared frozen
    constant asks exactly "is there a single hole instantiation for this
    member" — the union argument in the module docstring then combines
    the per-member instantiations.
    """
    shared = fresh_variable("_U")

    def walk(node: Term) -> Term:
        if isinstance(node, Var):
            return shared
        if not node.args:
            return node
        return Struct(node.functor, tuple(walk(arg) for arg in node.args))

    return walk(term)


@dataclass(frozen=True)
class SuccessSet:
    """The inferred abstract value for one defined predicate."""

    indicator: Tuple[str, int]
    #: Per-position member sets; empty tuple-of-tuples when ``bottom``.
    members: Tuple[Tuple[Term, ...], ...]
    #: Per-position folded view (the ``>=`` rendering's left sides).
    folded: Tuple[Term, ...]
    #: True when no clause instance can ever succeed (empty success set).
    bottom: bool = False
    #: True when widening (depth truncation or ⊤-collapse) fired.
    widened: bool = False

    def render(self) -> List[str]:
        """The paper-form rendering: one ``τ >= member`` line per
        member, grouped by position (used by ``:infer`` and tests)."""
        name, _arity = self.indicator
        if self.bottom:
            return [f"{name}: bottom (empty success set)"]
        lines: List[str] = []
        for position, (fold, members) in enumerate(zip(self.folded, self.members)):
            for member in members:
                lines.append(
                    f"{name}/arg{position + 1}: {pretty(fold)} >= {pretty(member)}"
                )
        return lines


class TypeDomain:
    """Join/fold/compare operations bound to one constraint set."""

    def __init__(self, constraints: ConstraintSet, engine: SubtypeEngine) -> None:
        self.constraints = constraints
        self.engine = engine

    # -- orderings -----------------------------------------------------------

    def subsumes(self, general: Term, specific: Term) -> bool:
        """``general ⪰ specific`` with the specific side frozen
        (Definition 5's ``more general`` on open type terms)."""
        return self.engine.more_general(general, specific)

    # -- joins ---------------------------------------------------------------

    def add_member(self, members: List[Term], new: Term) -> bool:
        """Join one contribution into a position's member list (mutated);
        returns True when the list changed.  Dedupe is subsumption-based
        and the list is capped: overflow collapses to ⊤."""
        new = canonical(new)
        for existing in members:
            if existing == new or self.subsumes(existing, new):
                return False
        survivors = [m for m in members if not self.subsumes(new, m)]
        survivors.append(new)
        if len(survivors) > MAX_MEMBERS:
            survivors = [Var("_A0")]  # ⊤, canonically named
        if survivors == members:
            return False
        members[:] = survivors
        return True

    def widen_members(self, members: List[Term], depth: int = WIDEN_DEPTH) -> bool:
        """Depth-truncate every member (mutating); True when changed."""
        truncated: List[Term] = []
        for member in members:
            candidate = canonical(truncate_depth(member, depth))
            if not any(
                candidate == kept or self.subsumes(kept, candidate)
                for kept in truncated
            ):
                truncated = [
                    kept for kept in truncated if not self.subsumes(candidate, kept)
                ]
                truncated.append(candidate)
        if truncated == members:
            return False
        members[:] = truncated
        return True

    # -- folding -------------------------------------------------------------

    def _covering_constructors(self, members: Sequence[Term]) -> List[Tuple[str, int]]:
        frozen = [freeze(_share_variables(member)) for member in members]
        covering: List[Tuple[str, int]] = []
        for name, arity in self.constraints.symbols.type_constructors.items():
            if name == UNION_TYPE:
                continue
            if all(self._constructor_covers(name, arity, f) for f in frozen):
                covering.append((name, arity))
        return covering

    def _constructor_covers(self, name: str, arity: int, frozen: Term) -> bool:
        candidate = Struct(name, tuple(fresh_variable("_H") for _ in range(arity)))
        return self.engine.holds(candidate, frozen)

    def _constructor_le(self, tighter: Tuple[str, int], looser: Tuple[str, int]) -> bool:
        """``looser(H̄) ⪰ tighter(Ū̄)`` with the tighter side frozen —
        the partial order used to pick a minimal covering constructor."""
        t_name, t_arity = tighter
        probe = Struct(t_name, tuple(fresh_variable("_U") for _ in range(t_arity)))
        l_name, l_arity = looser
        candidate = Struct(l_name, tuple(fresh_variable("_H") for _ in range(l_arity)))
        return self.engine.holds(candidate, freeze(_share_variables(probe)))

    def fold(self, members: Sequence[Term]) -> Optional[Term]:
        """Generalize a member set to a single type term (None for ⊥).

        Preference: a *minimal* declared constructor covering every
        member (free holes), else the single member itself, else the
        predefined ``+``-union of the members.  A free-variable member
        means ⊤ — the whole position folds to a fresh variable.
        """
        if not members:
            return None
        if any(isinstance(member, Var) for member in members):
            return fresh_variable("_S")
        covering = self._covering_constructors(members)
        if covering:
            # First declaration-order candidate with no strictly-tighter
            # covering alternative (elist beats list for {nil}).
            minimal = next(
                (
                    candidate
                    for candidate in covering
                    if not any(
                        other != candidate
                        and self._constructor_le(other, candidate)
                        and not self._constructor_le(candidate, other)
                        for other in covering
                    )
                ),
                covering[0],
            )
            name, arity = minimal
            return Struct(name, tuple(fresh_variable("_H") for _ in range(arity)))
        if len(members) == 1:
            return members[0]
        union: Term = members[0]
        for member in members[1:]:
            union = Struct(UNION_TYPE, (union, member))
        return union
