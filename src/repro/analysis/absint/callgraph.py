"""The predicate call graph and its strongly-connected components.

Whole-program success-set inference (see :mod:`.interpreter`) is a least
fixpoint per SCC of the call graph: a predicate's success set depends
only on the success sets of the predicates its clause bodies call, so
processing SCCs callee-first turns the global fixpoint into a sequence
of small local ones — non-recursive predicates are finished in a single
pass and only genuinely (mutually) recursive groups iterate.

Nodes are predicate indicators ``(name, arity)``; an edge ``p → q``
records that some clause of ``p`` calls ``q``.  Section 7 typed
unification goals ``t : τ`` are constraints, not calls, and do not
contribute edges.  :meth:`CallGraph.sccs` runs an iterative Tarjan — the
classic property that an SCC is emitted only after every SCC reachable
from it makes the output order exactly the callee-first order the
fixpoint needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ...lang.ast import ClauseDecl

__all__ = ["Indicator", "CallGraph"]

Indicator = Tuple[str, int]


def _is_constraint_goal(goal) -> bool:
    """Section 7 typed-unification goals ``':'(t, τ)`` are not calls."""
    return goal.functor == ":" and len(goal.args) == 2


class CallGraph:
    """A directed graph over predicate indicators."""

    def __init__(self) -> None:
        self._edges: Dict[Indicator, Set[Indicator]] = {}

    def add_node(self, node: Indicator) -> None:
        self._edges.setdefault(node, set())

    def add_edge(self, caller: Indicator, callee: Indicator) -> None:
        self.add_node(caller)
        self.add_node(callee)
        self._edges[caller].add(callee)

    @property
    def nodes(self) -> List[Indicator]:
        return sorted(self._edges)

    def callees(self, node: Indicator) -> Set[Indicator]:
        return set(self._edges.get(node, ()))

    @classmethod
    def from_clauses(cls, clauses: Iterable[ClauseDecl]) -> "CallGraph":
        """Build the graph of one file's program clauses."""
        graph = cls()
        for clause in clauses:
            caller = clause.head.indicator
            graph.add_node(caller)
            for goal in clause.body:
                if _is_constraint_goal(goal):
                    continue
                graph.add_edge(caller, goal.indicator)
        return graph

    def sccs(self) -> List[Tuple[Indicator, ...]]:
        """Strongly-connected components, callee-first (reverse
        topological order of the condensation).  Iterative Tarjan, so
        deep call chains cannot hit the Python recursion limit."""
        index: Dict[Indicator, int] = {}
        lowlink: Dict[Indicator, int] = {}
        on_stack: Set[Indicator] = set()
        stack: List[Indicator] = []
        components: List[Tuple[Indicator, ...]] = []
        counter = 0

        for root in self.nodes:
            if root in index:
                continue
            # Each work item is (node, iterator over remaining callees).
            work: List[Tuple[Indicator, List[Indicator]]] = [
                (root, sorted(self._edges[root]))
            ]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, callees = work[-1]
                advanced = False
                while callees:
                    callee = callees.pop()
                    if callee not in index:
                        index[callee] = lowlink[callee] = counter
                        counter += 1
                        stack.append(callee)
                        on_stack.add(callee)
                        work.append((callee, sorted(self._edges[callee])))
                        advanced = True
                        break
                    if callee in on_stack:
                        lowlink[node] = min(lowlink[node], index[callee])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: List[Indicator] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(tuple(sorted(component)))
        return components

    def recursive(self, component: Sequence[Indicator]) -> bool:
        """True when the component can reach itself (a self-loop or a
        multi-node cycle) — the only case the fixpoint must iterate."""
        members = set(component)
        if len(members) > 1:
            return True
        only = next(iter(members))
        return only in self._edges.get(only, ())
