"""repro.analysis.absint — whole-program success-set inference.

A generic abstract-interpretation layer over the predicate call graph:

* :mod:`.callgraph` — the call graph and its SCCs (iterative Tarjan,
  callee-first order);
* :mod:`.domain` — the success-set type domain (members + folded views
  in the paper's ``>=`` constraint form, capped joins, depth-bounded
  widening);
* :mod:`.interpreter` — the per-SCC least fixpoint,
  :class:`ProgramInference`;
* :mod:`.reconstruct` — ``PRED`` declaration synthesis for undeclared
  predicates, validated against the Definition 16 checker;
* :mod:`.rules` — the ``TLP401``–``TLP404`` lint rules built on top.

Quick use::

    from repro.analysis.absint import infer_text

    inference = infer_text(open("prog.tlp").read())
    for line in inference.declaration_lines():
        print(line)           # PRED app(list(A), list(A), list(A)).
"""

from __future__ import annotations

from typing import Optional

from .callgraph import CallGraph, Indicator
from .domain import SuccessSet, TypeDomain, canonical, truncate_depth
from .interpreter import GoalVerdict, ProgramInference
from .reconstruct import Reconstruction, reconstruct_declarations, render_declaration

__all__ = [
    "CallGraph",
    "GoalVerdict",
    "Indicator",
    "ProgramInference",
    "Reconstruction",
    "SuccessSet",
    "TypeDomain",
    "canonical",
    "infer_text",
    "reconstruct_declarations",
    "render_declaration",
    "truncate_depth",
]


def infer_text(text: str, path: str = "<text>") -> Optional[ProgramInference]:
    """Parse ``text`` and run success-set inference; None when the file
    does not parse or its constraint set falls outside the uniform +
    guarded fragment the subtype engine needs."""
    from ...lang.lexer import LexError
    from ...lang.parser import ParseError, parse_file
    from ..context import LintContext

    try:
        source = parse_file(text)
    except (ParseError, LexError):
        return None
    ctx = LintContext.build(source, path=path)
    return ctx.inference
