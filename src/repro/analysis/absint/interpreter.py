"""Success-set inference: abstract interpretation over the call graph.

``ProgramInference`` computes, for every predicate *defined* in one
source file, an over-approximation of its success set in the type
domain of :mod:`.domain` — a least fixpoint per strongly-connected
component of the call graph (:mod:`.callgraph`), callee-first.

One clause is evaluated abstractly exactly the way the Section 7
checker evaluates it concretely, but with every type variable solvable:

1. each body goal's current success tuple is renamed apart and matched
   against the goal's arguments with the constraint-collecting
   ``match`` (:class:`~repro.core.constraint_match.ConstraintMatcher`);
2. the per-goal typings are merged; disagreements become equations;
3. all equations are solved by one unification (no rigid variables —
   inference has no declaration to hold rigid);
4. cover constraints are resolved with
   :class:`~repro.core.infer.CommonTypeInference` (the name-based-union
   search);
5. the head arguments, with each program variable replaced by its
   solved type (unconstrained variables become ⊤), are the clause's
   contribution, joined into the predicate's abstract value.

**Approximation direction.** The analysis is engineered to only ever
*over*-approximate: ``MATCH_BOTTOM``, unsolvable equations, and
uninferable covers all degrade to "no information" (⊤) — never to
failure.  The only ways a clause contributes nothing are a structural
``MATCH_FAIL`` against a callee's (over-approximated) success set and a
call to a predicate whose success set is still ⊥; both are sound under
a least-fixpoint reading.  Consequently "the final abstract value says
this goal fails" really means the concrete goal has no successful
instance — the TLP401/TLP402 rules built on top report no false
positives.

Predicates that are declared but not defined in the file (a corpus
member calling into a shared prelude's ``PRED``) are assumed to succeed
on their declared types; predicates that are neither declared nor
defined contribute no information at all (open world).

**Termination.** Joins are capped and canonically renamed (see the
domain), after ``widen_after`` iterations members are depth-truncated
(the depth-bounded widening that makes recursive *polymorphic*
predicates converge), and a hard iteration cap forces the component to
⊤ — so the fixpoint terminates on every input.

Telemetry (``repro.obs``): ``analysis.absint.fixpoint`` timer plus
``analysis.absint.{predicates,sccs,iterations,widenings}`` counters.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ...core.constraint_match import ConstraintMatcher
from ...core.declarations import ConstraintSet
from ...core.infer import CommonTypeInference
from ...core.match import MATCH_BOTTOM, MATCH_FAIL
from ...core.subtype import SubtypeEngine
from ...lang.ast import ClauseDecl, PredDecl, QueryDecl
from ...obs import METRICS
from ...terms.pretty import pretty
from ...terms.substitution import Substitution
from ...terms.term import (
    Struct,
    Term,
    Var,
    fresh_variable,
    rename_apart,
    variables_of,
)
from ...terms.unify import unify
from .callgraph import CallGraph, Indicator, _is_constraint_goal
from .domain import SuccessSet, TypeDomain, canonical

__all__ = ["ProgramInference", "GoalVerdict"]


class GoalVerdict:
    """Outcome of evaluating one body/query goal against the current
    abstract state."""

    __slots__ = ("status", "typing", "equations", "covers", "reason")

    #: goal can never succeed (structural mismatch or ⊥ callee)
    FAIL = "fail"
    #: goal matched; typing information collected
    OK = "ok"
    #: no information (unknown predicate, constraint goal, ⊥-degradation)
    SKIP = "skip"

    def __init__(self, status, typing=None, equations=(), covers=(), reason=""):
        self.status = status
        self.typing = typing or {}
        self.equations = list(equations)
        self.covers = list(covers)
        self.reason = reason


class ProgramInference:
    """Whole-file success-set inference (built once, queried by rules)."""

    def __init__(
        self,
        clauses: Sequence[ClauseDecl],
        queries: Sequence[QueryDecl],
        pred_decls: Dict[Indicator, PredDecl],
        constraints: ConstraintSet,
        engine: SubtypeEngine,
        max_iterations: int = 20,
        widen_after: int = 6,
    ) -> None:
        self.clauses = list(clauses)
        self.queries = list(queries)
        self.pred_decls = dict(pred_decls)
        self.constraints = constraints
        self.engine = engine
        self.domain = TypeDomain(constraints, engine)
        self.matcher = ConstraintMatcher(constraints, validate=False)
        self.common = CommonTypeInference(constraints, self.matcher)
        self.max_iterations = max_iterations
        self.widen_after = widen_after

        self.clauses_by_pred: Dict[Indicator, List[ClauseDecl]] = {}
        for clause in self.clauses:
            self.clauses_by_pred.setdefault(clause.head.indicator, []).append(clause)
        self.graph = CallGraph.from_clauses(self.clauses)

        #: Per-defined-predicate state: None = ⊥, else per-position member lists.
        self._state: Dict[Indicator, Optional[List[List[Term]]]] = {
            indicator: None for indicator in self.clauses_by_pred
        }
        self._fold_memo: Dict[Indicator, Tuple[Term, ...]] = {}
        self._widened: Set[Indicator] = set()
        self.iterations = 0
        self.widenings = 0
        #: Final abstract values, filled by the fixpoint.
        self.success: Dict[Indicator, SuccessSet] = {}
        self._reconstructions = None

        with METRICS.time("analysis.absint.fixpoint"):
            self._run()
        if METRICS.enabled:
            METRICS.inc("analysis.absint.predicates", len(self.clauses_by_pred))
            METRICS.inc("analysis.absint.iterations", self.iterations)
            if self.widenings:
                METRICS.inc("analysis.absint.widenings", self.widenings)

    @classmethod
    def from_context(cls, ctx) -> "ProgramInference":
        """Build from a :class:`~repro.analysis.context.LintContext`
        whose lazy ``engine`` is available (uniform + guarded)."""
        if ctx.engine is None:
            raise ValueError("success-set inference needs a subtype engine")
        return cls(
            ctx.clause_items,
            ctx.query_items,
            ctx.pred_decls,
            ctx.constraints,
            ctx.engine,
        )

    # -- the fixpoint --------------------------------------------------------

    def _run(self) -> None:
        for component in self.graph.sccs():
            defined = [i for i in component if i in self.clauses_by_pred]
            if not defined:
                continue
            if METRICS.enabled:
                METRICS.inc("analysis.absint.sccs")
            iteration = 0
            while True:
                iteration += 1
                self.iterations += 1
                changed = False
                for indicator in defined:
                    for clause in self.clauses_by_pred[indicator]:
                        contribution = self._evaluate_clause(clause)
                        if contribution is not None:
                            changed |= self._merge(indicator, contribution)
                if iteration >= self.widen_after:
                    changed |= self._widen(defined)
                if not changed:
                    break
                if iteration >= self.max_iterations:
                    self._force_top(defined)
                    break
        for indicator in self.clauses_by_pred:
            state = self._state[indicator]
            if state is None:
                self.success[indicator] = SuccessSet(
                    indicator, members=(), folded=(), bottom=True
                )
            else:
                self.success[indicator] = SuccessSet(
                    indicator,
                    members=tuple(tuple(position) for position in state),
                    folded=self._folded(indicator),
                    widened=indicator in self._widened,
                )

    def _merge(self, indicator: Indicator, contribution: Tuple[Term, ...]) -> bool:
        state = self._state[indicator]
        if state is None:
            self._state[indicator] = [
                [canonical(component)] for component in contribution
            ]
            self._fold_memo.pop(indicator, None)
            return True
        changed = False
        for position, component in enumerate(contribution):
            before = len(state[position])
            if self.domain.add_member(state[position], component):
                changed = True
                if len(state[position]) < before:
                    # The cap collapsed the position to ⊤.
                    self._widened.add(indicator)
                    self.widenings += 1
        if changed:
            self._fold_memo.pop(indicator, None)
        return changed

    def _widen(self, defined: Iterable[Indicator]) -> bool:
        changed = False
        for indicator in defined:
            state = self._state[indicator]
            if state is None:
                continue
            for position in state:
                if self.domain.widen_members(position):
                    changed = True
                    self._widened.add(indicator)
                    self.widenings += 1
            if changed:
                self._fold_memo.pop(indicator, None)
        return changed

    def _force_top(self, defined: Iterable[Indicator]) -> None:
        for indicator in defined:
            state = self._state[indicator]
            if state is None:
                continue
            for position in state:
                position[:] = [Var("_A0")]
            self._widened.add(indicator)
            self.widenings += 1
            self._fold_memo.pop(indicator, None)

    # -- views over the state ------------------------------------------------

    def is_defined(self, indicator: Indicator) -> bool:
        return indicator in self.clauses_by_pred

    def is_bottom(self, indicator: Indicator) -> bool:
        return self.is_defined(indicator) and self._state[indicator] is None

    def _folded(self, indicator: Indicator) -> Tuple[Term, ...]:
        cached = self._fold_memo.get(indicator)
        if cached is None:
            state = self._state[indicator]
            assert state is not None
            # Canonicalize jointly so distinct positions get distinct
            # variable names — per-position renaming would make two
            # independent ⊤ positions accidentally share one variable.
            carrier = canonical(
                Struct("$fold", tuple(self.domain.fold(position) for position in state))
            )
            cached = tuple(carrier.args)
            self._fold_memo[indicator] = cached
        return cached

    def success_tuple(self, indicator: Indicator) -> Optional[Tuple[Term, ...]]:
        """The tuple goals are matched against: the inferred folded view
        for defined predicates, the declared ``PRED`` types for
        declared-but-undefined ones, None when nothing is known (open
        world) *or* the success set is ⊥ (distinguish via
        :meth:`is_bottom`)."""
        if self.is_defined(indicator):
            if self._state[indicator] is None:
                return None
            return self._folded(indicator)
        declaration = self.pred_decls.get(indicator)
        if declaration is not None:
            return tuple(declaration.head.args)
        return None

    # -- abstract clause evaluation ------------------------------------------

    def evaluate_goal(self, goal: Struct, solvable: Set[Var]) -> GoalVerdict:
        """Match one goal's arguments against its predicate's success
        tuple; degradations are ⊤ (never failure), per the module
        docstring's approximation-direction contract."""
        if _is_constraint_goal(goal):
            return GoalVerdict(GoalVerdict.SKIP)
        indicator = goal.indicator
        if self.is_bottom(indicator):
            return GoalVerdict(
                GoalVerdict.FAIL,
                reason=(
                    f"{indicator[0]}/{indicator[1]} has an empty success set: "
                    f"no clause instance can ever succeed"
                ),
            )
        tuple_ = self.success_tuple(indicator)
        if tuple_ is None or len(tuple_) != len(goal.args):
            return GoalVerdict(GoalVerdict.SKIP)
        renamed, _mapping = rename_apart(Struct("$succ", tuple_))
        solvable.update(variables_of(renamed))
        verdict = GoalVerdict(GoalVerdict.OK)
        for component, argument in zip(renamed.args, goal.args):
            outcome = self.matcher.match(component, argument, solvable)
            if outcome.result is MATCH_FAIL:
                source = "inferred" if self.is_defined(indicator) else "declared"
                return GoalVerdict(
                    GoalVerdict.FAIL,
                    reason=(
                        f"argument {pretty(argument)} never matches the "
                        f"{source} success type {pretty(component)}"
                    ),
                )
            if outcome.result is MATCH_BOTTOM:
                continue  # conservative: no information from this argument
            for variable, value in outcome.result.items():
                previous = verdict.typing.get(variable)
                if previous is None:
                    verdict.typing[variable] = value
                elif previous != value:
                    verdict.equations.append((previous, value))
            verdict.equations.extend(outcome.equations)
            verdict.covers.extend(outcome.covers)
        return verdict

    def _evaluate_clause(self, clause: ClauseDecl) -> Optional[Tuple[Term, ...]]:
        """One abstract clause evaluation; None when some body goal
        cannot succeed under the current abstract state."""
        solvable: Set[Var] = set()
        typing: Dict[Var, Term] = {}
        equations: List[Tuple[Term, Term]] = []
        covers: List[Tuple[Var, Term]] = []
        for goal in clause.body:
            verdict = self.evaluate_goal(goal, solvable)
            if verdict.status == GoalVerdict.FAIL:
                return None
            if verdict.status == GoalVerdict.SKIP:
                continue
            for variable, value in verdict.typing.items():
                previous = typing.get(variable)
                if previous is None:
                    typing[variable] = value
                elif previous != value:
                    equations.append((previous, value))
            equations.extend(verdict.equations)
            covers.extend(verdict.covers)

        solution = self._solve(equations)
        if solution is None:
            # Unsolvable equations degrade to "no body information" —
            # the over-approximation direction, never a failure.
            typing, covers, solution = {}, [], Substitution()
        solution = self._resolve_covers(covers, solution)

        components: List[Term] = []
        for argument in clause.head.args:
            components.append(self._type_of(argument, typing, solution))
        return tuple(components)

    def _solve(self, equations) -> Optional[Substitution]:
        if not equations:
            return Substitution()
        lefts = Struct("$eqs", tuple(left for left, _right in equations))
        rights = Struct("$eqs", tuple(right for _left, right in equations))
        return unify(lefts, rights)

    def _resolve_covers(self, covers, solution: Substitution) -> Substitution:
        grouped: Dict[Var, List[Term]] = {}
        for variable, covered in covers:
            grouped.setdefault(variable, []).append(covered)
        extra: Dict[Var, Term] = {}
        for variable, terms in grouped.items():
            bound = solution.apply(variable)
            if not isinstance(bound, Var):
                continue  # shape equations already committed it
            inferred = self.common.infer(terms)
            if inferred is not None:
                extra[bound] = inferred
        if not extra:
            return solution
        # Application is simultaneous, so chase the new commitments
        # through the existing bindings before merging.
        chase = Substitution(extra)
        merged = {variable: chase.apply(value) for variable, value in solution.items()}
        merged.update(extra)
        return Substitution(merged)

    def _type_of(
        self, argument: Term, typing: Dict[Var, Term], solution: Substitution
    ) -> Term:
        if isinstance(argument, Var):
            bound = typing.get(argument)
            if bound is None:
                return fresh_variable("_S")
            return solution.apply(bound)
        if not argument.args:
            return argument
        return Struct(
            argument.functor,
            tuple(self._type_of(arg, typing, solution) for arg in argument.args),
        )

    # -- final-state questions (the TLP4xx rules) ----------------------------

    def goal_failure(self, goal: Struct) -> Optional[str]:
        """A human-readable reason why ``goal`` can never succeed under
        the final abstract state, or None."""
        verdict = self.evaluate_goal(goal, set())
        if verdict.status == GoalVerdict.FAIL:
            return verdict.reason
        return None

    def dead_clause_reason(self, clause: ClauseDecl) -> Optional[str]:
        """Why the clause is dead: a body goal that always fails, or a
        head that never matches the declared success set."""
        for goal in clause.body:
            if _is_constraint_goal(goal):
                continue
            reason = self.goal_failure(goal)
            if reason is not None:
                return f"body goal {pretty(goal)} always fails: {reason}"
        declaration = self.pred_decls.get(clause.head.indicator)
        if declaration is not None and len(declaration.head.args) == len(
            clause.head.args
        ):
            renamed, _mapping = rename_apart(Struct("$decl", tuple(declaration.head.args)))
            solvable = set(variables_of(renamed))
            for component, argument in zip(renamed.args, clause.head.args):
                outcome = self.matcher.match(component, argument, solvable)
                if outcome.result is MATCH_FAIL:
                    return (
                        f"head argument {pretty(argument)} never matches its "
                        f"declared type {pretty(component)}"
                    )
        return None

    def compare_with_declaration(self, indicator: Indicator):
        """Position-wise comparison of the inferred success set with the
        ``PRED`` declaration.

        Returns ``("equivalent" | "loose" | "ok", details)`` or
        ``("incompatible", positions)``:

        * **loose** — every declared position is at least as general as
          the inferred one and some strictly more general (and the
          inferred view is expressible: TLP403's fix-it is the tighter
          declaration);
        * **incompatible** — some position where declared and inferred
          are incomparable *and* no raw member of the inferred set fits
          the declared type (the success set and the declaration share
          no instances there — TLP404).  The member-level fit test is
          what keeps genuinely overlapping-but-incomparable cases (an
          ``int`` predicate whose clauses also accept an open-element
          ``succ(X)``) silent.
        """
        success = self.success.get(indicator)
        declaration = self.pred_decls.get(indicator)
        if success is None or declaration is None or success.bottom:
            return ("ok", None)
        declared = tuple(declaration.head.args)
        if len(declared) != len(success.folded):
            return ("ok", None)
        all_ge, any_strict = True, False
        incompatible: List[int] = []
        for position, (decl, fold, members) in enumerate(
            zip(declared, success.folded, success.members)
        ):
            ge = self.domain.subsumes(decl, fold)
            le = self.domain.subsumes(fold, decl)
            if ge and le:
                continue
            if ge:
                any_strict = True
                continue
            all_ge = False
            if le:
                continue  # inferred strictly more general: clauses are
                # allowed to succeed outside the declaration's reading
            fits = any(
                isinstance(member, Var) or self.domain.subsumes(decl, member)
                for member in members
            )
            if not fits:
                incompatible.append(position)
        if incompatible:
            return ("incompatible", incompatible)
        if all_ge and any_strict:
            return ("loose", success.folded)
        if all_ge:
            return ("equivalent", None)
        return ("ok", None)

    # -- reconstruction ------------------------------------------------------

    def reconstructions(self):
        """Synthesized ``PRED`` declarations for the file's undeclared
        defined predicates (cached; see :mod:`.reconstruct`)."""
        if self._reconstructions is None:
            from .reconstruct import reconstruct_declarations

            self._reconstructions = reconstruct_declarations(self)
        return self._reconstructions

    def declaration_lines(self, include_declared: bool = False) -> List[str]:
        """Rendered inferred declarations (the ``--infer`` surfaces)."""
        lines: List[str] = []
        for indicator, reconstruction in sorted(self.reconstructions().items()):
            line = reconstruction.line
            if not reconstruction.defined:
                line += "  % assumed (called but never defined)"
            lines.append(line)
        if include_declared:
            from .reconstruct import render_declaration

            for indicator in sorted(self.clauses_by_pred):
                if indicator in self.pred_decls and indicator not in self.reconstructions():
                    success = self.success[indicator]
                    if not success.bottom:
                        lines.append(
                            render_declaration(indicator, success.folded)
                            + "  % declared"
                        )
        return lines
