"""Semantic lint rules ``TLP401``–``TLP404`` over inferred success sets.

These rules consume the whole-file success-set inference
(:class:`~repro.analysis.absint.ProgramInference`, reached lazily
through ``ctx.inference``) and compare what the clauses *actually
compute* with what the declarations *promise* — the interprocedural
complement to the per-clause Definition 16 check:

* **TLP401 dead clause** — a clause that can never produce a successful
  instance: some body goal always fails under the (over-approximated)
  success sets, or the head never matches its declared types;
* **TLP402 always-fail goal** — a body/query goal structurally
  incompatible with its predicate's inferred or declared success set
  (including calls to predicates whose success set is ⊥);
* **TLP403 loose declaration** — the inferred success type is a strict
  subtype of the declared one at some position (and no position exceeds
  it); the fix-it is the tighter declaration;
* **TLP404 declaration/clauses incompatibility** — some position where
  the declared type and the inferred success set share no instances.

All four default to *warning*: the analysis is sound but the program is
merely suspect, not ill-typed.  The over-approximation contract of the
interpreter (degradations go to ⊤, never to failure) is what makes the
TLP401/TLP402 verdicts false-positive-free; TLP404's member-level fit
test plays the same role on the comparison side.  The rules run only
when the file's constraint set is uniform and guarded (``ctx.inference``
is None otherwise) — the same gate as the TLP301 flow analysis.
"""

from __future__ import annotations

from ...checker.diagnostics import FixIt, Severity
from ...terms.pretty import pretty
from ...terms.term import variables_of
from ..context import LintContext
from ..registry import register
from .reconstruct import render_declaration

_PAPER = "§7 (constraint collection) + abstract interpretation of success sets"


@register(
    "TLP401",
    "dead-clause",
    Severity.WARNING,
    "clause can never produce a successful instance (a body goal always "
    "fails, or the head never matches the declared types)",
    _PAPER,
)
def check_dead_clauses(ctx: LintContext) -> None:
    inference = ctx.inference
    if inference is None:
        return
    for clause in ctx.clause_items:
        reason = inference.dead_clause_reason(clause)
        if reason is not None:
            name, arity = clause.head.indicator
            ctx.report(
                check_dead_clauses._rule,
                f"clause of {name}/{arity} is dead: {reason}",
                clause.position,
                fixits=(FixIt("remove the clause or fix the mismatched term"),),
            )


@register(
    "TLP402",
    "always-fail-goal",
    Severity.WARNING,
    "goal can never succeed against its predicate's inferred/declared "
    "success set",
    _PAPER,
)
def check_always_fail_goals(ctx: LintContext) -> None:
    inference = ctx.inference
    if inference is None:
        return
    for owner, goal, is_head in ctx.predicate_goals():
        if is_head:
            continue
        reason = inference.goal_failure(goal)
        if reason is not None:
            ctx.report(
                check_always_fail_goals._rule,
                f"goal {pretty(goal)} always fails: {reason}",
                owner.position,
            )


@register(
    "TLP403",
    "loose-declaration",
    Severity.WARNING,
    "declared type is strictly looser than the inferred success type",
    _PAPER,
)
def check_loose_declarations(ctx: LintContext) -> None:
    inference = ctx.inference
    if inference is None:
        return
    for indicator in sorted(inference.success):
        decl = ctx.pred_decls.get(indicator)
        if decl is not None and any(variables_of(arg) for arg in decl.head.args):
            # Polymorphic declarations are universally quantified — the
            # "tighter" monomorphic reading is the TLP6xx rules' call.
            continue
        verdict, details = inference.compare_with_declaration(indicator)
        if verdict != "loose":
            continue
        name, arity = indicator
        tighter = render_declaration(indicator, details)
        ctx.report(
            check_loose_declarations._rule,
            f"declaration of {name}/{arity} is looser than what its "
            f"clauses can compute: the inferred success type fits "
            f"`{tighter}`",
            ctx.pred_decls[indicator].position,
            fixits=(
                FixIt(
                    f"tighten the declaration to `{tighter}`",
                    replacement=tighter,
                ),
            ),
        )


@register(
    "TLP404",
    "incompatible-declaration",
    Severity.WARNING,
    "declared type and inferred success set share no instances at some "
    "argument position",
    _PAPER,
)
def check_incompatible_declarations(ctx: LintContext) -> None:
    inference = ctx.inference
    if inference is None:
        return
    for indicator in sorted(inference.success):
        decl = ctx.pred_decls.get(indicator)
        if decl is not None and any(variables_of(arg) for arg in decl.head.args):
            continue  # polymorphic declaration: the TLP6xx rules' call
        verdict, details = inference.compare_with_declaration(indicator)
        if verdict != "incompatible":
            continue
        name, arity = indicator
        declaration = ctx.pred_decls[indicator]
        success = inference.success[indicator]
        for position in details:
            ctx.report(
                check_incompatible_declarations._rule,
                f"{name}/{arity} argument {position + 1}: the declared "
                f"type {pretty(declaration.head.args[position])} and the "
                f"inferred success type "
                f"{pretty(success.folded[position])} share no instances",
                declaration.position,
            )
