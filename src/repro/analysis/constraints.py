"""Constraint-set (declaration) analyses: rules ``TLP101``-``TLP105``.

These passes look only at the ``FUNC``/``TYPE``/``PRED``/``>=`` items —
no clause bodies — and enforce the side conditions Section 3 puts on
type declarations plus the implicit assumptions the paper never states
but Theorems 1-6 rely on:

* **TLP101** non-uniform constraints (Definition 6) — the deterministic
  engine and ``match`` are only defined for uniform sets;
* **TLP102** unguarded constructors (Definitions 8-9), with the
  offending dependence-graph cycle rendered in the message — without
  guardedness, two-step application chains need not terminate
  (Theorem 3 fails);
* **TLP103** uninhabited declared types, by a least-fixpoint
  inhabitation analysis — ``PRED p(τ)`` with ``M[τ] = ∅`` makes ``p``
  unsatisfiable by any well-typed ground atom;
* **TLP104** type constructors unreachable from every ``PRED``
  declaration — dead declarations that can never constrain a program;
* **TLP105** duplicate / shadowed declarations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..checker.diagnostics import FixIt, Severity
from ..core.builtins import is_builtin_goal, numeric_type_name
from ..lang.ast import ClauseDecl, ConstraintDecl, FuncDecl, ModeDecl, PredDecl, TypeDecl
from ..terms.pretty import UNION_TYPE, pretty
from ..terms.term import Struct, Term, Var, subterms
from .context import LintContext
from .registry import register

__all__ = ["inhabited_constructors"]


def _constraint_text(item: ConstraintDecl) -> str:
    return f"{pretty(item.lhs)} >= {pretty(item.rhs)}"


@register(
    "TLP101",
    "non-uniform-constraint",
    Severity.ERROR,
    "constraint is not uniform polymorphic (left-hand side arguments "
    "must be distinct variables)",
    "§3, Definition 6",
)
def check_non_uniform(ctx: LintContext) -> None:
    for item in ctx.constraint_items:
        if not isinstance(item.lhs, Struct):
            continue  # malformed lhs: the checker reports it
        args = item.lhs.args
        uniform = all(isinstance(a, Var) for a in args) and len(set(args)) == len(args)
        if not uniform:
            ctx.report(
                check_non_uniform._rule,
                f"constraint {_constraint_text(item)} is not uniform "
                f"polymorphic: the arguments of "
                f"{item.lhs.functor}({', '.join(pretty(a) for a in args)}) "
                f"must be distinct variables (Definition 6)",
                item.position,
            )


def _unguarded_targets(ctx: LintContext, rhs: Term) -> Set[str]:
    """Type constructors in ``rhs`` not guarded by a function symbol."""
    found: Set[str] = set()
    stack: List[Term] = [rhs]
    while stack:
        term = stack.pop()
        if isinstance(term, Var):
            continue
        assert isinstance(term, Struct)
        if ctx.is_type_name(term.functor):
            if term.functor != UNION_TYPE:
                found.add(term.functor)
            stack.extend(term.args)
        # Function symbols (and undeclared names) guard their arguments.
    return found


def _find_cycle(edges: Dict[str, Set[str]], start: str) -> List[str]:
    """One concrete path ``start -> ... -> start`` through ``edges``."""
    stack: List[Tuple[str, List[str]]] = [(start, [start])]
    seen: Set[str] = set()
    while stack:
        node, path = stack.pop()
        for succ in sorted(edges.get(node, ())):
            if succ == start:
                return path + [start]
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, path + [succ]))
    return [start, start]


@register(
    "TLP102",
    "unguarded-constructor",
    Severity.ERROR,
    "type constructor directly depends on itself: the deterministic "
    "subtype derivation need not terminate",
    "§3, Definitions 8-9 / Theorem 3",
)
def check_unguarded(ctx: LintContext) -> None:
    edges: Dict[str, Set[str]] = {}
    first_item: Dict[str, ConstraintDecl] = {}
    for item in ctx.constraint_items:
        if not isinstance(item.lhs, Struct):
            continue
        constructor = item.lhs.functor
        if not ctx.is_type_name(constructor):
            continue
        first_item.setdefault(constructor, item)
        edges.setdefault(constructor, set()).update(
            _unguarded_targets(ctx, item.rhs)
        )
    for constructor in sorted(edges):
        if constructor not in _reachable(edges, constructor):
            continue
        cycle = _find_cycle(edges, constructor)
        rendered = " -> ".join(cycle)
        item = first_item[constructor]
        ctx.report(
            check_unguarded._rule,
            f"declarations are not guarded (Definition 9): {constructor} "
            f"directly depends on itself through the cycle {rendered}; "
            f"guard the recursion under a function symbol",
            item.position,
        )


def _reachable(edges: Dict[str, Set[str]], start: str) -> Set[str]:
    seen: Set[str] = set()
    stack = list(edges.get(start, ()))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(edges.get(node, ()))
    return seen


def inhabited_constructors(ctx: LintContext) -> Set[str]:
    """Least fixpoint of "has at least one ground member".

    A constructor ``c`` enters the set when some constraint
    ``c(ᾱ) >= τ`` has an inhabited right-hand side, where variables are
    assumed inhabited (type parameters can always be instantiated with
    an inhabited type), function applications need every argument
    inhabited, unions need one branch, and a type-constructor
    application needs its constructor already in the set (its parameters
    are approximated as inhabited).
    """
    by_constructor: Dict[str, List[Term]] = {}
    for item in ctx.constraint_items:
        if isinstance(item.lhs, Struct) and ctx.is_type_name(item.lhs.functor):
            by_constructor.setdefault(item.lhs.functor, []).append(item.rhs)

    inhabited: Set[str] = set()

    def term_inhabited(term: Term) -> bool:
        if isinstance(term, Var):
            return True
        assert isinstance(term, Struct)
        if term.functor == UNION_TYPE and len(term.args) == 2:
            return any(term_inhabited(arg) for arg in term.args)
        if ctx.is_type_name(term.functor):
            return term.functor in inhabited
        # Function symbols (and undeclared names, optimistically).
        return all(term_inhabited(arg) for arg in term.args)

    changed = True
    while changed:
        changed = False
        for constructor, rhss in by_constructor.items():
            if constructor in inhabited:
                continue
            if any(term_inhabited(rhs) for rhs in rhss):
                inhabited.add(constructor)
                changed = True
    return inhabited


@register(
    "TLP103",
    "uninhabited-type",
    Severity.WARNING,
    "declared type has no ground members: every constraint for it "
    "recurses (or it has no constraints at all)",
    "§2 (implicit: declared types are assumed inhabited)",
)
def check_uninhabited(ctx: LintContext) -> None:
    inhabited = inhabited_constructors(ctx)
    first_item: Dict[str, ConstraintDecl] = {}
    for item in ctx.constraint_items:
        if isinstance(item.lhs, Struct):
            first_item.setdefault(item.lhs.functor, item)
    referenced = _pred_referenced_constructors(ctx)
    for name in sorted(ctx.type_decls):
        if name in inhabited:
            continue
        has_constraints = name in first_item
        if not has_constraints and name not in referenced:
            continue  # dead *and* empty: TLP104's business
        position = (
            first_item[name].position if has_constraints else ctx.type_decls[name]
        )
        detail = (
            "every constraint for it lacks a non-recursive base case"
            if has_constraints
            else "it has no subtype constraints at all"
        )
        ctx.report(
            check_uninhabited._rule,
            f"declared type {name} is uninhabited (M[{name}] is empty): "
            f"{detail}",
            position,
            fixits=(
                FixIt(
                    f"add a base-case constraint such as "
                    f"`{name} >= <base>.` for some function symbol <base>"
                ),
            ),
        )


def _pred_referenced_constructors(ctx: LintContext) -> Set[str]:
    """Type constructors occurring in any PRED declaration's types."""
    found: Set[str] = set()
    for pred in ctx.pred_decls.values():
        for arg in pred.head.args:
            for sub in subterms(arg):
                if isinstance(sub, Struct) and ctx.is_type_name(sub.functor):
                    found.add(sub.functor)
    return found


@register(
    "TLP104",
    "unreachable-constructor",
    Severity.WARNING,
    "type constructor is unreachable from every PRED declaration",
    "§6 (predicate types select the reachable fragment of C)",
)
def check_unreachable(ctx: LintContext) -> None:
    if not ctx.pred_decls:
        return  # nothing to be reachable from
    edges: Dict[str, Set[str]] = {}
    for item in ctx.constraint_items:
        if not isinstance(item.lhs, Struct):
            continue
        constructor = item.lhs.functor
        targets = {
            sub.functor
            for sub in subterms(item.rhs)
            if isinstance(sub, Struct) and ctx.is_type_name(sub.functor)
        }
        # Parameters of the lhs can mention constructors too (non-uniform
        # sets); count them so reachability never under-approximates.
        targets.update(
            sub.functor
            for arg in item.lhs.args
            for sub in subterms(arg)
            if isinstance(sub, Struct) and ctx.is_type_name(sub.functor)
        )
        edges.setdefault(constructor, set()).update(targets - {UNION_TYPE})
    roots = _pred_referenced_constructors(ctx)
    if any(
        is_builtin_goal(goal) and goal.indicator not in ctx.pred_decls
        for item in ctx.clause_items + ctx.query_items
        for goal in (
            item.body if not isinstance(item, ClauseDecl) else (item.head,) + item.body
        )
    ):
        # Built-in constraint goals range over the numeric type even
        # when no PRED declaration mentions it.
        numeric = numeric_type_name(ctx.type_decls)
        if numeric is not None:
            roots.add(numeric)
    for query in ctx.query_items:
        for goal in query.body:
            if goal.functor == ":" and len(goal.args) == 2:
                for sub in subterms(goal.args[1]):
                    if isinstance(sub, Struct) and ctx.is_type_name(sub.functor):
                        roots.add(sub.functor)
    reachable = set(roots)
    stack = list(roots)
    while stack:
        node = stack.pop()
        for succ in edges.get(node, ()):
            if succ not in reachable:
                reachable.add(succ)
                stack.append(succ)
    for name in sorted(ctx.type_decls):
        if name in reachable or name == UNION_TYPE:
            continue
        ctx.report(
            check_unreachable._rule,
            f"type constructor {name} is unreachable from every PRED "
            f"declaration: no predicate type can ever mention it",
            ctx.type_decls[name],
            fixits=(
                FixIt(
                    f"remove the declaration of {name} or reference it "
                    f"from a PRED type"
                ),
            ),
        )


@register(
    "TLP105",
    "duplicate-declaration",
    Severity.WARNING,
    "symbol or predicate declared more than once",
    "§2 (V, F, T are disjoint alphabets; D assigns one type per predicate)",
)
def check_duplicates(ctx: LintContext) -> None:
    seen: Dict[str, Tuple[str, object]] = {}
    for item in ctx.source.items:
        if isinstance(item, (FuncDecl, TypeDecl)):
            kind = "function symbol" if isinstance(item, FuncDecl) else "type constructor"
            for name in item.names:
                if name in seen:
                    first_kind, first_pos = seen[name]
                    ctx.report(
                        check_duplicates._rule,
                        f"duplicate declaration of {name}: first declared "
                        f"as a {first_kind} at {first_pos}",
                        item.position,
                        fixits=(FixIt(f"remove the duplicate declaration of {name}"),),
                    )
                else:
                    seen[name] = (kind, item.position)
    preds_seen: Dict[Tuple[str, int], object] = {}
    for item in ctx.source.items:
        if isinstance(item, PredDecl):
            indicator = item.head.indicator
            if indicator in preds_seen:
                ctx.report(
                    check_duplicates._rule,
                    f"duplicate PRED declaration for "
                    f"{indicator[0]}/{indicator[1]}: first declared at "
                    f"{preds_seen[indicator]}",
                    item.position,
                    fixits=(FixIt("remove the duplicate PRED declaration"),),
                )
            else:
                preds_seen[indicator] = item.position
        elif isinstance(item, ModeDecl):
            indicator = (item.name, len(item.modes))
            key = ("MODE",) + indicator
            if key in preds_seen:
                ctx.report(
                    check_duplicates._rule,
                    f"duplicate MODE declaration for "
                    f"{indicator[0]}/{indicator[1]}: first declared at "
                    f"{preds_seen[key]}",
                    item.position,
                    fixits=(FixIt("remove the duplicate MODE declaration"),),
                )
            else:
                preds_seen[key] = item.position
