"""The lint rule registry: stable codes, severities, fingerprints.

Every analysis pass is a :class:`Rule` — a stable ``TLP1xx``/``TLP2xx``/
``TLP3xx`` code, a kebab-case slug, a default severity, the paper
section it enforces, and a check function over a
:class:`~repro.analysis.context.LintContext`.  Rules register themselves
into a :class:`RuleRegistry` (module import order is irrelevant — rules
always run in code order), and a :class:`LintConfig` selects/re-levels
them per run.

The registry also answers the cache-invalidation question: the
*fingerprint* of an enabled rule set is a stable digest over the
analyzer version plus each enabled rule's code and severity.  The batch
service folds it into every result-cache key, so adding a rule,
disabling one, or changing a severity re-lints exactly the affected
corpus instead of silently replaying stale verdicts.

Code space:

* ``TLP000`` — reserved: "no code assigned" (plain checker diagnostics);
* ``TLP001`` — syntax errors surfaced by the linter;
* ``TLP1xx`` — constraint-set (declaration) analyses;
* ``TLP2xx`` — clause/query analyses;
* ``TLP3xx`` — dataflow (mode / information-flow) analyses;
* ``TLP4xx`` — interprocedural success-set analyses (abstract
  interpretation over the call graph, ``repro.analysis.absint``);
* ``TLP5xx`` — declared-mode analyses (well-modedness and ill-moded
  call sites under ``MODE`` declarations, ``repro.analysis.modes``);
* ``TLP590`` — reserved: dynamic subject-reduction violations reported
  by ``--typed-run`` (``repro.core.typed_run``), outside the static
  rule registry on purpose;
* ``TLP6xx`` — typed-CLP analyses (polymorphic subtype-constraint
  solving and built-in constraint signatures,
  ``repro.analysis.polytypes``).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..checker.diagnostics import Severity

__all__ = [
    "ANALYZER_VERSION",
    "SYNTAX_ERROR_CODE",
    "Rule",
    "RuleRegistry",
    "LintConfig",
    "default_registry",
    "register",
]

#: Bumped on any change to a rule's semantics or message wording; part
#: of the rule-set fingerprint (and hence of batch cache keys).
#: "2": the TLP4xx success-set family + inference-backed TLP201 fix-its.
#: "3": the TLP5xx declared-mode family + TLP301 deferring to declared
#: modes when both flow endpoints carry them.
#: "4": the TLP6xx typed-CLP family (polymorphic constraint solving,
#: built-in signatures); TLP201/TLP104/TLP301 made polymorphism- and
#: built-in-aware.
ANALYZER_VERSION = "4"

#: Code attached to lexer/parser failures reported through the linter.
SYNTAX_ERROR_CODE = "TLP001"


@dataclass(frozen=True)
class Rule:
    """One analysis pass with its stable identity."""

    code: str  # "TLP101"
    slug: str  # "non-uniform-constraint"
    severity: str  # default severity (Severity.*)
    summary: str  # one-line description for --list-rules / SARIF
    paper: str  # the paper section/definition the rule enforces
    check: Callable[["LintContext"], None] = field(compare=False)  # type: ignore[name-defined]  # noqa: F821

    def __str__(self) -> str:
        return f"{self.code} [{self.severity}] {self.slug}: {self.summary}"


class RuleRegistry:
    """An ordered collection of rules, keyed by stable code."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def add(self, rule: Rule) -> Rule:
        if rule.code in self._rules:
            raise ValueError(f"duplicate lint rule code {rule.code}")
        self._rules[rule.code] = rule
        return rule

    def get(self, code: str) -> Optional[Rule]:
        return self._rules.get(code)

    @property
    def rules(self) -> List[Rule]:
        """All rules in code order (stable across processes)."""
        return [self._rules[code] for code in sorted(self._rules)]

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self._rules)

    def selected(self, config: "LintConfig") -> List[Rule]:
        """The enabled rules under ``config``, severity overrides applied."""
        overrides = config.severity_map
        out: List[Rule] = []
        for rule in self.rules:
            if rule.code in config.disabled:
                continue
            override = overrides.get(rule.code)
            out.append(replace(rule, severity=override) if override else rule)
        return out

    def fingerprint(self, config: Optional["LintConfig"] = None) -> str:
        """Stable digest of the enabled rule set (+ analyzer version).

        This is what the batch service folds into cache keys: two runs
        share lint verdicts iff their fingerprints agree.
        """
        config = config or LintConfig()
        parts = [f"analyzer={ANALYZER_VERSION}"]
        for rule in self.selected(config):
            parts.append(f"{rule.code}={rule.severity}")
        digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
        return digest[:16]


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule selection: disabled codes and severity overrides."""

    disabled: FrozenSet[str] = frozenset()
    severities: "Tuple[Tuple[str, str], ...]" = ()  # immutable mapping view

    def __post_init__(self) -> None:
        object.__setattr__(self, "disabled", frozenset(self.disabled))
        if isinstance(self.severities, dict):
            object.__setattr__(
                self, "severities", tuple(sorted(self.severities.items()))
            )

    @property
    def severity_map(self) -> Dict[str, str]:
        return dict(self.severities)

    @classmethod
    def from_spec(cls, disable: str = "", severities: str = "") -> "LintConfig":
        """Build from comma-separated CLI specs.

        ``disable`` is ``"TLP203,TLP104"``; ``severities`` is
        ``"TLP301=error,TLP203=note"``.
        """
        disabled = frozenset(
            code.strip() for code in disable.split(",") if code.strip()
        )
        for code in disabled:
            if not re.fullmatch(r"TLP\d+", code):
                raise ValueError(
                    f"bad rule code {code!r} in disable spec (want TLPnnn)"
                )
        overrides: Dict[str, str] = {}
        for entry in severities.split(","):
            entry = entry.strip()
            if not entry:
                continue
            code, _, level = entry.partition("=")
            if level not in (Severity.ERROR, Severity.WARNING, Severity.NOTE):
                raise ValueError(
                    f"bad severity override {entry!r} "
                    f"(want CODE=error|warning|note)"
                )
            overrides[code.strip()] = level
        return cls(disabled=disabled, severities=tuple(sorted(overrides.items())))


_DEFAULT = RuleRegistry()


def default_registry() -> RuleRegistry:
    """The process-wide registry holding every built-in rule."""
    return _DEFAULT


def register(
    code: str,
    slug: str,
    severity: str,
    summary: str,
    paper: str,
) -> Callable[[Callable], Callable]:
    """Decorator: define a rule's check function and register it."""

    def decorate(function: Callable) -> Callable:
        rule = _DEFAULT.add(Rule(code, slug, severity, summary, paper, function))
        # Check functions reference their own identity when reporting;
        # note that per-run severity overrides are applied by the runner
        # (which rebinds ``_rule`` around the call), not here.
        function._rule = rule
        return function

    return decorate
