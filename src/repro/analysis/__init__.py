"""repro.analysis — ``tlp-lint``, the multi-pass static analyzer.

The paper's guarantees hold only under side conditions (uniform
polymorphism, guardedness, inhabited declared types, sub→super
information flow) that are themselves computable static analyses.  This
package runs them as a rule registry **before** the type checker:

* every pass is a :class:`~repro.analysis.registry.Rule` with a stable
  ``TLP1xx/2xx/3xx`` code, a default severity, and the paper section it
  enforces;
* findings are ordinary :class:`~repro.checker.diagnostics.Diagnostic`
  objects — code, severity, source *span* (start and end), and
  machine-applicable :class:`~repro.checker.diagnostics.FixIt`
  suggestions;
* :func:`to_sarif` renders findings as SARIF 2.1.0 for CI upload;
* the registry's :meth:`~repro.analysis.registry.RuleRegistry.fingerprint`
  identifies the enabled rule set — the batch service folds it into its
  result-cache keys so reconfiguring the linter invalidates exactly the
  affected verdicts.

Quick use::

    from repro.analysis import lint_text

    report = lint_text(open("prog.tlp").read(), path="prog.tlp")
    for diagnostic in report.diagnostics:
        print(f"prog.tlp:{diagnostic}")

Telemetry (``repro.obs``): each run times ``analysis.lint`` and bumps
``analysis.files``; every finding bumps ``analysis.rule.<CODE>`` —
enabled-rule activity shows up in the same ``--stats`` table as the
subtype engine and the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..checker.diagnostics import Diagnostic, DiagnosticBag, Severity
from ..lang.ast import Position, SourceFile
from ..lang.lexer import LexError
from ..lang.parser import ParseError, parse_file
from ..obs import METRICS
from .context import LintContext
from .registry import (
    ANALYZER_VERSION,
    SYNTAX_ERROR_CODE,
    LintConfig,
    Rule,
    RuleRegistry,
    default_registry,
)
from .sarif import SARIF_SCHEMA_URI, SARIF_VERSION, to_sarif

# Importing the rule modules registers their rules (in code order at
# selection time, so import order is irrelevant).
from . import constraints as _constraints  # noqa: F401  (registration)
from . import clauses as _clauses  # noqa: F401  (registration)
from . import flow as _flow  # noqa: F401  (registration)
from . import modes as _modes  # noqa: F401  (registration)
from .absint import rules as _absint_rules  # noqa: F401  (registration)
from .polytypes import rules as _polytypes_rules  # noqa: F401  (registration)

__all__ = [
    "ANALYZER_VERSION",
    "SYNTAX_ERROR_CODE",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "LintConfig",
    "LintReport",
    "Rule",
    "RuleRegistry",
    "default_registry",
    "lint_source",
    "lint_text",
    "ruleset_fingerprint",
    "to_sarif",
]


@dataclass
class LintReport:
    """Everything one lint run produced for one file."""

    path: str = "<text>"
    diagnostics: List[Diagnostic] = field(default_factory=list)
    fingerprint: str = ""

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True iff no error-severity findings."""
        return not self.errors

    def render(self) -> str:
        return "\n".join(str(d) for d in self.diagnostics)


def _strip_position_prefix(message: str, line: int, column: int) -> str:
    """Drop the parser's embedded ``line:col:`` — the Diagnostic carries it."""
    prefix = f"{line}:{column}: "
    return message[len(prefix):] if message.startswith(prefix) else message


def ruleset_fingerprint(
    config: Optional[LintConfig] = None,
    registry: Optional[RuleRegistry] = None,
) -> str:
    """The enabled rule set's stable digest (for cache keys)."""
    return (registry or default_registry()).fingerprint(config or LintConfig())


def lint_source(
    source: SourceFile,
    path: str = "<text>",
    config: Optional[LintConfig] = None,
    registry: Optional[RuleRegistry] = None,
) -> LintReport:
    """Run every enabled rule over a parsed source file."""
    registry = registry or default_registry()
    config = config or LintConfig()
    report = LintReport(path=path, fingerprint=registry.fingerprint(config))
    with METRICS.time("analysis.lint"):
        ctx = LintContext.build(source, path=path)
        for rule in registry.selected(config):
            before = len(ctx.bag)
            # Rebind the check function's rule so severity overrides
            # apply to findings reported through ``check._rule``.
            rule.check._rule = rule
            with METRICS.time(f"analysis.pass.{rule.code}"):
                rule.check(ctx)
            fired = len(ctx.bag) - before
            if fired and METRICS.enabled:
                METRICS.inc(f"analysis.rule.{rule.code}", fired)
    if METRICS.enabled:
        METRICS.inc("analysis.files")
        if ctx.bag.has_errors:
            METRICS.inc("analysis.files_with_errors")
    report.diagnostics = list(ctx.bag)
    return report


def lint_text(
    text: str,
    path: str = "<text>",
    config: Optional[LintConfig] = None,
    registry: Optional[RuleRegistry] = None,
) -> LintReport:
    """Parse and lint ``text``; syntax errors become ``TLP001`` findings."""
    registry = registry or default_registry()
    config = config or LintConfig()
    try:
        with METRICS.time("analysis.parse"):
            source = parse_file(text)
    except ParseError as error:
        report = LintReport(path=path, fingerprint=registry.fingerprint(config))
        token = error.token
        position = Position(
            token.line,
            token.column,
            token.end_line if token.end_line is not None else token.line,
            token.end_column
            if token.end_column is not None
            else token.column + max(1, len(token.text)),
        )
        bag = DiagnosticBag()
        bag.error(
            _strip_position_prefix(str(error), token.line, token.column),
            position,
            code=SYNTAX_ERROR_CODE,
        )
        report.diagnostics = list(bag)
        if METRICS.enabled:
            METRICS.inc(f"analysis.rule.{SYNTAX_ERROR_CODE}")
            METRICS.inc("analysis.files")
            METRICS.inc("analysis.files_with_errors")
        return report
    except LexError as error:
        report = LintReport(path=path, fingerprint=registry.fingerprint(config))
        bag = DiagnosticBag()
        bag.error(
            _strip_position_prefix(str(error), error.line, error.column),
            Position(error.line, error.column, error.line, error.column + 1),
            code=SYNTAX_ERROR_CODE,
        )
        report.diagnostics = list(bag)
        if METRICS.enabled:
            METRICS.inc(f"analysis.rule.{SYNTAX_ERROR_CODE}")
            METRICS.inc("analysis.files")
            METRICS.inc("analysis.files_with_errors")
        return report
    return lint_source(source, path=path, config=config, registry=registry)
