"""``tlp-lint`` — run the static analyzer over files or directories.

Quick use::

    tlp-lint prog.tlp                       # human-readable findings
    tlp-lint examples/ --format sarif       # SARIF 2.1.0 on stdout
    tlp-lint corpus/ --disable TLP203       # silence singleton warnings
    tlp-lint prog.tlp --severity TLP301=error
    tlp-lint --list-rules                   # the rule catalogue

Directory arguments are walked recursively for ``*.tlp``.  When a
``tlp-project.json`` manifest is present (auto-detected in a single
directory argument, or explicit via ``--manifest``), corpus members are
linted with the shared declaration prelude prepended — exactly the text
the type checker sees — while files the manifest *excludes* are still
linted standalone: lint wants to see every source in the tree, including
fixtures a corpus deliberately keeps away from type checking.

Exit status: 0 when no error-severity findings, 1 when at least one
error was reported, 2 on usage errors (unreadable paths, bad flags).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from pathlib import Path

from .. import obs
from ..checker.diagnostics import Diagnostic
from ..obs import METRICS
from ..service.project import (
    MANIFEST_NAME,
    ProjectError,
    discover_tlp_files,
    load_project,
)
from . import LintConfig, LintReport, default_registry, lint_text, to_sarif

__all__ = ["main"]


def _build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tlp-lint",
        description=(
            "Static analysis for TLP programs: constraint-set hygiene, "
            "clause checks, and subtype information-flow warnings, with "
            "stable TLPxxx codes and fix-it suggestions."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files/directories to lint (directories are walked for *.tlp)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="explicit tlp-project.json manifest (members get the shared prelude)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--disable",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to disable (e.g. TLP203,TLP104)",
    )
    parser.add_argument(
        "--severity",
        default="",
        metavar="OVERRIDES",
        help="comma-separated severity overrides (e.g. TLP301=error)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--infer",
        action="store_true",
        help=(
            "run whole-program success-set inference and print "
            "reconstructed PRED declarations for undeclared predicates "
            "(included under \"inferred\" in --format json)"
        ),
    )
    parser.add_argument(
        "--no-fixits",
        action="store_true",
        help="omit fix-it suggestion lines from text output",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="collect telemetry and print the metrics table",
    )
    parser.add_argument(
        "--no-intern",
        action="store_true",
        help=(
            "disable the hash-consing term intern table for this run "
            "(differential-testing escape hatch; seed representation)"
        ),
    )
    parser.add_argument(
        "--no-shared-memo",
        action="store_true",
        help=(
            "disable the process-wide shared subtype memo; every engine "
            "keeps its own cold memo (seed behaviour)"
        ),
    )
    parser.add_argument(
        "--no-automata",
        action="store_true",
        help=(
            "disable the compiled tree automata for ground subtype/match "
            "queries; every goal runs the template-expansion path "
            "(seed behaviour)"
        ),
    )
    return parser


def _render_text(
    report: LintReport, show_fixits: bool, out=None
) -> None:
    out = out or sys.stdout
    for diagnostic in report.diagnostics:
        print(f"{report.path}:{diagnostic}", file=out)
        if show_fixits:
            for fixit in diagnostic.fixits:
                print(f"    fix: {fixit.description}", file=out)


def _diagnostic_payload(diagnostic: Diagnostic) -> dict:
    position = diagnostic.position
    payload = {
        "code": diagnostic.code,
        "severity": diagnostic.severity,
        "message": diagnostic.message,
    }
    if position is not None:
        payload["line"] = position.line
        payload["column"] = position.column
        if position.has_span:
            payload["end_line"] = position.end_line
            payload["end_column"] = position.end_column
    if diagnostic.fixits:
        payload["fixits"] = [fixit.description for fixit in diagnostic.fixits]
    return payload


def _find_manifests(paths: List[str]) -> List[Path]:
    """Every ``tlp-project.json`` at or below the given paths, sorted."""
    found = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.update(path.rglob(MANIFEST_NAME))
    return sorted(found)


def _collect(
    paths: List[str], manifest: Optional[str]
) -> List[Tuple[str, str]]:
    """Expand CLI paths into ``(display, text)`` lint jobs.

    Every ``tlp-project.json`` found under the walked paths (or named by
    ``--manifest``) is honoured: its members are linted with the shared
    prelude prepended — the checker's view of them — while every other
    ``*.tlp``, including manifest-excluded fixtures, is linted
    standalone.
    """
    walk = list(paths)
    manifests = _find_manifests(paths)
    if manifest is not None:
        explicit = Path(manifest)
        if explicit not in manifests:
            manifests.insert(0, explicit)
        if not walk:
            walk = [str(explicit.parent)]
    jobs: List[Tuple[str, str]] = []
    claimed = set()
    for manifest_path in manifests:
        project = load_project([], manifest=str(manifest_path))
        for member in project.files:
            resolved = member.path.resolve()
            if resolved in claimed:
                continue
            claimed.add(resolved)
            jobs.append((str(member.path), project.effective_text(member)))
        claimed.update(entry.path.resolve() for entry in project.shared)
    for path in discover_tlp_files(walk):
        if path.resolve() in claimed:
            continue
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise ProjectError(f"{path}: cannot read: {error}") from error
        jobs.append((str(path), text))
    jobs.sort(key=lambda job: job[0])
    return jobs


def _run(arguments) -> int:
    try:
        config = LintConfig.from_spec(arguments.disable, arguments.severity)
    except ValueError as error:
        print(f"tlp-lint: {error}", file=sys.stderr)
        return 2
    registry = default_registry()

    if arguments.list_rules:
        for rule in registry.selected(config):
            print(rule)
            print(f"    paper: {rule.paper}")
        return 0

    if not arguments.paths and arguments.manifest is None:
        print("tlp-lint: no input files (pass files or directories)",
              file=sys.stderr)
        return 2
    try:
        jobs = _collect(arguments.paths, arguments.manifest)
    except ProjectError as error:
        print(f"tlp-lint: {error}", file=sys.stderr)
        return 2
    if not jobs:
        print("tlp-lint: no .tlp files found", file=sys.stderr)
        return 2

    reports: List[LintReport] = []
    inferred: dict = {}
    for display, text in jobs:
        reports.append(
            lint_text(text, path=display, config=config, registry=registry)
        )
        if arguments.infer:
            from .absint import infer_text

            inference = infer_text(text, path=display)
            if inference is not None:
                lines = inference.declaration_lines()
                if lines:
                    inferred[display] = lines

    findings: List[Tuple[str, Diagnostic]] = [
        (report.path, diagnostic)
        for report in reports
        for diagnostic in report.diagnostics
    ]
    errors = sum(len(report.errors) for report in reports)
    warnings = sum(len(report.warnings) for report in reports)

    if arguments.format == "sarif":
        document = to_sarif(findings, registry, config)
        json.dump(document, sys.stdout, indent=2)
        sys.stdout.write("\n")
    elif arguments.format == "json":
        payload = {
            "fingerprint": registry.fingerprint(config),
            "files": [
                {
                    "path": report.path,
                    "ok": report.ok,
                    "diagnostics": [
                        _diagnostic_payload(d) for d in report.diagnostics
                    ],
                    **(
                        {"inferred": inferred[report.path]}
                        if report.path in inferred
                        else {}
                    ),
                }
                for report in reports
            ],
            "errors": errors,
            "warnings": warnings,
        }
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for report in reports:
            _render_text(report, show_fixits=not arguments.no_fixits)
            for line in inferred.get(report.path, []):
                print(f"{report.path}: inferred {line}")
        noun = "file" if len(reports) == 1 else "files"
        print(
            f"linted {len(reports)} {noun}: "
            f"{errors} error(s), {warnings} warning(s)"
        )
    return 1 if errors else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (installed as the ``tlp-lint`` console script)."""
    from ..core.automata import AUTOMATA
    from ..core.shared_memo import SHARED_MEMO
    from ..terms.term import set_interning

    parser = _build_argument_parser()
    arguments = parser.parse_args(argv)
    # Escape hatches (restored on exit so library callers of main() keep
    # their process-wide settings): the analyzer's typed rules — TLP3xx
    # flow, TLP4xx success sets, TLP6xx constraint solving — all lean on
    # the subtype engine, so the same seed-behaviour switches the checker
    # exposes matter for differential runs of the linter too.
    intern_before = set_interning(False) if arguments.no_intern else None
    memo_before = (
        SHARED_MEMO.set_enabled(False) if arguments.no_shared_memo else None
    )
    automata_before = (
        AUTOMATA.set_enabled(False) if arguments.no_automata else None
    )
    try:
        if not arguments.stats:
            return _run(arguments)
        was_enabled = METRICS.enabled
        obs.reset()
        METRICS.enabled = True
        try:
            exit_code = _run(arguments)
            print(file=sys.stderr)
            print(obs.render_summary(), file=sys.stderr)
            return exit_code
        finally:
            METRICS.enabled = was_enabled
    finally:
        if intern_before is not None:
            set_interning(intern_before)
        if memo_before is not None:
            SHARED_MEMO.set_enabled(memo_before)
        if automata_before is not None:
            AUTOMATA.set_enabled(automata_before)


if __name__ == "__main__":
    sys.exit(main())
