"""``tlp-serve`` — the long-lived check daemon.

The daemon keeps checker state *hot* across requests: checked modules —
with their parsed declarations, their per-file ``WellTypedChecker``
matcher memos, and the module-wide shared ``SubtypeEngine`` memo table —
stay resident in an LRU keyed by content digest, so re-checking an
unchanged file is a dictionary lookup, and the optional persistent
result cache (``--cache-dir``) is shared with ``tlp-batch``: entries
written by either surface are served by both.

Protocol: line-delimited JSON over stdin/stdout.  One request object per
line, one response object per line, in order.  Requests::

    {"op": "check", "path": "examples/programs/append.tlp"}
    {"op": "check", "text": "FUNC nil. ..."}
    {"op": "lint", "path": "examples/programs/append.tlp"}
    {"op": "lint", "text": "FUNC nil. ...", "disable": "TLP203"}
    {"op": "infer", "path": "examples/programs/append.tlp"}
    {"op": "solve", "path": "examples/corpus/lint/polytypes.tlp"}
    {"op": "stats"}
    {"op": "metrics"}                     # Prometheus text exposition
    {"op": "health"}                      # uptime, LRU occupancy, caches
    {"op": "invalidate"}                  # drop all hot/cached state
    {"op": "invalidate", "path": "..."}   # drop one file's state
    {"op": "shutdown"}

Responses always carry ``"ok"`` (protocol-level success — an ill-typed
file is still ``"ok": true``) and echo ``"op"``.  A ``check`` response
reports ``"well_typed"``, ``"diagnostics"``, clause/query counts, and
``"source"``: ``"hot"`` (module LRU), ``"cache"`` (persistent store), or
``"checked"`` (full Definition 16 run).  A ``lint`` response carries the
static analyzer's findings as structured objects (``code``, ``severity``,
``message``, position fields, fix-it descriptions) plus error/warning
counts and the rule-set ``fingerprint``.  An ``infer`` response carries
the success-set analysis: ``"declarations"`` (reconstructed ``PRED``
lines for undeclared predicates, checker-validated where possible) and
``"success_sets"`` (the rendered per-predicate inferred types).  A
``solve`` response carries the polymorphic subtype-constraint solver's
view of the file: the candidate ground-type lattice and, per clause or
query that involves a polymorphic declaration or a built-in constraint
predicate, the solved type-variable domains, forced equalities, and
unsatisfiability witnesses.  Malformed lines get an
``{"ok": false, "error": ...}`` response rather than killing the daemon.

Verdict state is *content-addressed*: the hot LRU and the persistent
cache are keyed by the SHA-256 of the checked text (never by path), and
the path→digest stat cache that lets a repeat check skip re-reading an
unchanged file is invalidated by any change to the file's
``(mtime_ns, size)`` signature — a file edited on disk can never be
served a stale verdict.

On SIGTERM the daemon *drains*: the in-flight request's response is
written, then the loop stops and ``CheckService.close()`` persists the
result cache and flushes/closes every trace sink, so traces and metrics
survive orderly restarts.  (``tlp-aserve`` — the asyncio multi-client
server in :mod:`repro.service.aserver` — wraps this same service with
concurrent transports, request cancellation, and an LSP adapter.)

A worked session lives in ``docs/service.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Tuple

from .. import obs
from ..analysis import LintConfig, lint_text
from ..checker.cancel import CancelToken, CheckCancelled
from ..checker.diagnostics import Severity
from ..checker.frontend import CheckedModule, check_text
from ..obs import METRICS, TRACER, CacheProbeEvent
from .cache import CHECKER_VERSION, CachedResult, ResultCache
from .project import EMPTY_DECLS_DIGEST, fingerprint

__all__ = ["CheckService", "serve", "start_metrics_server", "main"]

#: Checked modules kept resident (each holds parsed declarations plus
#: the matcher/subtype memo tables grown while checking it).
HOT_MODULE_LIMIT = 256

#: Path → (stat signature, digest) entries kept so an unchanged file can
#: be served from the hot LRU without re-reading its bytes.
STAT_CACHE_LIMIT = 4096


class CheckService:
    """The daemon's brain, independent of any transport."""

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir else None
        if self.cache is not None:
            # Warm-start the compiled-automata store from a spill left by
            # an earlier process (version-fenced like the result cache).
            from ..core.automata import AUTOMATA

            AUTOMATA.ensure_version(CHECKER_VERSION)
            AUTOMATA.load_spill(self.cache.cache_dir)
        self._hot: "OrderedDict[str, Tuple[str, CheckedModule]]" = OrderedDict()
        #: path → ((st_mtime_ns, st_size), digest) of the last read, so a
        #: repeat ``check`` on an *unchanged* file skips the re-read while
        #: a file whose bytes changed on disk can never be served stale:
        #: the hot LRU and the persistent cache are keyed by content
        #: digest, and the digest is only trusted while the stat
        #: signature matches.
        self._stat: "OrderedDict[str, Tuple[Tuple[int, int], str]]" = OrderedDict()
        #: One lock around all hot/stat/cache state: requests may be
        #: handled from many executor threads (the async server), and the
        #: expensive work — ``check_text`` — runs outside it.
        self._lock = threading.RLock()
        self.requests = 0
        self.checks = 0
        self.lints = 0
        self.infers = 0
        self.solves = 0
        self.hot_hits = 0
        self.cache_hits = 0
        self.cancellations = 0
        self.errors = 0
        self.started_at = time.time()
        #: Set by the SIGTERM handler (or a transport): finish the
        #: request in flight, then stop accepting new ones.
        self.draining = False
        #: True while ``handle`` is running a request (drain coordination).
        self.busy = False

    # -- request dispatch ----------------------------------------------------

    def handle(
        self, request: Any, cancel: Optional[CancelToken] = None
    ) -> Dict[str, Any]:
        """One request object in, one response object out (never raises).

        ``cancel`` (used by the async server) aborts an in-flight
        ``check`` at its next clause-boundary checkpoint; the response is
        then ``{"ok": false, "cancelled": true, ...}``.
        """
        self.requests += 1
        if METRICS.enabled:
            METRICS.inc("service.daemon.requests")
        if not isinstance(request, dict):
            return self._error(None, "request must be a JSON object")
        op = request.get("op")
        try:
            if op == "check":
                return self._op_check(request, cancel)
            if op == "lint":
                return self._op_lint(request)
            if op == "infer":
                return self._op_infer(request)
            if op == "solve":
                return self._op_solve(request)
            if op == "stats":
                return self._op_stats()
            if op == "metrics":
                return self._op_metrics()
            if op == "health":
                return self._op_health()
            if op == "invalidate":
                return self._op_invalidate(request)
            if op == "shutdown":
                return {"ok": True, "op": "shutdown", "bye": True}
            return self._error(op, f"unknown op {op!r}")
        except CheckCancelled as cancelled:
            self.cancellations += 1
            if METRICS.enabled:
                METRICS.inc("service.daemon.cancelled")
            return {
                "ok": False,
                "op": op,
                "cancelled": True,
                "error": str(cancelled),
            }
        except Exception as error:  # a bug must not take the daemon down
            return self._error(op, f"internal error: {error}")

    def _error(self, op: Optional[Any], message: str) -> Dict[str, Any]:
        self.errors += 1
        return {"ok": False, "op": op, "error": message}

    # -- ops -----------------------------------------------------------------

    def _stat_digest(self, path: str) -> Optional[str]:
        """The last-read digest of ``path`` iff its stat signature
        (mtime_ns, size) is unchanged — the key that lets a repeat check
        of an on-disk file hit the hot LRU without re-reading, while any
        write to the file (new signature) forces a fresh read and
        fingerprint.  Never consulted as a verdict source by itself: it
        only *names* a content digest, and all verdict state is keyed by
        that digest."""
        try:
            stat = os.stat(path)
        except OSError:
            return None
        signature = (stat.st_mtime_ns, stat.st_size)
        with self._lock:
            entry = self._stat.get(str(path))
            if entry is not None and entry[0] == signature:
                self._stat.move_to_end(str(path))
                return entry[1]
        return None

    def _record_stat(
        self,
        path: str,
        before: Optional[Tuple[int, int]],
        digest: str,
    ) -> None:
        """Remember ``path``'s stat signature for ``digest``.

        ``before`` is the signature taken *before* the read; if the file
        changed while we were reading it (signature moved), nothing is
        recorded — the next check re-reads rather than trusting a
        signature that may not describe the text we fingerprinted.
        """
        try:
            stat = os.stat(path)
        except OSError:
            return
        signature = (stat.st_mtime_ns, stat.st_size)
        if before is not None and signature != before:
            return
        with self._lock:
            self._stat[str(path)] = (signature, digest)
            self._stat.move_to_end(str(path))
            while len(self._stat) > STAT_CACHE_LIMIT:
                self._stat.popitem(last=False)

    def _read_and_fingerprint(
        self, path: str
    ) -> Tuple[Optional[str], Optional[str]]:
        """Read ``path`` → (text, digest), recording the stat entry.
        Returns ``(None, error_message)`` when the file is unreadable."""
        try:
            before_stat = os.stat(path)
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            return None, f"{path}: cannot read: {error}"
        digest = fingerprint(text)
        self._record_stat(
            path, (before_stat.st_mtime_ns, before_stat.st_size), digest
        )
        return text, digest

    def _op_check(
        self, request: Dict[str, Any], cancel: Optional[CancelToken] = None
    ) -> Dict[str, Any]:
        path = request.get("path")
        text = request.get("text")
        if (path is None) == (text is None):
            return self._error("check", "check needs exactly one of 'path' or 'text'")
        display = str(path) if path is not None else "<text>"
        if path is not None:
            digest = self._stat_digest(str(path))
            if digest is None:
                text, read_error_or_digest = self._read_and_fingerprint(str(path))
                if text is None:
                    return self._error("check", read_error_or_digest or "")
                digest = read_error_or_digest
        else:
            assert isinstance(text, str)
            digest = fingerprint(text)
        assert isinstance(digest, str)
        self.checks += 1

        started = time.perf_counter()
        with self._lock:
            hot = self._hot.get(digest)
            if hot is not None:
                self._hot.move_to_end(digest)
        if TRACER.enabled:
            TRACER.point(CacheProbeEvent, cache="service.hot_modules", hit=hot is not None)
        if hot is not None:
            self.hot_hits += 1
            if METRICS.enabled:
                METRICS.inc("service.daemon.hot_hits")
            _, module = hot
            return self._check_response(
                display, digest, module.ok,
                [str(d) for d in module.diagnostics],
                len(module.program), len(module.queries),
                source="hot", duration_s=time.perf_counter() - started,
            )

        if self.cache is not None:
            with self._lock:
                cached = self.cache.get(digest, EMPTY_DECLS_DIGEST)
            if cached is not None:
                self.cache_hits += 1
                return self._check_response(
                    display, digest, cached.ok, list(cached.diagnostics),
                    cached.clauses, cached.queries,
                    source="cache", duration_s=time.perf_counter() - started,
                )

        if text is None:
            # The stat cache knew the digest but nothing warm holds it
            # (fresh process, evicted entry): read the bytes now.
            assert path is not None
            text, fresh = self._read_and_fingerprint(str(path))
            if text is None:
                return self._error("check", fresh or "")
            assert isinstance(fresh, str)
            digest = fresh  # whatever is on disk *now* is what we check

        module = check_text(text, cancel=cancel)
        duration = time.perf_counter() - started
        diagnostics = [str(d) for d in module.diagnostics]
        with self._lock:
            self._remember(digest, display, module)
            if self.cache is not None:
                self.cache.put(
                    digest,
                    EMPTY_DECLS_DIGEST,
                    CachedResult(
                        ok=module.ok,
                        diagnostics=tuple(diagnostics),
                        clauses=len(module.program),
                        queries=len(module.queries),
                        duration_s=duration,
                        checked_at=ResultCache.now(),
                    ),
                    display=display,
                )
                self.cache.save()
        return self._check_response(
            display, digest, module.ok, diagnostics,
            len(module.program), len(module.queries),
            source="checked", duration_s=duration,
        )

    def _remember(self, digest: str, display: str, module: CheckedModule) -> None:
        self._hot[digest] = (display, module)
        self._hot.move_to_end(digest)
        while len(self._hot) > HOT_MODULE_LIMIT:
            self._hot.popitem(last=False)
        if METRICS.enabled:
            METRICS.gauge_max("service.daemon.hot_modules", len(self._hot))

    @staticmethod
    def _check_response(
        display: str,
        digest: str,
        well_typed: bool,
        diagnostics: List[str],
        clauses: int,
        queries: int,
        source: str,
        duration_s: float,
    ) -> Dict[str, Any]:
        return {
            "ok": True,
            "op": "check",
            "path": display,
            "digest": digest,
            "well_typed": well_typed,
            "diagnostics": diagnostics,
            "clauses": clauses,
            "queries": queries,
            "source": source,
            "duration_s": duration_s,
        }

    def _op_lint(self, request: Dict[str, Any]) -> Dict[str, Any]:
        path = request.get("path")
        text = request.get("text")
        if (path is None) == (text is None):
            return self._error("lint", "lint needs exactly one of 'path' or 'text'")
        display = str(path) if path is not None else "<text>"
        if path is not None:
            try:
                text = Path(path).read_text(encoding="utf-8")
            except OSError as error:
                return self._error("lint", f"{path}: cannot read: {error}")
        assert isinstance(text, str)
        try:
            config = LintConfig.from_spec(
                str(request.get("disable", "")),
                str(request.get("severity", "")),
            )
        except ValueError as error:
            return self._error("lint", str(error))
        self.lints += 1
        if METRICS.enabled:
            METRICS.inc("service.daemon.lints")
        started = time.perf_counter()
        report = lint_text(text, path=display, config=config)
        findings = []
        for diagnostic in report.diagnostics:
            finding: Dict[str, Any] = {
                "code": diagnostic.code,
                "severity": diagnostic.severity,
                "message": diagnostic.message,
            }
            position = diagnostic.position
            if position is not None:
                finding["line"] = position.line
                finding["column"] = position.column
                if position.has_span:
                    finding["end_line"] = position.end_line
                    finding["end_column"] = position.end_column
            if diagnostic.fixits:
                finding["fixits"] = [
                    fixit.description for fixit in diagnostic.fixits
                ]
            findings.append(finding)
        return {
            "ok": True,
            "op": "lint",
            "path": display,
            "digest": fingerprint(text),
            "fingerprint": report.fingerprint,
            "findings": findings,
            "errors": sum(
                1 for d in report.diagnostics if d.severity == Severity.ERROR
            ),
            "warnings": sum(
                1 for d in report.diagnostics if d.severity == Severity.WARNING
            ),
            "duration_s": time.perf_counter() - started,
        }

    def _op_infer(self, request: Dict[str, Any]) -> Dict[str, Any]:
        path = request.get("path")
        text = request.get("text")
        if (path is None) == (text is None):
            return self._error("infer", "infer needs exactly one of 'path' or 'text'")
        display = str(path) if path is not None else "<text>"
        if path is not None:
            try:
                text = Path(path).read_text(encoding="utf-8")
            except OSError as error:
                return self._error("infer", f"{path}: cannot read: {error}")
        assert isinstance(text, str)
        from ..analysis.absint import infer_text

        self.infers += 1
        if METRICS.enabled:
            METRICS.inc("service.daemon.infers")
        started = time.perf_counter()
        inference = infer_text(text, path=display)
        if inference is None:
            return self._error(
                "infer",
                f"{display}: does not parse or falls outside the "
                f"uniform + guarded fragment",
            )
        success_sets: List[str] = []
        for indicator in sorted(inference.success):
            success_sets.extend(inference.success[indicator].render())
        return {
            "ok": True,
            "op": "infer",
            "path": display,
            "digest": fingerprint(text),
            "declarations": inference.declaration_lines(),
            "success_sets": success_sets,
            "duration_s": time.perf_counter() - started,
        }

    def _op_solve(self, request: Dict[str, Any]) -> Dict[str, Any]:
        path = request.get("path")
        text = request.get("text")
        if (path is None) == (text is None):
            return self._error("solve", "solve needs exactly one of 'path' or 'text'")
        display = str(path) if path is not None else "<text>"
        if path is not None:
            try:
                text = Path(path).read_text(encoding="utf-8")
            except OSError as error:
                return self._error("solve", f"{path}: cannot read: {error}")
        assert isinstance(text, str)
        from ..analysis.polytypes import solve_text
        from ..core.declarations import DeclarationError
        from ..lang.lexer import LexError
        from ..lang.parser import ParseError

        self.solves += 1
        if METRICS.enabled:
            METRICS.inc("service.daemon.solves")
        started = time.perf_counter()
        try:
            solved = solve_text(text, path=display)
        except (LexError, ParseError, DeclarationError) as error:
            return self._error("solve", f"{display}: {error}")
        if solved is None:
            return self._error(
                "solve",
                f"{display}: no polymorphic declarations or built-in "
                f"constraint goals (nothing for the subtype solver to do)",
            )
        return {
            "ok": True,
            "op": "solve",
            "path": display,
            "digest": fingerprint(text),
            "candidates": solved["candidates"],
            "items": solved["items"],
            "duration_s": time.perf_counter() - started,
        }

    def _op_stats(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {
            "requests": self.requests,
            "checks": self.checks,
            "lints": self.lints,
            "infers": self.infers,
            "solves": self.solves,
            "hot_hits": self.hot_hits,
            "cache_hits": self.cache_hits,
            "cancellations": self.cancellations,
            "errors": self.errors,
            "hot_modules": len(self._hot),
            "stat_entries": len(self._stat),
            "uptime_s": time.time() - self.started_at,
        }
        if self.cache is not None:
            stats["cache_entries"] = len(self.cache)
            stats["cache_probe_hits"] = self.cache.hits
            stats["cache_probe_misses"] = self.cache.misses
        response: Dict[str, Any] = {"ok": True, "op": "stats", "stats": stats}
        if METRICS.enabled:
            response["telemetry"] = obs.summary()
        return response

    def _runtime_gauges(self) -> Dict[str, float]:
        """Point-in-time daemon state injected into every exposition.

        These live outside the telemetry registry (they are properties of
        the daemon, not accumulated samples), so ``metrics`` responses
        carry them even when ``--stats`` is off and the registry is
        empty.
        """
        from ..core.shared_memo import SHARED_MEMO

        gauges: Dict[str, float] = {
            "daemon.uptime_seconds": time.time() - self.started_at,
            "daemon.requests": self.requests,
            "daemon.errors": self.errors,
            "daemon.hot_modules": len(self._hot),
            "daemon.hot_module_limit": HOT_MODULE_LIMIT,
            "daemon.hot_module_occupancy": len(self._hot) / HOT_MODULE_LIMIT,
        }
        if self.cache is not None:
            gauges["daemon.cache_entries"] = len(self.cache)
        memo = SHARED_MEMO.stats()
        gauges["subtype.shared_memo.entries"] = memo["entries"]
        gauges["subtype.shared_memo.scopes"] = memo["scopes"]
        gauges["subtype.shared_memo.attachments"] = memo["attachments"]
        from ..core.automata import AUTOMATA

        automata = AUTOMATA.stats()
        gauges["subtype.automaton.enabled"] = automata["enabled"]
        gauges["subtype.automaton.scopes"] = automata["scopes"]
        gauges["subtype.automaton.states"] = automata["states"]
        gauges["subtype.automaton.transitions"] = automata["transitions"]
        gauges["subtype.automaton.cache_entries"] = automata["cache_entries"]
        gauges["subtype.automaton.attachments"] = automata["attachments"]
        return gauges

    def _op_metrics(self) -> Dict[str, Any]:
        """Prometheus text exposition of the registry + daemon gauges."""
        body = obs.prometheus_text(extra_gauges=self._runtime_gauges())
        return {
            "ok": True,
            "op": "metrics",
            "content_type": obs.PROMETHEUS_CONTENT_TYPE,
            "body": body,
        }

    def _op_health(self) -> Dict[str, Any]:
        """Liveness/introspection: uptime, LRU occupancy, caches, memo."""
        from ..core.automata import AUTOMATA
        from ..core.shared_memo import SHARED_MEMO

        health: Dict[str, Any] = {
            "uptime_s": time.time() - self.started_at,
            "pid": os.getpid(),
            "requests": self.requests,
            "errors": self.errors,
            "telemetry_enabled": METRICS.enabled,
            "hot_modules": {
                "count": len(self._hot),
                "limit": HOT_MODULE_LIMIT,
                "occupancy": len(self._hot) / HOT_MODULE_LIMIT,
            },
            "shared_memo": SHARED_MEMO.stats(),
            "automata": AUTOMATA.stats(),
        }
        if self.cache is not None:
            health["cache"] = {
                "dir": str(self.cache.cache_dir),
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            }
        else:
            health["cache"] = None
        return {"ok": True, "op": "health", "health": health}

    def _op_invalidate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        path = request.get("path")
        display = str(path) if path is not None else None
        with self._lock:
            if display is None:
                dropped_hot = len(self._hot)
                self._hot.clear()
                self._stat.clear()
            else:
                stale = [
                    digest
                    for digest, (entry_display, _) in self._hot.items()
                    if entry_display == display
                ]
                for digest in stale:
                    del self._hot[digest]
                dropped_hot = len(stale)
                self._stat.pop(display, None)
            dropped_cached = 0
            if self.cache is not None:
                dropped_cached = self.cache.invalidate(display)
                self.cache.save()
        return {
            "ok": True,
            "op": "invalidate",
            "path": display,
            "dropped_hot": dropped_hot,
            "dropped_cached": dropped_cached,
        }

    def close(self) -> None:
        """Orderly teardown: persist the cache, flush/close trace sinks.

        Called on every daemon exit path — the ``shutdown`` op, SIGTERM
        drain, EOF on stdin, and the async server's graceful drain — so
        traces and the persistent cache survive restarts.
        """
        with self._lock:
            if self.cache is not None:
                self.cache.save()
                from ..core.automata import AUTOMATA

                AUTOMATA.save_spill(self.cache.cache_dir)
        obs.TRACER.close_sinks()


def start_metrics_server(service: CheckService, port: int):
    """Serve ``GET /metrics`` (Prometheus) and ``GET /health`` (JSON).

    A stdlib ``ThreadingHTTPServer`` on ``127.0.0.1`` running in a
    daemon thread — scrapers poll it while the main thread sits in the
    stdin request loop.  Handlers only *read* daemon state (the registry
    locks internally; the LRU/caches are scanned without mutation), so
    no coordination with the request loop is needed.  ``port=0`` binds
    an ephemeral port (tests); the bound port is on ``server_address``.
    Returns the server — call ``shutdown()`` then ``server_close()``.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class _MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            route = self.path.split("?", 1)[0].rstrip("/") or "/"
            if route == "/metrics":
                body = obs.prometheus_text(
                    extra_gauges=service._runtime_gauges()
                ).encode("utf-8")
                content_type = obs.PROMETHEUS_CONTENT_TYPE
            elif route == "/health":
                body = (
                    json.dumps(service._op_health()["health"]) + "\n"
                ).encode("utf-8")
                content_type = "application/json; charset=utf-8"
            else:
                self.send_error(404, "try /metrics or /health")
                return
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args: Any) -> None:
            pass  # scrape chatter must not pollute the protocol streams

    server = ThreadingHTTPServer(("127.0.0.1", port), _MetricsHandler)
    import threading

    thread = threading.Thread(
        target=server.serve_forever, name="tlp-metrics", daemon=True
    )
    thread.start()
    return server


def serve(service: CheckService, in_stream: IO[str], out_stream: IO[str]) -> int:
    """The request loop: one JSON object per line, until shutdown/EOF.

    ``service.draining`` (set by the SIGTERM handler, or an operator
    embedding the service) stops the loop *after* the in-flight request's
    response is written — orderly drain, never a half-written line.
    """
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            request: Any = json.loads(line)
        except json.JSONDecodeError as error:
            response = service._error(None, f"malformed JSON: {error}")
        else:
            service.busy = True
            try:
                response = service.handle(request)
            finally:
                service.busy = False
        out_stream.write(json.dumps(response) + "\n")
        out_stream.flush()
        if response.get("op") == "shutdown" and response.get("ok"):
            break
        if service.draining:
            break
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (installed as the ``tlp-serve`` console script)."""
    parser = argparse.ArgumentParser(
        prog="tlp-serve",
        description=(
            "Long-lived type-checking daemon: line-delimited JSON requests "
            "on stdin, one JSON response per line on stdout."
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="share a persistent result cache with tlp-batch",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="collect telemetry; 'stats' responses then embed a snapshot",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve GET /metrics (Prometheus text) and GET /health on "
            "127.0.0.1:PORT alongside the stdin protocol (0 = ephemeral)"
        ),
    )
    parser.add_argument(
        "--no-automata",
        action="store_true",
        help=(
            "disable the compiled tree automata for ground subtype/match "
            "queries (seed behaviour)"
        ),
    )
    arguments = parser.parse_args(argv)

    from ..core.automata import AUTOMATA

    was_enabled = METRICS.enabled
    if arguments.stats:
        obs.reset()
        METRICS.enabled = True
    automata_before = (
        AUTOMATA.set_enabled(False) if arguments.no_automata else None
    )
    service = CheckService(cache_dir=arguments.cache_dir)

    def _on_sigterm(signum: int, frame: Any) -> None:
        # Orderly restart contract: finish the request in flight (the
        # serve loop breaks after its response is written), and if the
        # loop is idle — blocked reading stdin — unwind immediately so
        # the finally block persists the cache and closes trace sinks.
        service.draining = True
        print("tlp-serve: SIGTERM — draining", file=sys.stderr, flush=True)
        if not service.busy:
            raise SystemExit(0)

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not on the main thread (embedded/test use): no handler
    metrics_server = None
    if arguments.metrics_port is not None:
        metrics_server = start_metrics_server(service, arguments.metrics_port)
    print(
        f"tlp-serve: ready (cache: {arguments.cache_dir or 'off'}, "
        f"pid {os.getpid()}"
        + (
            f", metrics http://127.0.0.1:{metrics_server.server_address[1]}"
            if metrics_server is not None
            else ""
        )
        + ")",
        file=sys.stderr,
        flush=True,
    )
    try:
        return serve(service, sys.stdin, sys.stdout)
    finally:
        if metrics_server is not None:
            metrics_server.shutdown()
            metrics_server.server_close()
        # Persist the cache and flush/close any attached trace sinks so
        # state survives orderly restarts (shutdown op, SIGTERM) *and*
        # mid-request deaths.
        service.close()
        if automata_before is not None:
            AUTOMATA.set_enabled(automata_before)
        METRICS.enabled = was_enabled


if __name__ == "__main__":
    sys.exit(main())
