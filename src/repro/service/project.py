"""The project model: a corpus of ``.tlp`` files with stable fingerprints.

A *project* is the unit the batch service operates on.  It comes from one
of two places:

* a **directory walk** — every ``*.tlp`` below the given paths, in
  sorted order (deterministic across runs and platforms); or
* an explicit **manifest**, a ``tlp-project.json`` file::

      {
        "name": "corpus",
        "include": ["programs", "extra/append.tlp"],
        "shared": ["decls.tlp"],
        "exclude": ["programs/broken.tlp"]
      }

  ``include`` entries (files or directories, relative to the manifest)
  select the members; ``shared`` names declaration files whose text is
  prepended — in order — to every member before checking, so a corpus
  can factor its ``FUNC``/``TYPE``/constraint/``PRED`` declarations into
  one prelude; ``exclude`` removes individual members.

Fingerprints are content-addressed SHA-256 digests.  Each member file
has its own digest, and the project carries a single *declarations
digest* over the shared prelude, so the cache key ``(file digest,
declarations digest, checker version)`` changes exactly when the file's
bytes, its shared declarations, or the checker itself change — the
invariant the persistent result cache relies on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "MANIFEST_NAME",
    "EMPTY_DECLS_DIGEST",
    "ProjectError",
    "ProjectFile",
    "Project",
    "fingerprint",
    "discover_tlp_files",
    "load_project",
]

MANIFEST_NAME = "tlp-project.json"


class ProjectError(Exception):
    """A corpus cannot be assembled (missing path, malformed manifest)."""


def fingerprint(text: str) -> str:
    """Content-addressed digest of one source text (SHA-256, hex)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


#: Declarations digest of a project with no shared prelude.
EMPTY_DECLS_DIGEST = fingerprint("")


@dataclass(frozen=True)
class ProjectFile:
    """One member of the corpus: where it lives, its text, its digest."""

    path: Path  # resolved location on disk
    display: str  # the name used in reports and cache entries
    text: str
    digest: str

    @classmethod
    def read(cls, path: Path, display: Optional[str] = None) -> "ProjectFile":
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise ProjectError(f"{path}: cannot read: {error}") from error
        return cls(path, display or str(path), text, fingerprint(text))


@dataclass
class Project:
    """An ordered corpus plus its shared declaration prelude."""

    name: str
    root: Path
    files: List[ProjectFile] = field(default_factory=list)
    shared: List[ProjectFile] = field(default_factory=list)

    @property
    def declarations_digest(self) -> str:
        """Fingerprint of the shared prelude (order-sensitive)."""
        if not self.shared:
            return EMPTY_DECLS_DIGEST
        joined = "\n".join(entry.text for entry in self.shared)
        return fingerprint(joined)

    def effective_text(self, member: ProjectFile) -> str:
        """The text actually checked: shared prelude, then the member."""
        if not self.shared:
            return member.text
        parts = [entry.text for entry in self.shared]
        parts.append(member.text)
        return "\n".join(parts)


def discover_tlp_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.tlp`` paths.

    Directories are walked recursively; explicit file arguments are kept
    whatever their suffix (so ``tlp-check odd.name`` still works).
    Duplicates (the same file reached twice) are dropped.
    """
    found: List[Path] = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            expanded: Iterable[Path] = sorted(path.rglob("*.tlp"))
        elif path.exists():
            expanded = [path]
        else:
            raise ProjectError(f"cannot read {raw}: no such file or directory")
        for member in expanded:
            key = member.resolve()
            if key in seen:
                continue
            seen.add(key)
            found.append(member)
    return found


def _load_manifest(manifest_path: Path) -> Project:
    try:
        raw = json.loads(manifest_path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ProjectError(f"{manifest_path}: cannot read: {error}") from error
    except json.JSONDecodeError as error:
        raise ProjectError(f"{manifest_path}: malformed manifest: {error}") from error
    if not isinstance(raw, dict):
        raise ProjectError(f"{manifest_path}: manifest must be a JSON object")
    root = manifest_path.parent
    name = raw.get("name") or root.name

    def as_list(key: str, default: List[str]) -> List[str]:
        value = raw.get(key, default)
        if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
            raise ProjectError(f"{manifest_path}: {key!r} must be a list of strings")
        return value

    include = as_list("include", ["."])
    shared_names = as_list("shared", [])
    exclude = {str((root / entry).resolve()) for entry in as_list("exclude", [])}

    project = Project(name=name, root=root)
    for entry in shared_names:
        path = root / entry
        if not path.exists():
            raise ProjectError(f"{manifest_path}: shared file {entry!r} not found")
        project.shared.append(ProjectFile.read(path, display=entry))
    shared_resolved = {entry.path.resolve() for entry in project.shared}

    members = discover_tlp_files([str(root / entry) for entry in include])
    for member in members:
        resolved = member.resolve()
        if str(resolved) in exclude or resolved in shared_resolved:
            continue
        try:
            display = str(member.relative_to(root))
        except ValueError:
            display = str(member)
        project.files.append(ProjectFile.read(member, display=display))
    return project


def load_project(
    paths: Sequence[str], manifest: Optional[str] = None
) -> Project:
    """Assemble a project from CLI arguments.

    Precedence: an explicit ``--manifest`` wins; otherwise, a single
    directory argument containing ``tlp-project.json`` is loaded as a
    manifest project; otherwise the arguments are walked directly.
    """
    if manifest is not None:
        return _load_manifest(Path(manifest))
    if len(paths) == 1:
        candidate = Path(paths[0]) / MANIFEST_NAME
        if candidate.is_file():
            return _load_manifest(candidate)
    members = discover_tlp_files(paths)
    root = Path(paths[0]) if len(paths) == 1 and Path(paths[0]).is_dir() else Path(".")
    project = Project(name=root.name or "corpus", root=root)
    for member in members:
        project.files.append(ProjectFile.read(member, display=str(member)))
    return project
