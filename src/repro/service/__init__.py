"""repro.service — the batch/incremental checking service.

The paper's Section 7 artifact is a whole-program checker; this package
grows it from a one-shot CLI into a service that checks *corpora* of
``.tlp`` files fast, repeatedly, and in parallel:

* :mod:`repro.service.project` — the **project model**: discover and
  order a corpus (explicit ``tlp-project.json`` manifest or directory
  walk), with a content-addressed fingerprint per file and a
  declarations fingerprint for shared preludes, so unchanged work is
  identifiable across runs.
* :mod:`repro.service.cache` — the **persistent result cache**: an
  on-disk JSON store keyed by ``(file hash, declarations hash, checker
  version)`` holding per-file verdicts and diagnostics.  Warm re-checks
  of an unchanged corpus skip the Definition 16 pipeline entirely;
  probes surface as ``cache_probe`` trace events and
  ``service.cache.*`` counters through :mod:`repro.obs`.
* :mod:`repro.service.runner` — the **execution layer**: a
  ``concurrent.futures`` worker pool checking independent files in
  parallel, with per-worker telemetry shipped back to the coordinator
  and merged losslessly into the process-wide registry.
* :mod:`repro.service.daemon` — ``tlp-serve``: a long-lived check
  daemon speaking line-delimited JSON (``check`` / ``stats`` /
  ``invalidate`` / ``shutdown``) that keeps parsed modules — including
  their shared subtype-engine memo tables — hot across requests.

Console entry points: ``tlp-batch`` (one batch run over a corpus) and
``tlp-serve`` (the daemon).  ``tlp-check`` gains ``--jobs``/
``--cache-dir`` flags that route through the same runner.
"""

from __future__ import annotations

from .cache import CHECKER_VERSION, CachedResult, ResultCache
from .project import (
    EMPTY_DECLS_DIGEST,
    Project,
    ProjectError,
    ProjectFile,
    discover_tlp_files,
    fingerprint,
    load_project,
)
from .report import build_run_report, write_run_report
from .runner import BatchReport, FileResult, run_batch

__all__ = [
    "build_run_report",
    "write_run_report",
    "CHECKER_VERSION",
    "CachedResult",
    "ResultCache",
    "EMPTY_DECLS_DIGEST",
    "Project",
    "ProjectError",
    "ProjectFile",
    "discover_tlp_files",
    "fingerprint",
    "load_project",
    "BatchReport",
    "FileResult",
    "run_batch",
]
