"""Machine-readable run reports for batch passes.

A *run report* is the JSON artifact one :func:`~repro.service.runner.run_batch`
pass leaves behind for dashboards, CI gates, and the benchmark harness:
wall time and the per-phase split, cache effectiveness, worker
utilisation, the top-N slowest files, and — when the run was observed —
summaries of every latency histogram the registry collected
(p50/p90/p99/min/max per metric, no raw buckets).

Producers: ``tlp-batch --report FILE`` and
``benchmarks/bench_batch.py``.  Consumers: ``benchmarks/summary.py``
(embeds the report in its payload) and
``benchmarks/check_regression.py --run-report`` (gates on the cache hit
rate).  The ``schema`` field versions the contract; consumers should
reject reports whose major scheme they do not know.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..obs.histogram import summarise
from .runner import BatchReport

__all__ = ["SCHEMA", "build_run_report", "write_run_report"]

#: Versioned contract name carried by every report.
SCHEMA = "tlp-run-report/1"


def build_run_report(
    report: BatchReport,
    project: Optional[Dict[str, Any]] = None,
    telemetry: Optional[Dict[str, Any]] = None,
    top_n: int = 10,
) -> Dict[str, Any]:
    """Assemble the run-report dict for one finished batch pass.

    ``project`` is an optional identity block (name, declaration digest)
    copied in verbatim; ``telemetry`` is a
    :meth:`~repro.obs.registry.TelemetryRegistry.snapshot` — when given,
    its histograms are summarised (quantiles, not buckets) and a few
    headline counters ride along.  ``top_n`` bounds the slow-file list.
    """
    fresh = [result for result in report.results if not result.from_cache]
    ranked = sorted(
        fresh or report.results,
        key=lambda result: result.duration_s,
        reverse=True,
    )
    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "wall_s": report.wall_s,
        "jobs": report.jobs,
        "ok": report.ok,
        "files": {
            "total": len(report.results),
            "checked": report.files_checked,
            "cached": report.cache_hits,
            "well_typed": sum(1 for result in report.results if result.ok),
            "ill_typed": sum(1 for result in report.results if not result.ok),
        },
        "cache": {
            "hits": report.cache_hits,
            "misses": report.cache_misses,
            "hit_rate": report.hit_rate,
        },
        "phases": dict(report.phases),
        "worker_utilisation": report.worker_utilisation,
        "top_slow_files": [
            {
                "path": result.display,
                "duration_s": result.duration_s,
                "from_cache": result.from_cache,
            }
            for result in ranked[: max(0, top_n)]
        ],
    }
    if project is not None:
        payload["project"] = dict(project)
    if telemetry is not None:
        payload["histograms"] = {
            name: summarise(stat)
            for name, stat in telemetry.get("histograms", {}).items()
        }
        counters = telemetry.get("counters", {})
        payload["counters"] = {
            name: counters[name]
            for name in sorted(counters)
            if name.startswith(("service.", "subtype.shared_memo."))
        }
    return payload


def write_run_report(
    path: str,
    report: BatchReport,
    project: Optional[Dict[str, Any]] = None,
    telemetry: Optional[Dict[str, Any]] = None,
    top_n: int = 10,
) -> Dict[str, Any]:
    """Build the report and write it to ``path`` (returns the dict)."""
    payload = build_run_report(
        report, project=project, telemetry=telemetry, top_n=top_n
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
