"""Persistent per-file verdict cache for the batch checking service.

One JSON index (``tlp-cache.json`` under ``--cache-dir``) maps

    ``<file digest>.<declarations digest>``  →  verdict record

where the digests come from :mod:`repro.service.project` and the record
holds everything a warm re-check needs to reproduce the cold run's
output byte-for-byte: the well-typedness verdict, the rendered
diagnostics, any rendered lint findings, the clause/query counts, and
timing metadata.  The index header pins :data:`CHECKER_VERSION`; bumping
it (any change to the checker's verdicts or diagnostic wording)
invalidates every entry at load time, so a stale cache can never mask a
checker change.

When batch runs lint alongside the checker, the enabled rule set's
fingerprint (:meth:`repro.analysis.registry.RuleRegistry.fingerprint`)
becomes a third key component: disabling a rule, adding one, or
re-levelling a severity changes the fingerprint and re-lints exactly the
affected corpus — verdicts cached without lint stay untouched, and vice
versa.

Probes are observable: every :meth:`ResultCache.get` emits a
``cache_probe`` trace event (``cache="service.results"``) and bumps the
``service.cache.hits`` / ``service.cache.misses`` counters through
:mod:`repro.obs` — the same channel the subtype engine's memo tables
use, so one ``--stats`` table shows both caching layers.

Writes are atomic (temp file + ``os.replace``) and a corrupt or
foreign-version index is treated as empty rather than an error: the
cache is a pure accelerator, never a source of truth.

Concurrent writers are safe: :meth:`ResultCache.save` takes an
exclusive lock file (``O_CREAT|O_EXCL``, broken when stale), re-reads
the on-disk index, merges it under the in-memory entries (explicit
invalidations win via tombstones), and atomically renames the merged
index into place.  Two processes recording verdicts into the same
cache directory — a batch run racing a daemon, or many ``tlp-aserve``
workers — can interleave saves without corrupting the index or losing
each other's entries.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from ..obs import METRICS, TRACER, CacheProbeEvent

__all__ = ["CHECKER_VERSION", "CachedResult", "ResultCache"]

#: Version of the checking pipeline baked into every cache key.  Bump on
#: any change that can alter verdicts or diagnostic text.
#: "2": diagnostics carry stable TLP codes and cached records may hold
#: lint findings — pre-lint indexes must not replay.
#: "3": cached records may hold inferred ``PRED`` declarations from the
#: success-set analysis (``--infer``) — pre-inference indexes must not
#: replay.
#: "4": the §7 inline ``PRED p(OUT nat).`` form changes frontend
#: verdicts, and the TLP5xx mode rules change lint findings — pre-mode
#: indexes must not replay.
#: "5": ground subtype/match queries run on compiled tree automata and
#: their spilled tables live alongside the cache — pre-automata indexes,
#: memo tables, and spills must not replay.
#: "6": built-in constraint predicates get declared signatures in the
#: frontend and the TLP6xx polymorphic-constraint rules change lint
#: findings — pre-typed-CLP indexes must not replay.
CHECKER_VERSION = "6"

INDEX_NAME = "tlp-cache.json"
LOCK_NAME = INDEX_NAME + ".lock"

#: How long ``save`` waits for a competing writer before proceeding
#: without the lock (atomic rename still prevents corruption), and the
#: age after which an abandoned lock file is broken.
LOCK_TIMEOUT_S = 5.0
LOCK_STALE_S = 10.0

#: How long persisted tombstones outlive their invalidation — long
#: enough for every concurrent writer to adopt them at its next save,
#: short enough that the index never accumulates dead weight.
TOMBSTONE_TTL_S = 600.0


@dataclass(frozen=True)
class CachedResult:
    """One file's cached verdict — enough to replay the cold-run report."""

    ok: bool
    diagnostics: Tuple[str, ...]
    clauses: int
    queries: int
    duration_s: float
    checked_at: float
    lint: Tuple[str, ...] = ()
    #: Inferred ``PRED`` declarations (the ``--infer`` surfaces); empty
    #: when inference was off or found nothing undeclared.
    inferred: Tuple[str, ...] = ()

    def to_json(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["diagnostics"] = list(self.diagnostics)
        payload["lint"] = list(self.lint)
        payload["inferred"] = list(self.inferred)
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "CachedResult":
        return cls(
            ok=bool(payload["ok"]),
            diagnostics=tuple(str(d) for d in payload["diagnostics"]),
            clauses=int(payload["clauses"]),
            queries=int(payload["queries"]),
            duration_s=float(payload["duration_s"]),
            checked_at=float(payload["checked_at"]),
            lint=tuple(str(line) for line in payload.get("lint", [])),
            inferred=tuple(str(line) for line in payload.get("inferred", [])),
        )


class ResultCache:
    """On-disk verdict store keyed by (file, declarations, checker) digests."""

    def __init__(
        self,
        cache_dir: str,
        checker_version: str = CHECKER_VERSION,
        ruleset: str = "",
        infer: bool = False,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.checker_version = checker_version
        #: Lint rule-set fingerprint folded into every key ("" = no lint).
        self.ruleset = ruleset
        #: Whether records carry inferred declarations; folded into every
        #: key so an inference-free record never replays for ``--infer``.
        self.infer = infer
        self.index_path = self.cache_dir / INDEX_NAME
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._entries: Dict[str, Dict[str, object]] = {}
        #: key → invalidation time.  Tombstones are *persisted* in the
        #: index and adopted by every writer: a tombstone kills any
        #: entry whose ``checked_at`` predates it, so neither a foreign
        #: writer's older on-disk image nor its still-in-memory copy can
        #: resurrect an explicitly invalidated verdict.  A re-recorded
        #: entry (fresh ``checked_at``) outlives the tombstone.
        self._removed: Dict[str, float] = {}
        #: Set by ``invalidate(None)``: the next save drops everything a
        #: competing writer persisted too, not just our in-memory view.
        self._cleared = False
        self._load()

    # -- persistence ---------------------------------------------------------

    def _read_disk(
        self,
    ) -> Tuple[Dict[str, Dict[str, object]], Dict[str, float]]:
        """The on-disk index's ``(entries, tombstones)`` — both empty on
        a corrupt, foreign-version, or missing index."""
        try:
            raw = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {}, {}
        if not isinstance(raw, dict) or raw.get("version") != self.checker_version:
            return {}, {}  # foreign or pre-bump index: treat as cold
        entries = raw.get("entries")
        found: Dict[str, Dict[str, object]] = {}
        if isinstance(entries, dict):
            for key, payload in entries.items():
                if isinstance(payload, dict):
                    found[key] = payload
        tombstones: Dict[str, float] = {}
        raw_tombstones = raw.get("tombstones")
        if isinstance(raw_tombstones, dict):
            for key, stamp in raw_tombstones.items():
                if isinstance(stamp, (int, float)):
                    tombstones[str(key)] = float(stamp)
        return found, tombstones

    @staticmethod
    def _checked_at(payload: Dict[str, object]) -> float:
        try:
            return float(payload.get("checked_at", 0.0))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return 0.0

    def _load(self) -> None:
        entries, tombstones = self._read_disk()
        self._entries.update(entries)
        self._removed.update(tombstones)  # keep propagating invalidations

    @contextlib.contextmanager
    def _exclusive_lock(self) -> Iterator[bool]:
        """Best-effort cross-process mutex around load-merge-rename.

        Acquired via ``O_CREAT|O_EXCL``; a lock older than
        :data:`LOCK_STALE_S` (a crashed writer) is broken.  On timeout we
        *proceed without the lock* — the cache is an accelerator, and the
        atomic rename below keeps the index uncorrupted even then; only
        a lost update is possible.  Yields whether the lock was held.
        """
        lock_path = self.cache_dir / LOCK_NAME
        deadline = time.monotonic() + LOCK_TIMEOUT_S
        held = False
        while True:
            try:
                descriptor = os.open(
                    str(lock_path),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
                os.write(descriptor, str(os.getpid()).encode("ascii"))
                os.close(descriptor)
                held = True
                break
            except FileExistsError:
                try:
                    age = time.time() - lock_path.stat().st_mtime
                except OSError:
                    continue  # holder just released: retry immediately
                if age > LOCK_STALE_S:
                    with contextlib.suppress(OSError):
                        lock_path.unlink()
                    continue
                if time.monotonic() > deadline:
                    break
                time.sleep(0.005)
            except OSError:
                break  # unwritable cache dir: fall back to lockless save
        try:
            yield held
        finally:
            if held:
                with contextlib.suppress(OSError):
                    lock_path.unlink()

    def save(self) -> None:
        """Persist the index: lock, merge with disk, atomic rename.

        No-op when nothing changed.  The merge keeps entries a competing
        writer recorded since our load (our entries win on key
        collisions); keys this instance explicitly invalidated stay
        dead via tombstones.
        """
        if not self._dirty:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        with self._exclusive_lock():
            disk_entries, disk_tombstones = self._read_disk()
            for key, stamp in disk_tombstones.items():
                if stamp > self._removed.get(key, 0.0):
                    self._removed[key] = stamp
            if not self._cleared:
                for key, entry in disk_entries.items():
                    if key in self._entries:
                        continue  # ours wins: it is at least as fresh
                    killed = self._removed.get(key)
                    if killed is not None and self._checked_at(entry) <= killed:
                        continue
                    self._entries[key] = entry
            # Adopted tombstones kill our own stale copies too (a foreign
            # writer invalidated a verdict we still hold in memory).
            for key, killed in self._removed.items():
                entry = self._entries.get(key)
                if entry is not None and self._checked_at(entry) <= killed:
                    del self._entries[key]
            cutoff = time.time() - TOMBSTONE_TTL_S
            tombstones = {
                key: stamp
                for key, stamp in self._removed.items()
                if stamp >= cutoff
            }
            payload = {
                "version": self.checker_version,
                "entries": self._entries,
                "tombstones": tombstones,
            }
            handle = tempfile.NamedTemporaryFile(
                "w",
                encoding="utf-8",
                dir=str(self.cache_dir),
                prefix=".tlp-cache-",
                suffix=".tmp",
                delete=False,
            )
            try:
                with handle:
                    json.dump(payload, handle, indent=1, sort_keys=True)
                    handle.write("\n")
                os.replace(handle.name, self.index_path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        self._removed = tombstones  # pruned, but kept for propagation
        self._cleared = False
        self._dirty = False

    # -- the store -----------------------------------------------------------

    @staticmethod
    def key(
        file_digest: str,
        decls_digest: str,
        ruleset: str = "",
        infer: bool = False,
    ) -> str:
        """Cache key: two digests, plus the lint fingerprint when set and
        an ``infer`` marker when inference ran.

        The two-part form is the pre-lint key, kept so existing entries
        (and tests) keep their addresses when no lint runs.
        """
        key = f"{file_digest}.{decls_digest}"
        if ruleset:
            key = f"{key}.{ruleset}"
        if infer:
            key = f"{key}.infer"
        return key

    def get(
        self, file_digest: str, decls_digest: str
    ) -> Optional[CachedResult]:
        """Probe for a verdict; hit/miss is counted, timed, and traced."""
        observed = METRICS.enabled
        started = time.perf_counter() if observed else 0.0
        payload = self._entries.get(
            self.key(file_digest, decls_digest, self.ruleset, self.infer)
        )
        hit = payload is not None
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if observed:
            METRICS.inc("service.cache.hits" if hit else "service.cache.misses")
            # Probe latency distribution (p50/p99 via the histogram view):
            # in-memory today, but the ROADMAP's cache-server direction
            # makes this the metric that will catch a remote store
            # regressing.
            METRICS.observe(
                "service.cache.probe", time.perf_counter() - started
            )
        if TRACER.enabled:
            TRACER.point(CacheProbeEvent, cache="service.results", hit=hit)
        if not hit:
            return None
        try:
            return CachedResult.from_json(payload)
        except (KeyError, TypeError, ValueError):
            # A malformed entry behaves like a miss (and is purged).
            bad_key = self.key(file_digest, decls_digest, self.ruleset, self.infer)
            del self._entries[bad_key]
            self._removed[bad_key] = time.time()
            self._dirty = True
            return None

    def put(
        self,
        file_digest: str,
        decls_digest: str,
        result: CachedResult,
        display: str = "",
    ) -> None:
        payload = result.to_json()
        payload["path"] = display
        key = self.key(file_digest, decls_digest, self.ruleset, self.infer)
        self._entries[key] = payload
        self._removed.pop(key, None)  # a re-recorded key is live again
        self._dirty = True

    def invalidate(self, display: Optional[str] = None) -> int:
        """Drop entries recorded for ``display`` (or everything).

        Content-addressed keys make explicit invalidation unnecessary for
        correctness — a changed file simply misses — but the daemon's
        ``invalidate`` op and operators clearing space both want it.
        """
        now = time.time()
        if display is None:
            dropped = len(self._entries)
            for key in self._entries:
                self._removed[key] = now
            self._entries.clear()
            self._cleared = True
            self._dirty = True
        else:
            stale = [
                key
                for key, payload in self._entries.items()
                if payload.get("path") == display
            ]
            for key in stale:
                del self._entries[key]
                self._removed[key] = now
            dropped = len(stale)
        if dropped:
            self._dirty = True
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def now() -> float:
        return time.time()
