"""Persistent per-file verdict cache for the batch checking service.

One JSON index (``tlp-cache.json`` under ``--cache-dir``) maps

    ``<file digest>.<declarations digest>``  →  verdict record

where the digests come from :mod:`repro.service.project` and the record
holds everything a warm re-check needs to reproduce the cold run's
output byte-for-byte: the well-typedness verdict, the rendered
diagnostics, any rendered lint findings, the clause/query counts, and
timing metadata.  The index header pins :data:`CHECKER_VERSION`; bumping
it (any change to the checker's verdicts or diagnostic wording)
invalidates every entry at load time, so a stale cache can never mask a
checker change.

When batch runs lint alongside the checker, the enabled rule set's
fingerprint (:meth:`repro.analysis.registry.RuleRegistry.fingerprint`)
becomes a third key component: disabling a rule, adding one, or
re-levelling a severity changes the fingerprint and re-lints exactly the
affected corpus — verdicts cached without lint stay untouched, and vice
versa.

Probes are observable: every :meth:`ResultCache.get` emits a
``cache_probe`` trace event (``cache="service.results"``) and bumps the
``service.cache.hits`` / ``service.cache.misses`` counters through
:mod:`repro.obs` — the same channel the subtype engine's memo tables
use, so one ``--stats`` table shows both caching layers.

Writes are atomic (temp file + ``os.replace``) and a corrupt or
foreign-version index is treated as empty rather than an error: the
cache is a pure accelerator, never a source of truth.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..obs import METRICS, TRACER, CacheProbeEvent

__all__ = ["CHECKER_VERSION", "CachedResult", "ResultCache"]

#: Version of the checking pipeline baked into every cache key.  Bump on
#: any change that can alter verdicts or diagnostic text.
#: "2": diagnostics carry stable TLP codes and cached records may hold
#: lint findings — pre-lint indexes must not replay.
#: "3": cached records may hold inferred ``PRED`` declarations from the
#: success-set analysis (``--infer``) — pre-inference indexes must not
#: replay.
CHECKER_VERSION = "3"

INDEX_NAME = "tlp-cache.json"


@dataclass(frozen=True)
class CachedResult:
    """One file's cached verdict — enough to replay the cold-run report."""

    ok: bool
    diagnostics: Tuple[str, ...]
    clauses: int
    queries: int
    duration_s: float
    checked_at: float
    lint: Tuple[str, ...] = ()
    #: Inferred ``PRED`` declarations (the ``--infer`` surfaces); empty
    #: when inference was off or found nothing undeclared.
    inferred: Tuple[str, ...] = ()

    def to_json(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["diagnostics"] = list(self.diagnostics)
        payload["lint"] = list(self.lint)
        payload["inferred"] = list(self.inferred)
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "CachedResult":
        return cls(
            ok=bool(payload["ok"]),
            diagnostics=tuple(str(d) for d in payload["diagnostics"]),
            clauses=int(payload["clauses"]),
            queries=int(payload["queries"]),
            duration_s=float(payload["duration_s"]),
            checked_at=float(payload["checked_at"]),
            lint=tuple(str(line) for line in payload.get("lint", [])),
            inferred=tuple(str(line) for line in payload.get("inferred", [])),
        )


class ResultCache:
    """On-disk verdict store keyed by (file, declarations, checker) digests."""

    def __init__(
        self,
        cache_dir: str,
        checker_version: str = CHECKER_VERSION,
        ruleset: str = "",
        infer: bool = False,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.checker_version = checker_version
        #: Lint rule-set fingerprint folded into every key ("" = no lint).
        self.ruleset = ruleset
        #: Whether records carry inferred declarations; folded into every
        #: key so an inference-free record never replays for ``--infer``.
        self.infer = infer
        self.index_path = self.cache_dir / INDEX_NAME
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._entries: Dict[str, Dict[str, object]] = {}
        self._load()

    # -- persistence ---------------------------------------------------------

    def _load(self) -> None:
        try:
            raw = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return
        if not isinstance(raw, dict) or raw.get("version") != self.checker_version:
            return  # foreign or pre-bump index: start cold
        entries = raw.get("entries")
        if isinstance(entries, dict):
            for key, payload in entries.items():
                if isinstance(payload, dict):
                    self._entries[key] = payload

    def save(self) -> None:
        """Atomically persist the index (no-op when nothing changed)."""
        if not self._dirty:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {"version": self.checker_version, "entries": self._entries}
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=str(self.cache_dir),
            prefix=".tlp-cache-",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
                handle.write("\n")
            os.replace(handle.name, self.index_path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self._dirty = False

    # -- the store -----------------------------------------------------------

    @staticmethod
    def key(
        file_digest: str,
        decls_digest: str,
        ruleset: str = "",
        infer: bool = False,
    ) -> str:
        """Cache key: two digests, plus the lint fingerprint when set and
        an ``infer`` marker when inference ran.

        The two-part form is the pre-lint key, kept so existing entries
        (and tests) keep their addresses when no lint runs.
        """
        key = f"{file_digest}.{decls_digest}"
        if ruleset:
            key = f"{key}.{ruleset}"
        if infer:
            key = f"{key}.infer"
        return key

    def get(
        self, file_digest: str, decls_digest: str
    ) -> Optional[CachedResult]:
        """Probe for a verdict; hit/miss is counted, timed, and traced."""
        observed = METRICS.enabled
        started = time.perf_counter() if observed else 0.0
        payload = self._entries.get(
            self.key(file_digest, decls_digest, self.ruleset, self.infer)
        )
        hit = payload is not None
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if observed:
            METRICS.inc("service.cache.hits" if hit else "service.cache.misses")
            # Probe latency distribution (p50/p99 via the histogram view):
            # in-memory today, but the ROADMAP's cache-server direction
            # makes this the metric that will catch a remote store
            # regressing.
            METRICS.observe(
                "service.cache.probe", time.perf_counter() - started
            )
        if TRACER.enabled:
            TRACER.point(CacheProbeEvent, cache="service.results", hit=hit)
        if not hit:
            return None
        try:
            return CachedResult.from_json(payload)
        except (KeyError, TypeError, ValueError):
            # A malformed entry behaves like a miss (and is purged).
            del self._entries[
                self.key(file_digest, decls_digest, self.ruleset, self.infer)
            ]
            self._dirty = True
            return None

    def put(
        self,
        file_digest: str,
        decls_digest: str,
        result: CachedResult,
        display: str = "",
    ) -> None:
        payload = result.to_json()
        payload["path"] = display
        self._entries[
            self.key(file_digest, decls_digest, self.ruleset, self.infer)
        ] = payload
        self._dirty = True

    def invalidate(self, display: Optional[str] = None) -> int:
        """Drop entries recorded for ``display`` (or everything).

        Content-addressed keys make explicit invalidation unnecessary for
        correctness — a changed file simply misses — but the daemon's
        ``invalidate`` op and operators clearing space both want it.
        """
        if display is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            stale = [
                key
                for key, payload in self._entries.items()
                if payload.get("path") == display
            ]
            for key in stale:
                del self._entries[key]
            dropped = len(stale)
        if dropped:
            self._dirty = True
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def now() -> float:
        return time.time()
