"""``tlp-batch`` — one batch/incremental check of a project corpus.

Quick use::

    tlp-batch examples/programs                 # cold: checks everything
    tlp-batch examples/programs                 # warm: 100% cache hits
    tlp-batch --jobs 4 corpus/                  # 4 worker processes
    tlp-batch --manifest corpus/tlp-project.json --stats

The corpus comes from the project model (directories are walked for
``*.tlp``; a ``tlp-project.json`` manifest — explicit via ``--manifest``
or auto-detected in a single directory argument — adds shared
declaration preludes and include/exclude lists).  Verdicts persist under
``--cache-dir`` (default ``.tlp-cache``), so a re-run with unchanged
files replays diagnostics byte-for-byte without touching the checker.

Exit status: 0 when every member is well-typed, 1 otherwise, 2 on usage
or corpus errors — the same contract as ``tlp-check``.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import List, Optional

from .. import obs
from ..analysis import LintConfig, ruleset_fingerprint
from ..checker.diagnostics import Severity
from ..obs import METRICS
from .cache import ResultCache
from .project import ProjectError, load_project
from .report import write_run_report
from .runner import FileResult, run_batch

__all__ = ["main"]

#: Rendered lint lines look like ``3:1: error[TLP102]: ...`` — match the
#: severity label, not message text that merely mentions "error[".
_LINT_ERROR = re.compile(rf"(?:^|: ){Severity.ERROR}\[TLP\d+\]: ")


def _build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tlp-batch",
        description=(
            "Batch/incremental type checking of a corpus of .tlp files "
            "with a persistent result cache and parallel workers."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["."],
        help="files/directories forming the corpus (default: .)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="explicit tlp-project.json manifest",
    )
    parser.add_argument(
        "--cache-dir",
        default=".tlp-cache",
        metavar="DIR",
        help="persistent result cache location (default .tlp-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent cache for this run",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="ignore cached verdicts but still record fresh ones",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker count for parallel checking (default 1)",
    )
    parser.add_argument(
        "--workers",
        choices=("process", "thread"),
        default="process",
        help="worker pool flavour with --jobs > 1 (default process)",
    )
    parser.add_argument(
        "--lint",
        nargs="?",
        const="warn",
        default="off",
        choices=("warn", "error", "off"),
        metavar="MODE",
        help=(
            "also run the static analyzer on checked files: 'warn' "
            "(default when the flag is given) reports findings without "
            "affecting exit status, 'error' makes error-severity "
            "findings fail the run, 'off' disables (default)"
        ),
    )
    parser.add_argument(
        "--infer",
        action="store_true",
        help=(
            "run whole-program success-set inference on checked files and "
            "print reconstructed PRED declarations for undeclared "
            "predicates (results ride the cache like lint findings)"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="collect telemetry and print the metrics table",
    )
    parser.add_argument(
        "--no-intern",
        action="store_true",
        help=(
            "disable the hash-consing term intern table for this run "
            "(differential-testing escape hatch; seed representation)"
        ),
    )
    parser.add_argument(
        "--no-shared-memo",
        action="store_true",
        help=(
            "disable the process-wide shared subtype memo; every engine "
            "keeps its own cold memo (seed behaviour)"
        ),
    )
    parser.add_argument(
        "--no-automata",
        action="store_true",
        help=(
            "disable the compiled tree automata for ground subtype/match "
            "queries; every goal runs the template-expansion path "
            "(seed behaviour)"
        ),
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="write the machine-readable batch report to OUT ('-' for stdout)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="OUT",
        help=(
            "write a run report (wall/phase times, cache hit rate, "
            "worker utilisation, slowest files, histogram summaries "
            "with --stats) to OUT as JSON"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "render live per-file progress on stderr as members resolve "
            "(cache hits first, then checks as workers finish)"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-file lines (summary and diagnostics still print)",
    )
    return parser


class _ProgressRenderer:
    """Live ``[done/total]`` line on stderr, one rewrite per resolved file.

    Uses carriage-return rewriting (the cheap single-line renderer every
    terminal understands); the line is cleared before the summary prints
    so piped stderr stays readable.  Each update shows the member that
    just resolved and how it resolved (``cached`` / ``ok`` / ``FAIL``).
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.updates = 0
        self._width = 0

    def __call__(self, done: int, total: int, result: FileResult) -> None:
        state = (
            "cached" if result.from_cache else ("ok" if result.ok else "FAIL")
        )
        line = f"[{done}/{total}] {result.display} ({state})"
        self._width = max(self._width, len(line))
        self.stream.write("\r" + line.ljust(self._width))
        self.stream.flush()
        self.updates += 1

    def finish(self) -> None:
        if self.updates:
            self.stream.write("\r" + " " * self._width + "\r")
            self.stream.flush()


def _run(arguments) -> int:
    try:
        project = load_project(arguments.paths, manifest=arguments.manifest)
    except ProjectError as error:
        print(f"tlp-batch: {error}", file=sys.stderr)
        return 2
    if not project.files:
        print("tlp-batch: no .tlp files found", file=sys.stderr)
        return 2
    lint_config = LintConfig() if arguments.lint != "off" else None
    ruleset = ruleset_fingerprint(lint_config) if lint_config is not None else ""
    cache = (
        None
        if arguments.no_cache
        else ResultCache(
            arguments.cache_dir, ruleset=ruleset, infer=arguments.infer
        )
    )
    renderer = _ProgressRenderer() if arguments.progress else None
    try:
        report = run_batch(
            project,
            cache=cache,
            jobs=arguments.jobs,
            use=arguments.workers,
            force=arguments.force,
            lint=lint_config,
            infer=arguments.infer,
            progress=renderer,
        )
    finally:
        if renderer is not None:
            renderer.finish()
    # With ``--json -`` stdout is the machine-readable report; route the
    # human-readable lines to stderr so the stream stays parseable.
    human = sys.stderr if arguments.json == "-" else sys.stdout
    lint_errors = 0
    for result in report.results:
        for diagnostic in result.diagnostics:
            print(f"{result.display}:{diagnostic}", file=human)
        for finding in result.lint:
            print(f"{result.display}:{finding}", file=human)
            if _LINT_ERROR.search(finding):
                lint_errors += 1
        for line in result.inferred:
            print(f"{result.display}: inferred {line}", file=human)
        if not arguments.quiet:
            print(result.summary_line(), file=human)
    well_typed = sum(1 for r in report.results if r.ok)
    ill_typed = len(report.results) - well_typed
    probes = report.cache_hits + report.cache_misses
    cache_note = (
        f"; cache: {report.cache_hits}/{probes} hits "
        f"({report.hit_rate:.0%} hit rate)"
        if cache is not None
        else "; cache: off"
    )
    lint_note = ""
    if arguments.lint != "off":
        findings = sum(len(result.lint) for result in report.results)
        lint_note = f"; lint: {findings} finding(s), {lint_errors} error(s)"
    if not arguments.quiet:
        print(
            f"checked {len(report.results)} files in "
            f"{report.wall_s * 1e3:.1f}ms with {report.jobs} job(s): "
            f"{well_typed} well-typed, {ill_typed} ill-typed"
            f"{cache_note}{lint_note}",
            file=human,
        )
    if arguments.json is not None:
        payload = report.to_json()
        payload["project"] = {
            "name": project.name,
            "declarations_digest": project.declarations_digest,
            "shared": [entry.display for entry in project.shared],
        }
        if arguments.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            with open(arguments.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
    if arguments.report is not None:
        write_run_report(
            arguments.report,
            report,
            project={
                "name": project.name,
                "declarations_digest": project.declarations_digest,
            },
            # Histogram summaries only exist when the run was observed
            # (--stats); an unobserved report still carries timings,
            # cache effectiveness, and the slow-file ranking.
            telemetry=METRICS.snapshot() if METRICS.enabled else None,
        )
    if arguments.lint == "error" and lint_errors:
        return 1
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (installed as the ``tlp-batch`` console script)."""
    from ..core.automata import AUTOMATA
    from ..core.shared_memo import SHARED_MEMO
    from ..terms.term import set_interning

    parser = _build_argument_parser()
    arguments = parser.parse_args(argv)
    if arguments.jobs < 1:
        parser.error("--jobs must be >= 1")
    # Escape hatches, restored on exit so library callers of main() keep
    # their process-wide settings.
    intern_before = set_interning(False) if arguments.no_intern else None
    memo_before = (
        SHARED_MEMO.set_enabled(False) if arguments.no_shared_memo else None
    )
    automata_before = (
        AUTOMATA.set_enabled(False) if arguments.no_automata else None
    )
    try:
        if not arguments.stats:
            return _run(arguments)
        was_enabled = METRICS.enabled
        obs.reset()
        METRICS.enabled = True
        try:
            exit_code = _run(arguments)
            print()
            print(obs.render_summary())
            for line in obs.runtime_stats_lines():
                print(line)
            return exit_code
        finally:
            METRICS.enabled = was_enabled
    finally:
        if intern_before is not None:
            set_interning(intern_before)
        if memo_before is not None:
            SHARED_MEMO.set_enabled(memo_before)
        if automata_before is not None:
            AUTOMATA.set_enabled(automata_before)


if __name__ == "__main__":
    sys.exit(main())
