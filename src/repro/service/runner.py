"""The execution layer: check a project's files, in parallel, with caching.

``run_batch`` is one batch pass over a :class:`~repro.service.project.Project`:

1. **Probe** — every member is fingerprinted and looked up in the
   persistent :class:`~repro.service.cache.ResultCache` (unless ``force``
   or no cache); hits skip the Definition 16 pipeline entirely and replay
   the stored verdict and diagnostics byte-for-byte.
2. **Check** — the misses run through
   :func:`repro.checker.frontend.check_text`.  With ``jobs > 1`` they are
   distributed over a ``concurrent.futures`` pool: processes by default
   (true parallelism — the checker is pure CPU), threads on request
   (``use="thread"``; handy under test and on platforms where ``fork`` is
   unavailable).
3. **Record** — fresh verdicts are written back to the cache, and worker
   telemetry is folded into the coordinator's registry.

Telemetry under the pool is lossless and double-count-free by
construction: *thread* workers record straight into the process-wide
registry (its lock makes concurrent increments safe), while *process*
workers reset their forked copy of the registry, record locally, and
ship a snapshot back in the result tuple — the coordinator merges each
snapshot exactly once via ``TelemetryRegistry.merge_snapshot``.  The
coordinator additionally publishes ``service.jobs`` and
``service.worker_utilisation`` gauges and ``service.files.*`` counters.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import obs
from ..analysis import LintConfig, lint_text
from ..checker.frontend import check_text
from ..core.shared_memo import SHARED_MEMO
from ..obs import METRICS
from .cache import CHECKER_VERSION, CachedResult, ResultCache
from .project import Project, ProjectFile

__all__ = ["FileResult", "BatchReport", "check_one_text", "run_batch"]


@dataclass(frozen=True)
class FileResult:
    """Outcome for one corpus member (fresh or replayed from cache)."""

    display: str
    digest: str
    ok: bool
    diagnostics: Tuple[str, ...]
    clauses: int
    queries: int
    duration_s: float
    from_cache: bool
    lint: Tuple[str, ...] = ()
    #: Inferred ``PRED`` declarations for undeclared predicates (the
    #: ``--infer`` surfaces); empty when inference was off or the file
    #: declares everything it defines.
    inferred: Tuple[str, ...] = ()

    def summary_line(self) -> str:
        """The per-file line batch surfaces print."""
        suffix = " [cached]" if self.from_cache else ""
        lint_note = f", {len(self.lint)} lint" if self.lint else ""
        if self.ok:
            return (
                f"{self.display}: well-typed ({self.clauses} clauses, "
                f"{self.queries} queries{lint_note}){suffix}"
            )
        return (
            f"{self.display}: ill-typed ({len(self.diagnostics)} "
            f"diagnostics{lint_note}){suffix}"
        )


@dataclass
class BatchReport:
    """Everything one ``run_batch`` pass produced."""

    results: List[FileResult] = field(default_factory=list)
    wall_s: float = 0.0
    jobs: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    #: Wall time per phase: ``{"probe_s": ..., "check_s": ..., "record_s": ...}``.
    phases: Dict[str, float] = field(default_factory=dict)
    #: busy-time / (wall × jobs) over the check phase — 1.0 means every
    #: worker slot was saturated; 0.0 when nothing was checked.
    worker_utilisation: float = 0.0

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def files_checked(self) -> int:
        return sum(1 for result in self.results if not result.from_cache)

    @property
    def hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_json(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "phases": dict(self.phases),
            "worker_utilisation": self.worker_utilisation,
            "ok": self.ok,
            "files": [
                {
                    "path": result.display,
                    "digest": result.digest,
                    "well_typed": result.ok,
                    "diagnostics": list(result.diagnostics),
                    "lint": list(result.lint),
                    "inferred": list(result.inferred),
                    "clauses": result.clauses,
                    "queries": result.queries,
                    "duration_s": result.duration_s,
                    "from_cache": result.from_cache,
                }
                for result in self.results
            ],
        }


def check_one_text(text: str) -> Tuple[bool, Tuple[str, ...], int, int]:
    """Check one source text; diagnostics come back rendered.

    The rendered form is exactly what the CLIs print and the cache
    stores, which is what makes warm output reproducible byte-for-byte.
    """
    module = check_text(text)
    diagnostics = tuple(str(diagnostic) for diagnostic in module.diagnostics)
    return module.ok, diagnostics, len(module.program), len(module.queries)


_WorkerReturn = Tuple[
    int, bool, Tuple[str, ...], int, int, float,
    Tuple[str, ...], Tuple[str, ...], Optional[Dict[str, Any]],
]


def _check_job(
    job: Tuple[int, str, str, bool, Optional[LintConfig], bool]
) -> _WorkerReturn:
    """Pool worker: check (and optionally lint/infer) one text.

    ``ship_telemetry`` is set only for *process* workers of an observed
    run: the forked child resets its inherited copy of the registry
    (so nothing the parent already recorded is counted again), detaches
    any inherited trace sinks (children must not interleave writes on
    the parent's streams), records into its private copy, and returns a
    snapshot for the coordinator to merge.  Thread workers never ship —
    they share the coordinator's registry directly.

    Each stage is observed per file (``service.file.check`` /
    ``service.file.lint`` / ``service.file.infer`` latency histograms)
    and the whole job runs under a ``check_file`` span whose detail is
    the display path — inline and thread runs attribute time to files
    in ``--profile`` output; process workers detached their sinks, so
    the span guard keeps it free there.

    ``lint`` (a picklable :class:`~repro.analysis.registry.LintConfig`)
    turns the analyzer on; findings travel home rendered, same as the
    checker's diagnostics.  ``infer`` additionally runs success-set
    inference and ships the reconstructed ``PRED`` lines.
    """
    index, display, text, ship_telemetry, lint, infer = job
    snapshot: Optional[Dict[str, Any]] = None
    if ship_telemetry:
        obs.TRACER.clear_sinks()
        METRICS.reset()
        METRICS.enabled = True
    observed = METRICS.enabled
    with obs.TRACER.span("check_file", display):
        start = time.perf_counter()
        ok, diagnostics, clauses, queries = check_one_text(text)
        if observed:
            METRICS.observe("service.file.check", time.perf_counter() - start)
        lint_lines: Tuple[str, ...] = ()
        if lint is not None:
            lint_start = time.perf_counter()
            report = lint_text(text, config=lint)
            lint_lines = tuple(str(finding) for finding in report.diagnostics)
            if observed:
                METRICS.observe(
                    "service.file.lint", time.perf_counter() - lint_start
                )
        inferred_lines: Tuple[str, ...] = ()
        if infer:
            from ..analysis.absint import infer_text

            infer_start = time.perf_counter()
            inference = infer_text(text)
            if inference is not None:
                inferred_lines = tuple(inference.declaration_lines())
            if observed:
                METRICS.observe(
                    "service.file.infer", time.perf_counter() - infer_start
                )
        duration = time.perf_counter() - start
    if ship_telemetry:
        snapshot = METRICS.snapshot()
    return (
        index, ok, diagnostics, clauses, queries, duration,
        lint_lines, inferred_lines, snapshot,
    )


def _make_executor(use: str, jobs: int) -> Executor:
    if use == "thread":
        return ThreadPoolExecutor(max_workers=jobs)
    if use == "process":
        return ProcessPoolExecutor(max_workers=jobs)
    raise ValueError(f"unknown executor kind {use!r} (expected 'process' or 'thread')")


#: ``progress(done, total, result)`` — fired once per corpus member, in
#: completion order (cache hits first, then checks as they finish).
ProgressCallback = Callable[[int, int, FileResult], None]


def run_batch(
    project: Project,
    cache: Optional[ResultCache] = None,
    jobs: int = 1,
    use: str = "process",
    force: bool = False,
    lint: Optional[LintConfig] = None,
    infer: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> BatchReport:
    """One batch pass: probe the cache, check the misses, record verdicts.

    With ``lint`` set, misses also run the static analyzer and the
    findings ride in each :class:`FileResult` (and the cache record).
    Callers enabling lint should build the cache with the matching
    rule-set fingerprint so cached lint output can never go stale.  With
    ``infer`` set, misses also run whole-program success-set inference
    and the reconstructed ``PRED`` declarations ride the same way (the
    cache must be built with ``infer=True`` so keys stay distinct from
    inference-free runs).

    ``progress`` receives ``(done, total, result)`` as members resolve —
    cache hits during the probe phase, fresh verdicts as each worker
    finishes (pooled misses complete out of submission order).  The
    report's ``phases`` dict and ``worker_utilisation`` field carry the
    per-phase wall-time split the run report and ``--progress`` surface.
    """
    jobs = max(1, jobs)
    report = BatchReport(jobs=jobs)
    decls_digest = project.declarations_digest
    # Fence the process-wide subtype memo on the same version that keys
    # the persistent result cache: a checker bump that invalidates cached
    # verdicts also drops every cross-engine memoised subtype verdict.
    # (Process-pool workers fork their own copy of the memo; sharing pays
    # off inline, under thread pools, and across daemon requests.)
    SHARED_MEMO.ensure_version(CHECKER_VERSION)
    # Warm-start the compiled-automata store from a spill in the cache
    # directory (written below; version-fenced through ensure_version
    # above) so a fresh batch process starts with every declaration
    # scope already compiled.
    from ..core.automata import AUTOMATA

    if cache is not None:
        AUTOMATA.load_spill(cache.cache_dir)
    start = time.perf_counter()
    total = len(project.files)
    done = 0

    # Phase 1: cache probes (coordinator only — workers never touch disk).
    placeholders: List[Optional[FileResult]] = []
    misses: List[Tuple[int, ProjectFile]] = []
    with obs.TRACER.span("batch.probe", project.name):
        for index, member in enumerate(project.files):
            cached = None
            if cache is not None and not force:
                cached = cache.get(member.digest, decls_digest)
            if cached is not None:
                hit = FileResult(
                    display=member.display,
                    digest=member.digest,
                    ok=cached.ok,
                    diagnostics=cached.diagnostics,
                    clauses=cached.clauses,
                    queries=cached.queries,
                    duration_s=cached.duration_s,
                    from_cache=True,
                    lint=cached.lint,
                    inferred=cached.inferred,
                )
                placeholders.append(hit)
                done += 1
                if progress is not None:
                    progress(done, total, hit)
            else:
                placeholders.append(None)
                misses.append((index, member))
    probe_done = time.perf_counter()

    # Phase 2: check the misses (inline, threads, or processes).
    observed = METRICS.enabled
    ship_telemetry = observed and jobs > 1 and use == "process"
    members_by_index = {index: member for index, member in misses}

    def to_result(outcome: _WorkerReturn) -> FileResult:
        index = outcome[0]
        member = members_by_index[index]
        return FileResult(
            display=member.display,
            digest=member.digest,
            ok=outcome[1],
            diagnostics=outcome[2],
            clauses=outcome[3],
            queries=outcome[4],
            duration_s=outcome[5],
            from_cache=False,
            lint=outcome[6],
            inferred=outcome[7],
        )

    fresh: List[Tuple[int, FileResult, Optional[Dict[str, Any]]]] = []
    with obs.TRACER.span("batch.check", project.name):
        if misses:
            job_list = [
                (
                    index, member.display, project.effective_text(member),
                    ship_telemetry, lint, infer,
                )
                for index, member in misses
            ]
            if jobs == 1 or len(job_list) == 1:
                for index, display, text, _, job_lint, job_infer in job_list:
                    outcome = _check_job(
                        (index, display, text, False, job_lint, job_infer)
                    )
                    fresh.append((index, to_result(outcome), outcome[8]))
                    done += 1
                    if progress is not None:
                        progress(done, total, fresh[-1][1])
            else:
                with _make_executor(use, jobs) as pool:
                    futures = [pool.submit(_check_job, job) for job in job_list]
                    for future in as_completed(futures):
                        outcome = future.result()
                        fresh.append(
                            (outcome[0], to_result(outcome), outcome[8])
                        )
                        done += 1
                        if progress is not None:
                            progress(done, total, fresh[-1][1])
    check_done = time.perf_counter()

    # Phase 3: record — verdicts into the cache, telemetry into obs.
    busy = 0.0
    with obs.TRACER.span("batch.record", project.name):
        for index, result, snapshot in fresh:
            busy += result.duration_s
            placeholders[index] = result
            if cache is not None:
                cache.put(
                    result.digest,
                    decls_digest,
                    CachedResult(
                        ok=result.ok,
                        diagnostics=result.diagnostics,
                        clauses=result.clauses,
                        queries=result.queries,
                        duration_s=result.duration_s,
                        checked_at=ResultCache.now(),
                        lint=result.lint,
                        inferred=result.inferred,
                    ),
                    display=result.display,
                )
            if snapshot is not None:
                METRICS.merge_snapshot(snapshot)
        if cache is not None:
            cache.save()
            AUTOMATA.save_spill(cache.cache_dir)
    record_done = time.perf_counter()

    report.results = [result for result in placeholders if result is not None]
    report.wall_s = record_done - start
    report.cache_hits = sum(1 for result in report.results if result.from_cache)
    report.cache_misses = len(fresh)
    report.phases = {
        "probe_s": probe_done - start,
        "check_s": check_done - probe_done,
        "record_s": record_done - check_done,
    }
    check_wall = report.phases["check_s"]
    if check_wall > 0 and fresh:
        report.worker_utilisation = min(1.0, busy / (check_wall * jobs))
    if observed:
        METRICS.inc("service.files.checked", len(fresh))
        METRICS.inc("service.files.cached", report.cache_hits)
        METRICS.gauge("service.jobs", jobs)
        if fresh:
            METRICS.gauge(
                "service.worker_utilisation", report.worker_utilisation
            )
        obs.publish_runtime_gauges()
    return report
