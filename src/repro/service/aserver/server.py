"""``tlp-aserve`` — the asyncio multi-client check server.

The legacy ``tlp-serve`` daemon is one blocking request loop on stdin;
this server puts the same :class:`~repro.service.daemon.CheckService`
brain behind concurrent transports:

* **many clients** over TCP and unix sockets, each speaking the familiar
  line-JSON protocol, with per-request ``"id"`` echo so responses are
  addressable;
* **true request-level concurrency** — every client gets a bounded
  queue (backpressure: a flooding client suspends its own socket reads,
  never other clients) and a worker coroutine; the CPU-bound checks run
  on a shared thread-pool executor while the event loop keeps serving
  everyone else;
* **cancellation** — a ``{"op": "cancel", "target": <id>}`` is handled
  *out of band* by the reader (it never queues behind the work it is
  cancelling) and flips the target request's
  :class:`~repro.checker.cancel.CancelToken`; an in-flight check stops
  at its next clause-boundary checkpoint and the worker is freed;
* **workspace ops** — ``workspace`` opens a corpus, ``didChange``
  re-checks exactly the dependency closure of what changed (see
  :mod:`repro.service.aserver.workspace`), ``closure`` predicts it;
* **graceful drain** — ``{"op": "shutdown"}`` (or SIGTERM/SIGINT) stops
  accepting, finishes every queued and in-flight request, writes the
  responses, persists the cache, and closes trace sinks.

Protocol additions over the legacy daemon::

    {"id": 1, "op": "check", "path": "m.tlp"}     → response echoes "id": 1
    {"id": 2, "op": "cancel", "target": 1}        → cancels request 1
    {"id": 3, "op": "workspace", "root": "corpus"}
    {"id": 4, "op": "didChange", "path": "corpus/m.tlp"}
    {"id": 5, "op": "closure", "path": "corpus/decls.tlp"}
    {"op": "shutdown"}                            → drain + exit

Everything else (``check``/``lint``/``infer``/``stats``/``metrics``/
``health``/``invalidate``) behaves exactly as documented in
:mod:`repro.service.daemon` — same brain, same verdicts, same caches.

Telemetry: with ``--stats`` every request lands in the
``service.aserver.request`` latency histogram and a per-client
``service.aserver.client.c<N>.request`` histogram, with
``service.aserver.requests`` / ``.op.<op>`` / ``.cancelled`` counters
and ``aserver.clients`` / ``aserver.inflight`` gauges on the Prometheus
exposition.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ... import obs
from ...checker.cancel import CancelToken
from ...obs import METRICS
from ..daemon import CheckService, start_metrics_server
from .protocol import decode_line, encode_line
from .workspace import StatWatcher, Workspace

__all__ = ["AsyncCheckServer", "DEFAULT_MAX_QUEUE", "main"]

#: Requests a single client may have queued before its socket reads are
#: suspended (the backpressure bound).
DEFAULT_MAX_QUEUE = 16

#: Per-connection stream buffer limit.  A whole request line must fit
#: (inline ``text`` payloads included), so this is far above asyncio's
#: 64 KiB default.
STREAM_LIMIT = 16 * 1024 * 1024

#: Ops the server answers itself (workspace layer, augmented telemetry)
#: rather than delegating verbatim to the wrapped CheckService.
_LOCAL_OPS = {"workspace", "didChange", "closure", "metrics", "stats", "health"}


class _Client:
    """One connection: reader task, bounded queue, worker task."""

    def __init__(
        self,
        server: "AsyncCheckServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        index: int,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.index = index
        self.queue: "asyncio.Queue[Tuple[Dict[str, Any], CancelToken]]" = (
            asyncio.Queue(maxsize=server.max_queue)
        )
        #: request id → token, registered at *enqueue* time so a cancel
        #: can hit a request that has not started yet.
        self.inflight: Dict[Any, CancelToken] = {}
        self._send_lock = asyncio.Lock()
        self.handler_task: Optional["asyncio.Task[None]"] = None
        self.reader_task: Optional["asyncio.Task[None]"] = None
        self.worker_task: Optional["asyncio.Task[None]"] = None
        self.finished = False

    async def send(self, response: Dict[str, Any]) -> None:
        async with self._send_lock:
            self.writer.write(encode_line(response))
            await self.writer.drain()

    # -- reading -------------------------------------------------------------

    async def read_loop(self) -> None:
        while True:
            try:
                line = await self.reader.readline()
            except ValueError:
                # A request line beyond STREAM_LIMIT: unrecoverable on a
                # line protocol (we lost framing) — report and hang up.
                with contextlib.suppress(ConnectionError, OSError):
                    await self.send(
                        {"ok": False, "op": None, "error": "request line too long"}
                    )
                return
            if not line:
                return  # EOF: client went away
            line = line.strip()
            if not line:
                continue
            try:
                request = decode_line(line)
            except json.JSONDecodeError as error:
                await self.send(
                    {"ok": False, "op": None, "error": f"malformed JSON: {error}"}
                )
                continue
            if not isinstance(request, dict):
                await self.send(
                    {"ok": False, "op": None, "error": "request must be a JSON object"}
                )
                continue
            if request.get("op") == "cancel":
                # Out of band: must never queue behind the request it
                # is cancelling.
                await self._op_cancel(request)
                continue
            token = CancelToken()
            request_id = request.get("id")
            if request_id is not None:
                self.inflight[request_id] = token
            # Bounded: a client flooding its queue suspends ITS reads
            # here (TCP backpressure) without touching other clients.
            await self.queue.put((request, token))

    async def _op_cancel(self, request: Dict[str, Any]) -> None:
        target = request.get("target")
        token = self.inflight.get(target)
        if token is not None:
            token.cancel()
            if METRICS.enabled:
                METRICS.inc("service.aserver.cancel_requests")
        response: Dict[str, Any] = {
            "ok": True,
            "op": "cancel",
            "target": target,
            "found": token is not None,
        }
        if request.get("id") is not None:
            response["id"] = request["id"]
        await self.send(response)

    # -- working -------------------------------------------------------------

    async def work(self) -> None:
        while True:
            request, token = await self.queue.get()
            try:
                await self._process(request, token)
            except asyncio.CancelledError:
                raise
            except Exception as error:  # a bug must not kill the worker
                with contextlib.suppress(Exception):
                    await self.send(
                        {
                            "ok": False,
                            "op": request.get("op"),
                            "id": request.get("id"),
                            "error": f"internal error: {error}",
                        }
                    )
            finally:
                self.queue.task_done()

    async def _process(self, request: Dict[str, Any], token: CancelToken) -> None:
        op = request.get("op")
        request_id = request.get("id")
        started = time.perf_counter()
        if op == "shutdown":
            response: Dict[str, Any] = {"ok": True, "op": "shutdown", "bye": True}
            if request_id is not None:
                response["id"] = request_id
            self.inflight.pop(request_id, None)
            await self.send(response)
            self.server.request_shutdown()
            return
        if token.cancelled:
            response = {
                "ok": False,
                "op": op,
                "cancelled": True,
                "error": "request cancelled before it started",
            }
        else:
            loop = asyncio.get_running_loop()
            if op in _LOCAL_OPS:
                response = await loop.run_in_executor(
                    self.server.executor, self.server.handle_local, request
                )
            else:
                response = await loop.run_in_executor(
                    self.server.executor,
                    self.server.service.handle,
                    request,
                    token,
                )
        if request_id is not None:
            response.setdefault("id", request_id)
            self.inflight.pop(request_id, None)
        self.server.observe_request(op, started, self, response)
        with contextlib.suppress(ConnectionError, OSError):
            await self.send(response)

    # -- teardown ------------------------------------------------------------

    async def finish(self, draining: bool) -> None:
        """Tear the connection down; with ``draining`` the queued and
        in-flight requests complete (and their responses flush) first."""
        if self.finished:
            return
        self.finished = True
        if self.reader_task is not None:
            self.reader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await self.reader_task
        if draining:
            await self.queue.join()
        else:
            for token in list(self.inflight.values()):
                token.cancel()  # free executor threads promptly
        if self.worker_task is not None:
            self.worker_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await self.worker_task
        with contextlib.suppress(ConnectionError, OSError):
            self.writer.close()
            await self.writer.wait_closed()
        self.server._clients.discard(self)


class AsyncCheckServer:
    """The asyncio front door around one :class:`CheckService`."""

    def __init__(
        self,
        service: Optional[CheckService] = None,
        cache_dir: Optional[str] = None,
        max_queue: int = DEFAULT_MAX_QUEUE,
        workers: Optional[int] = None,
    ) -> None:
        self.service = service or CheckService(cache_dir=cache_dir)
        self.cache_dir = cache_dir
        self.max_queue = max(1, max_queue)
        self.executor = ThreadPoolExecutor(
            max_workers=workers or min(32, (os.cpu_count() or 4) + 4),
            thread_name_prefix="tlp-aserve",
        )
        self.workspace: Optional[Workspace] = None
        self.watcher: Optional[StatWatcher] = None
        self._watcher_task: Optional["asyncio.Task[None]"] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._clients: Set[_Client] = set()
        self._client_counter = 0
        self._draining = False
        self._closed: Optional[asyncio.Event] = None
        self.started_at = time.time()

    # -- transports ----------------------------------------------------------

    def _ensure_event(self) -> asyncio.Event:
        # Created lazily inside the running loop (3.9 compatibility).
        if self._closed is None:
            self._closed = asyncio.Event()
        return self._closed

    async def start_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Listen on TCP; returns the bound (host, port) — port 0 binds
        an ephemeral port (tests, CI)."""
        self._ensure_event()
        server = await asyncio.start_server(
            self._handle_client, host, port, limit=STREAM_LIMIT
        )
        self._servers.append(server)
        bound = server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def start_unix(self, path: str) -> str:
        self._ensure_event()
        server = await asyncio.start_unix_server(
            self._handle_client, path, limit=STREAM_LIMIT
        )
        self._servers.append(server)
        return path

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            writer.close()
            return
        self._client_counter += 1
        client = _Client(self, reader, writer, self._client_counter)
        self._clients.add(client)
        if METRICS.enabled:
            METRICS.gauge("aserver.clients", len(self._clients))
            METRICS.inc("service.aserver.connections")
        client.handler_task = asyncio.current_task()
        client.reader_task = asyncio.create_task(client.read_loop())
        client.worker_task = asyncio.create_task(client.work())
        try:
            # The handler lives until the client hangs up (reader done)
            # or the worker dies; drain cancels the reader task.
            await asyncio.wait(
                {client.reader_task, client.worker_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            await client.finish(draining=self._draining)
            if METRICS.enabled:
                METRICS.gauge("aserver.clients", len(self._clients))

    # -- workspace & augmented ops (run on executor threads) -----------------

    def open_workspace(
        self,
        paths: Sequence[str],
        manifest: Optional[str] = None,
        jobs: int = 1,
    ) -> Workspace:
        """Mount a corpus; its verdict cache lives beside the server's
        (``<cache-dir>/workspace``) or in a private temp directory."""
        workspace_cache = (
            str(Path(self.cache_dir) / "workspace") if self.cache_dir else None
        )
        workspace = Workspace(
            paths, manifest=manifest, cache_dir=workspace_cache, jobs=jobs
        )
        previous, self.workspace = self.workspace, workspace
        if previous is not None:
            previous.close()
        return workspace

    def handle_local(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The aserver-specific ops + telemetry-augmented passthroughs."""
        op = request.get("op")
        try:
            if op == "workspace":
                return self._op_workspace(request)
            if op == "didChange":
                return self._op_did_change(request)
            if op == "closure":
                return self._op_closure(request)
            if op == "metrics":
                body = obs.prometheus_text(
                    extra_gauges={
                        **self.service._runtime_gauges(),
                        **self._runtime_gauges(),
                    }
                )
                return {
                    "ok": True,
                    "op": "metrics",
                    "content_type": obs.PROMETHEUS_CONTENT_TYPE,
                    "body": body,
                }
            response = self.service.handle(request)
            if op in ("stats", "health") and response.get("ok"):
                response["aserver"] = self.stats()
            return response
        except Exception as error:  # never kill a worker
            return {"ok": False, "op": op, "error": f"internal error: {error}"}

    def _op_workspace(self, request: Dict[str, Any]) -> Dict[str, Any]:
        root = request.get("root")
        if not isinstance(root, str):
            return {"ok": False, "op": "workspace", "error": "workspace needs 'root'"}
        manifest = request.get("manifest")
        workspace = self.open_workspace(
            [root], manifest=manifest if isinstance(manifest, str) else None
        )
        report = workspace.check_all()
        return {
            "ok": True,
            "op": "workspace",
            "root": root,
            "files": len(workspace.project.files),
            "shared": [entry.display for entry in workspace.project.shared],
            "well_typed": report.ok,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "wall_s": report.wall_s,
        }

    def _op_did_change(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self.workspace is None:
            return {
                "ok": False,
                "op": "didChange",
                "error": "no workspace: send {'op': 'workspace', 'root': ...} first",
            }
        raw = request.get("paths", request.get("path"))
        paths: Optional[List[str]]
        if raw is None:
            paths = None
        elif isinstance(raw, str):
            paths = [raw]
        elif isinstance(raw, list) and all(isinstance(p, str) for p in raw):
            paths = raw
        else:
            return {"ok": False, "op": "didChange", "error": "bad 'path'/'paths'"}
        report = self.workspace.on_change(paths)
        verdicts = {
            display: {
                "well_typed": result.ok,
                "diagnostics": list(result.diagnostics),
            }
            for display, result in self.workspace.results.items()
            if display in set(report.closure)
        }
        response = {"ok": True, "op": "didChange", "results": verdicts}
        response.update(report.to_json())
        return response

    def _op_closure(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self.workspace is None:
            return {"ok": False, "op": "closure", "error": "no workspace"}
        path = request.get("path")
        if not isinstance(path, str):
            return {"ok": False, "op": "closure", "error": "closure needs 'path'"}
        return {
            "ok": True,
            "op": "closure",
            "path": path,
            "closure": self.workspace.closure_of(path),
        }

    # -- observability -------------------------------------------------------

    def observe_request(
        self,
        op: Any,
        started: float,
        client: _Client,
        response: Dict[str, Any],
    ) -> None:
        if not METRICS.enabled:
            return
        duration = time.perf_counter() - started
        METRICS.inc("service.aserver.requests")
        METRICS.inc(f"service.aserver.op.{op}")
        METRICS.observe("service.aserver.request", duration)
        METRICS.observe(
            f"service.aserver.client.c{client.index}.request", duration
        )
        if response.get("cancelled"):
            METRICS.inc("service.aserver.cancelled")

    def _runtime_gauges(self) -> Dict[str, float]:
        return {
            "aserver.clients": float(len(self._clients)),
            "aserver.queue_depth": float(
                sum(client.queue.qsize() for client in self._clients)
            ),
            "aserver.inflight": float(
                sum(len(client.inflight) for client in self._clients)
            ),
            "aserver.draining": 1.0 if self._draining else 0.0,
            "aserver.uptime_seconds": time.time() - self.started_at,
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "clients": len(self._clients),
            "queue_depth": sum(c.queue.qsize() for c in self._clients),
            "inflight": sum(len(c.inflight) for c in self._clients),
            "max_queue": self.max_queue,
            "draining": self._draining,
            "workspace_files": (
                len(self.workspace.project.files) if self.workspace else 0
            ),
            "cancellations": self.service.cancellations,
        }

    # -- watching ------------------------------------------------------------

    def start_watcher(self, interval_s: float = 0.5) -> StatWatcher:
        """Poll the mounted workspace for on-disk changes (async task)."""
        if self.workspace is None:
            raise RuntimeError("start_watcher needs an open workspace")
        self.watcher = StatWatcher(self.workspace, interval_s=interval_s)
        self._watcher_task = asyncio.get_event_loop().create_task(
            self.watcher.run()
        )
        return self.watcher

    # -- shutdown ------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Schedule a graceful drain from inside the loop (shutdown op)."""
        asyncio.get_event_loop().create_task(self.shutdown())

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, drain every client, persist state, close."""
        closed = self._ensure_event()
        if self._draining:
            await closed.wait()
            return
        self._draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        if self._watcher_task is not None:
            self._watcher_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._watcher_task
        for client in list(self._clients):
            await client.finish(draining=drain)
        handler_tasks = [
            client.handler_task
            for client in list(self._clients)
            if client.handler_task is not None
        ]
        if handler_tasks:
            await asyncio.gather(*handler_tasks, return_exceptions=True)
        self.executor.shutdown(wait=True)
        if self.workspace is not None:
            self.workspace.close()
        self.service.close()
        closed.set()

    async def wait_closed(self) -> None:
        await self._ensure_event().wait()


# -- CLI ---------------------------------------------------------------------


async def _amain(arguments: argparse.Namespace) -> int:
    server = AsyncCheckServer(
        cache_dir=arguments.cache_dir,
        max_queue=arguments.max_queue,
        workers=arguments.workers,
    )
    endpoints: List[str] = []
    if arguments.unix:
        await server.start_unix(arguments.unix)
        endpoints.append(f"unix={arguments.unix}")
    if arguments.port is not None or not arguments.unix:
        host, port = await server.start_tcp(
            arguments.host, arguments.port if arguments.port is not None else 0
        )
        endpoints.append(f"tcp={host}:{port}")
    if arguments.watch:
        server.open_workspace([arguments.watch])
        report = server.workspace.check_all()  # type: ignore[union-attr]
        endpoints.append(
            f"watch={arguments.watch} ({len(report.results)} files)"
        )
        server.start_watcher(arguments.poll_interval)
    metrics_server = None
    if arguments.metrics_port is not None:
        metrics_server = start_metrics_server(
            server.service, arguments.metrics_port
        )
        endpoints.append(
            f"metrics=http://127.0.0.1:{metrics_server.server_address[1]}"
        )
    print(
        f"tlp-aserve: listening {' '.join(endpoints)} "
        f"(cache: {arguments.cache_dir or 'off'}, pid {os.getpid()})",
        file=sys.stderr,
        flush=True,
    )
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(server.shutdown())
            )
    try:
        await server.wait_closed()
    finally:
        if metrics_server is not None:
            metrics_server.shutdown()
            metrics_server.server_close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (installed as the ``tlp-aserve`` console script)."""
    parser = argparse.ArgumentParser(
        prog="tlp-aserve",
        description=(
            "Asyncio multi-client type-checking server: line-JSON over "
            "TCP/unix sockets with request ids, cancellation, workspace "
            "closure re-checking, and graceful drain."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="TCP port (0 = ephemeral; default: ephemeral unless --unix only)",
    )
    parser.add_argument(
        "--unix", default=None, metavar="PATH", help="also listen on a unix socket"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="share a persistent result cache with tlp-batch/tlp-serve",
    )
    parser.add_argument(
        "--stats", action="store_true", help="collect telemetry for stats/metrics ops"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="checker thread-pool size (default: min(32, cores+4))",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=DEFAULT_MAX_QUEUE,
        metavar="N",
        help=f"per-client queued-request bound (default {DEFAULT_MAX_QUEUE})",
    )
    parser.add_argument(
        "--watch",
        default=None,
        metavar="DIR",
        help="mount DIR as a workspace and re-check dependency closures on change",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="S",
        help="file-watch stat-poll interval in seconds (default 0.5)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve GET /metrics and /health on 127.0.0.1:PORT (0 = ephemeral)",
    )
    parser.add_argument(
        "--no-automata",
        action="store_true",
        help=(
            "disable the compiled tree automata for ground subtype/match "
            "queries (seed behaviour)"
        ),
    )
    arguments = parser.parse_args(argv)

    from ...core.automata import AUTOMATA

    was_enabled = METRICS.enabled
    if arguments.stats:
        obs.reset()
        METRICS.enabled = True
    automata_before = (
        AUTOMATA.set_enabled(False) if arguments.no_automata else None
    )
    try:
        return asyncio.run(_amain(arguments))
    except KeyboardInterrupt:
        return 0
    finally:
        if automata_before is not None:
            AUTOMATA.set_enabled(automata_before)
        METRICS.enabled = was_enabled


if __name__ == "__main__":
    sys.exit(main())
