"""Wire framing for the async check server family.

Two framings, one async core:

* **line-JSON** — one JSON object per ``\\n``-terminated line, the same
  protocol the legacy ``tlp-serve`` daemon speaks on stdin/stdout, here
  carried over TCP/unix-socket streams.  Requests may carry an ``"id"``
  (any JSON value); responses echo it, which is what makes concurrent
  in-flight requests and the ``cancel`` op addressable.
* **LSP JSON-RPC** — ``Content-Length``-headed frames as specified by
  the Language Server Protocol's base protocol, used by ``tlp-lsp``
  over stdio (and over sockets under test).

Both framings are exposed as pure encode/decode helpers plus thin
asyncio stream wrappers, so the server, the LSP adapter, the tests, and
the benchmark all share one implementation.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

__all__ = [
    "encode_line",
    "decode_line",
    "encode_lsp",
    "read_lsp_message",
    "JsonRpcStream",
    "jsonrpc_request",
    "jsonrpc_response",
    "jsonrpc_error",
    "jsonrpc_notification",
]

JSONRPC_VERSION = "2.0"

#: JSON-RPC error codes the adapter uses (LSP base protocol).
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INTERNAL_ERROR = -32603


# -- line-JSON ---------------------------------------------------------------


def encode_line(message: Dict[str, Any]) -> bytes:
    """One request/response as a ``\\n``-terminated JSON line."""
    return (json.dumps(message, ensure_ascii=False) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Any:
    """Parse one line into a JSON value (raises ``json.JSONDecodeError``)."""
    return json.loads(line.decode("utf-8"))


# -- LSP base-protocol framing ----------------------------------------------


def encode_lsp(message: Dict[str, Any]) -> bytes:
    """One JSON-RPC message as a ``Content-Length``-headed frame."""
    body = json.dumps(message, ensure_ascii=False).encode("utf-8")
    header = f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
    return header + body


async def read_lsp_message(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """Read one framed message; ``None`` on a clean EOF.

    Unknown headers (``Content-Type`` etc.) are skipped, per the spec;
    a malformed frame raises ``ValueError``.
    """
    content_length: Optional[int] = None
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None  # clean EOF between frames
            raise ValueError("truncated LSP header") from error
        if line == b"\r\n":
            break  # end of headers
        name, _, value = line.decode("ascii", "replace").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError as error:
                raise ValueError(f"bad Content-Length {value!r}") from error
    if content_length is None:
        raise ValueError("LSP frame without Content-Length")
    body = await reader.readexactly(content_length)
    message = json.loads(body.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("LSP message body must be a JSON object")
    return message


class JsonRpcStream:
    """A duplex JSON-RPC connection over asyncio streams.

    Reads are sequential (one consumer); writes are serialized by an
    internal lock so responses and server-initiated notifications
    (``publishDiagnostics``) can interleave safely.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self._write_lock = asyncio.Lock()

    async def read(self) -> Optional[Dict[str, Any]]:
        return await read_lsp_message(self.reader)

    async def write(self, message: Dict[str, Any]) -> None:
        async with self._write_lock:
            self.writer.write(encode_lsp(message))
            await self.writer.drain()

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# -- JSON-RPC message constructors ------------------------------------------


def jsonrpc_request(
    request_id: Any, method: str, params: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    message: Dict[str, Any] = {
        "jsonrpc": JSONRPC_VERSION,
        "id": request_id,
        "method": method,
    }
    if params is not None:
        message["params"] = params
    return message


def jsonrpc_response(request_id: Any, result: Any) -> Dict[str, Any]:
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "result": result}


def jsonrpc_error(
    request_id: Any, code: int, message: str
) -> Dict[str, Any]:
    return {
        "jsonrpc": JSONRPC_VERSION,
        "id": request_id,
        "error": {"code": code, "message": message},
    }


def jsonrpc_notification(
    method: str, params: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    message: Dict[str, Any] = {"jsonrpc": JSONRPC_VERSION, "method": method}
    if params is not None:
        message["params"] = params
    return message
