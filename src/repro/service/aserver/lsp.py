"""``tlp-lsp`` — the Language Server Protocol adapter.

A thin LSP face over the same async core as ``tlp-aserve``: JSON-RPC
with ``Content-Length`` framing (stdio in production, sockets under
test), full-document sync, and the checker + linter as diagnostics
providers:

* ``textDocument/didOpen`` / ``didChange`` run Definition 16 checking
  **and** the ``tlp-lint`` rule registry on an executor thread and
  publish the merged findings as ``textDocument/publishDiagnostics`` —
  TLP codes, real source *spans* (the analyzer's half-open ranges map
  directly onto LSP's), severities mapped error→1, warning→2, note→3,
  and ``source`` distinguishing ``tlp-check`` from ``tlp-lint``;
* ``textDocument/codeAction`` surfaces the analyzer's machine-applicable
  :class:`~repro.checker.diagnostics.FixIt` suggestions as ``quickfix``
  actions carrying a ready-to-apply :``WorkspaceEdit`` (span fix-its
  replace their range; declaration fix-its insert a line), plus one
  ``source`` action — **Infer missing declarations** — that runs the
  success-set analysis (:func:`repro.analysis.absint.infer_text`) and
  inserts the reconstructed ``PRED`` lines at the top of the document;
* ``shutdown``/``exit`` follow the spec (exit code 1 without a prior
  shutdown), and unknown requests get ``MethodNotFound`` instead of a
  dead connection.

Wire-up is editor-standard; ``docs/service.md`` carries VS Code and
Neovim snippets.  Every request lands in the ``service.lsp.*``
telemetry family when metrics are enabled.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
import time
import urllib.parse
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ...analysis import lint_text
from ...checker.diagnostics import DEFAULT_CODE, Diagnostic, Severity
from ...checker.frontend import check_text
from ...lang.ast import Position
from ...obs import METRICS
from .protocol import (
    INTERNAL_ERROR,
    METHOD_NOT_FOUND,
    JsonRpcStream,
    jsonrpc_error,
    jsonrpc_notification,
    jsonrpc_response,
)

__all__ = ["LspServer", "main"]

#: LSP DiagnosticSeverity values for the checker's severities.
_SEVERITY = {Severity.ERROR: 1, Severity.WARNING: 2, Severity.NOTE: 3}

#: Leading keywords marking a fix-it replacement as a whole declaration
#: line (inserted above the diagnostic rather than spliced into a span).
_DECLARATION_KEYWORDS = ("FUNC ", "TYPE ", "PRED ", "MODE ")

INFER_ACTION_TITLE = "Infer missing declarations"


def uri_to_path(uri: str) -> str:
    """A display path for ``file://`` URIs (other schemes pass through)."""
    parsed = urllib.parse.urlparse(uri)
    if parsed.scheme == "file":
        return urllib.request.url2pathname(parsed.path)
    return uri


def position_to_range(position: Optional[Position]) -> Dict[str, Any]:
    """Checker position (1-based, half-open span) → LSP range (0-based).

    A span-less position covers one character; no position at all
    anchors to the top of the document.
    """
    if position is None:
        return {
            "start": {"line": 0, "character": 0},
            "end": {"line": 0, "character": 0},
        }
    start = {"line": position.line - 1, "character": position.column - 1}
    if position.has_span:
        end = {
            "line": position.end_line - 1,
            "character": position.end_column - 1,
        }
    else:
        end = {"line": position.line - 1, "character": position.column}
    return {"start": start, "end": end}


def diagnostic_to_lsp(diagnostic: Diagnostic, source: str) -> Dict[str, Any]:
    item: Dict[str, Any] = {
        "range": position_to_range(diagnostic.position),
        "severity": _SEVERITY.get(diagnostic.severity, 3),
        "message": diagnostic.message,
        "source": source,
    }
    if diagnostic.code and diagnostic.code != DEFAULT_CODE:
        item["code"] = diagnostic.code
    return item


def _ranges_overlap(left: Dict[str, Any], right: Dict[str, Any]) -> bool:
    def key(point: Dict[str, Any]) -> Tuple[int, int]:
        return (int(point.get("line", 0)), int(point.get("character", 0)))

    return key(left["start"]) <= key(right["end"]) and key(
        right["start"]
    ) <= key(left["end"])


class LspServer:
    """One LSP session over a :class:`JsonRpcStream` (stdio or socket)."""

    def __init__(
        self,
        stream: JsonRpcStream,
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> None:
        self.stream = stream
        self.executor = executor or ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="tlp-lsp"
        )
        self._own_executor = executor is None
        #: uri → current full text (sync kind 1: full documents).
        self.documents: Dict[str, str] = {}
        #: uri → the analyzed findings backing published diagnostics and
        #: code actions: ``(diagnostic, source)`` pairs.
        self.findings: Dict[str, List[Tuple[Diagnostic, str]]] = {}
        self.initialized = False
        self.shutdown_requested = False
        self._exit_code: Optional[int] = None

    # -- main loop -----------------------------------------------------------

    async def serve(self) -> int:
        """Read messages until ``exit`` or EOF; returns the exit code."""
        while self._exit_code is None:
            try:
                message = await self.stream.read()
            except (ValueError, ConnectionError, OSError):
                self._exit_code = 1
                break
            if message is None:  # client hung up without exit
                self._exit_code = 0 if self.shutdown_requested else 1
                break
            await self._dispatch(message)
        if self._own_executor:
            self.executor.shutdown(wait=False)
        return self._exit_code

    async def _dispatch(self, message: Dict[str, Any]) -> None:
        method = message.get("method")
        request_id = message.get("id")
        params = message.get("params") or {}
        started = time.perf_counter()
        try:
            if method == "initialize":
                await self._respond(request_id, self._initialize_result())
                self.initialized = True
            elif method == "initialized":
                pass
            elif method == "shutdown":
                self.shutdown_requested = True
                await self._respond(request_id, None)
            elif method == "exit":
                self._exit_code = 0 if self.shutdown_requested else 1
            elif method == "textDocument/didOpen":
                await self._did_open(params)
            elif method == "textDocument/didChange":
                await self._did_change(params)
            elif method == "textDocument/didClose":
                await self._did_close(params)
            elif method == "textDocument/codeAction":
                actions = await self._code_actions(params)
                await self._respond(request_id, actions)
            elif method == "$/cancelRequest":
                pass  # every request here is fast; nothing to cancel
            elif request_id is not None:
                await self.stream.write(
                    jsonrpc_error(
                        request_id,
                        METHOD_NOT_FOUND,
                        f"method not supported: {method}",
                    )
                )
            # else: unknown notification — ignored, per the spec
        except Exception as error:  # a bug must not kill the session
            if request_id is not None:
                with contextlib.suppress(Exception):
                    await self.stream.write(
                        jsonrpc_error(
                            request_id, INTERNAL_ERROR, f"internal error: {error}"
                        )
                    )
        if METRICS.enabled and method:
            METRICS.inc(f"service.lsp.{method.replace('/', '.')}")
            METRICS.observe("service.lsp.request", time.perf_counter() - started)

    async def _respond(self, request_id: Any, result: Any) -> None:
        if request_id is not None:
            await self.stream.write(jsonrpc_response(request_id, result))

    @staticmethod
    def _initialize_result() -> Dict[str, Any]:
        return {
            "capabilities": {
                "textDocumentSync": {"openClose": True, "change": 1},
                "codeActionProvider": {
                    "codeActionKinds": ["quickfix", "source"]
                },
            },
            "serverInfo": {"name": "tlp-lsp", "version": "1.0"},
        }

    # -- document sync + diagnostics -----------------------------------------

    async def _did_open(self, params: Dict[str, Any]) -> None:
        document = params.get("textDocument") or {}
        uri = document.get("uri")
        text = document.get("text")
        if not isinstance(uri, str) or not isinstance(text, str):
            return
        self.documents[uri] = text
        await self._publish(uri)

    async def _did_change(self, params: Dict[str, Any]) -> None:
        document = params.get("textDocument") or {}
        uri = document.get("uri")
        changes = params.get("contentChanges") or []
        if not isinstance(uri, str) or not changes:
            return
        # Sync kind 1: the last change carries the full new text.
        text = changes[-1].get("text")
        if not isinstance(text, str):
            return
        self.documents[uri] = text
        await self._publish(uri)

    async def _did_close(self, params: Dict[str, Any]) -> None:
        document = params.get("textDocument") or {}
        uri = document.get("uri")
        if not isinstance(uri, str):
            return
        self.documents.pop(uri, None)
        self.findings.pop(uri, None)
        await self.stream.write(
            jsonrpc_notification(
                "textDocument/publishDiagnostics",
                {"uri": uri, "diagnostics": []},
            )
        )

    @staticmethod
    def _analyze(text: str, path: str) -> List[Tuple[Diagnostic, str]]:
        """Checker + linter, merged (runs on an executor thread)."""
        found: List[Tuple[Diagnostic, str]] = []
        module = check_text(text)
        for diagnostic in module.diagnostics:
            found.append((diagnostic, "tlp-check"))
        report = lint_text(text, path=path)
        for diagnostic in report.diagnostics:
            found.append((diagnostic, "tlp-lint"))
        return found

    async def _publish(self, uri: str) -> None:
        text = self.documents.get(uri)
        if text is None:
            return
        loop = asyncio.get_running_loop()
        found = await loop.run_in_executor(
            self.executor, self._analyze, text, uri_to_path(uri)
        )
        if self.documents.get(uri) != text:
            return  # superseded by a newer didChange mid-analysis
        self.findings[uri] = found
        if METRICS.enabled:
            METRICS.inc("service.lsp.published", len(found))
        await self.stream.write(
            jsonrpc_notification(
                "textDocument/publishDiagnostics",
                {
                    "uri": uri,
                    "diagnostics": [
                        diagnostic_to_lsp(diagnostic, source)
                        for diagnostic, source in found
                    ],
                },
            )
        )

    # -- code actions --------------------------------------------------------

    async def _code_actions(self, params: Dict[str, Any]) -> List[Dict[str, Any]]:
        document = params.get("textDocument") or {}
        uri = document.get("uri")
        if not isinstance(uri, str) or uri not in self.documents:
            return []
        requested = params.get("range") or position_to_range(None)
        only = (params.get("context") or {}).get("only")

        def wanted(kind: str) -> bool:
            if not isinstance(only, list) or not only:
                return True
            return any(kind == o or kind.startswith(o + ".") or o == "" for o in only)

        actions: List[Dict[str, Any]] = []
        if wanted("quickfix"):
            for diagnostic, source in self.findings.get(uri, []):
                lsp_diagnostic = diagnostic_to_lsp(diagnostic, source)
                if not _ranges_overlap(lsp_diagnostic["range"], requested):
                    continue
                for fixit in diagnostic.fixits:
                    edit = self._fixit_edit(uri, diagnostic, fixit)
                    if edit is None:
                        continue  # advisory-only fix-it
                    actions.append(
                        {
                            "title": fixit.description,
                            "kind": "quickfix",
                            "diagnostics": [lsp_diagnostic],
                            "edit": edit,
                        }
                    )
        if wanted("source"):
            infer_action = await self._infer_action(uri)
            if infer_action is not None:
                actions.append(infer_action)
        if METRICS.enabled:
            METRICS.inc("service.lsp.code_actions", len(actions))
        return actions

    def _fixit_edit(
        self, uri: str, diagnostic: Diagnostic, fixit: Any
    ) -> Optional[Dict[str, Any]]:
        """A ``WorkspaceEdit`` for one fix-it, or ``None`` if advisory.

        Span fix-its replace their range in place.  Declaration fix-its
        (a complete ``FUNC``/``TYPE``/``PRED``/``MODE`` line) insert a
        new line above their anchor — the declaration belongs in the
        program, not spliced over the expression that provoked it.
        """
        replacement = fixit.replacement
        if not replacement:
            return None
        position = fixit.position
        if position is not None and position.has_span:
            return {
                "changes": {
                    uri: [
                        {
                            "range": position_to_range(position),
                            "newText": replacement,
                        }
                    ]
                }
            }
        is_declaration = replacement.rstrip().endswith(".") and replacement.lstrip().startswith(_DECLARATION_KEYWORDS)
        if not is_declaration:
            return None
        anchor = position or diagnostic.position
        line = (anchor.line - 1) if anchor is not None else 0
        point = {"line": line, "character": 0}
        return {
            "changes": {
                uri: [
                    {
                        "range": {"start": point, "end": point},
                        "newText": replacement.rstrip("\n") + "\n",
                    }
                ]
            }
        }

    async def _infer_action(self, uri: str) -> Optional[Dict[str, Any]]:
        """The ``source`` action inserting inferred ``PRED`` declarations."""
        text = self.documents.get(uri)
        if text is None:
            return None
        from ...analysis.absint import infer_text

        loop = asyncio.get_running_loop()
        inference = await loop.run_in_executor(
            self.executor, infer_text, text, uri_to_path(uri)
        )
        if inference is None:
            return None
        declarations = inference.declaration_lines()
        if not declarations:
            return None
        top = {"line": 0, "character": 0}
        return {
            "title": INFER_ACTION_TITLE,
            "kind": "source",
            "edit": {
                "changes": {
                    uri: [
                        {
                            "range": {"start": top, "end": top},
                            "newText": "\n".join(declarations) + "\n",
                        }
                    ]
                }
            },
        }


# -- stdio wiring ------------------------------------------------------------


async def stdio_stream() -> JsonRpcStream:
    """A :class:`JsonRpcStream` over this process's stdin/stdout."""
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin.buffer
    )
    transport, protocol = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin, sys.stdout.buffer
    )
    writer = asyncio.StreamWriter(transport, protocol, reader, loop)
    return JsonRpcStream(reader, writer)


async def _amain() -> int:
    server = LspServer(await stdio_stream())
    return await server.serve()


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (installed as the ``tlp-lsp`` console script)."""
    parser = argparse.ArgumentParser(
        prog="tlp-lsp",
        description=(
            "Language Server Protocol adapter for the TLP checker and "
            "linter: stdio JSON-RPC, publishDiagnostics with spans, "
            "fix-it code actions, and declaration inference."
        ),
    )
    parser.parse_args(argv)
    print("tlp-lsp: serving LSP on stdio", file=sys.stderr, flush=True)
    try:
        return asyncio.run(_amain())
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
