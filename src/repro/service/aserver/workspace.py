"""The workspace layer: dependency-closure invalidation over a corpus.

A :class:`Workspace` wraps one project (a directory walk or a
``tlp-project.json`` manifest) plus a content-addressed result cache and
answers the interactive question the async server and the LSP adapter
ask on every edit: *which members must be re-checked, and which verdicts
can be replayed?*

The declaration-dependency graph falls straight out of the corpus
model's digests:

* a **member** file is checked as ``shared prelude + member``, so its
  cache key is ``(member digest, declarations digest)`` — editing the
  member moves only its own key: the dependency closure of a member is
  the member itself;
* a **shared declaration** file feeds the declarations digest, so
  editing it moves *every* member's key at once: the closure of a shared
  file is the whole corpus (a ``TYPE``/constraint edit can change any
  verdict — Definition 16 is global in the declarations);
* the **manifest** itself can change membership, so its closure is also
  the whole corpus.

:meth:`Workspace.on_change` re-loads the project, computes the closure
of what actually changed (by digest, not by the event's say-so), and
runs one cache-backed batch pass: members outside the closure replay
from the cache — observable through the ``cache_probe`` telemetry the
acceptance tests assert on — and only the closure is re-checked.

:class:`StatWatcher` is the no-new-dependencies file watcher: a
stat-polling loop over the workspace's files (members, shared prelude,
manifest) that feeds ``on_change`` whenever an ``(mtime_ns, size)``
signature moves, a file appears, or one disappears.
"""

from __future__ import annotations

import asyncio
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ...obs import METRICS
from ..cache import ResultCache
from ..project import MANIFEST_NAME, Project, load_project
from ..runner import BatchReport, FileResult, run_batch

__all__ = ["RecheckReport", "Workspace", "StatWatcher"]


@dataclass
class RecheckReport:
    """What one ``on_change`` pass did, closure and cache behaviour included."""

    #: Member displays whose content digest actually moved (plus new members).
    changed: List[str] = field(default_factory=list)
    #: The dependency closure that had to be re-checked.
    closure: List[str] = field(default_factory=list)
    #: Member displays that really ran the checker (cache misses).
    checked: List[str] = field(default_factory=list)
    #: Members removed from the corpus since the last pass.
    removed: List[str] = field(default_factory=list)
    #: True when the shared prelude / manifest changed (whole-corpus closure).
    declarations_changed: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0
    ok: bool = True

    def to_json(self) -> Dict[str, Any]:
        return {
            "changed": list(self.changed),
            "closure": list(self.closure),
            "checked": list(self.checked),
            "removed": list(self.removed),
            "declarations_changed": self.declarations_changed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_s": self.wall_s,
            "ok": self.ok,
        }


class Workspace:
    """One watched corpus: project model + result cache + latest verdicts.

    Thread-safe: the server calls :meth:`on_change` from executor
    threads while a :class:`StatWatcher` may fire concurrently; one lock
    serializes whole passes (each pass is itself a consistent
    probe→check→record batch).

    Without an explicit ``cache``/``cache_dir`` the workspace creates a
    private temporary cache directory (cleaned up by :meth:`close`), so
    closure-only re-checking works out of the box.
    """

    def __init__(
        self,
        paths: Sequence[str],
        manifest: Optional[str] = None,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[str] = None,
        jobs: int = 1,
        use: str = "thread",
    ) -> None:
        self._paths = [str(p) for p in paths]
        self._manifest = manifest
        self._own_cache_dir: Optional[tempfile.TemporaryDirectory] = None
        if cache is None:
            if cache_dir is None:
                self._own_cache_dir = tempfile.TemporaryDirectory(
                    prefix="tlp-workspace-"
                )
                cache_dir = self._own_cache_dir.name
            cache = ResultCache(cache_dir)
        self.cache = cache
        self.jobs = jobs
        self.use = use
        self._lock = threading.Lock()
        self.project: Project = load_project(self._paths, self._manifest)
        #: display → latest :class:`FileResult` (fresh or replayed).
        self.results: Dict[str, FileResult] = {}
        self.passes = 0

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        try:
            self.cache.save()
        finally:
            if self._own_cache_dir is not None:
                self._own_cache_dir.cleanup()
                self._own_cache_dir = None

    # -- the dependency graph ------------------------------------------------

    def member_displays(self) -> List[str]:
        return [member.display for member in self.project.files]

    def watch_paths(self) -> List[Path]:
        """Every file whose change can invalidate a verdict."""
        paths = [member.path for member in self.project.files]
        paths.extend(entry.path for entry in self.project.shared)
        manifest = (
            Path(self._manifest)
            if self._manifest is not None
            else self.project.root / MANIFEST_NAME
        )
        if manifest.is_file():
            paths.append(manifest)
        return paths

    def dependency_graph(self) -> Dict[str, List[str]]:
        """display → displays invalidated when it changes.

        Members invalidate themselves; shared prelude files (and the
        manifest) invalidate every member.
        """
        members = self.member_displays()
        graph: Dict[str, List[str]] = {
            display: [display] for display in members
        }
        for entry in self.project.shared:
            graph[entry.display] = list(members)
        return graph

    def closure_of(self, path: str) -> List[str]:
        """The member displays invalidated by a change to ``path``."""
        resolved = Path(path).resolve()
        shared_paths = {entry.path.resolve() for entry in self.project.shared}
        manifest = (
            Path(self._manifest).resolve()
            if self._manifest is not None
            else (self.project.root / MANIFEST_NAME).resolve()
        )
        if resolved in shared_paths or resolved == manifest:
            return sorted(self.member_displays())
        for member in self.project.files:
            if member.path.resolve() == resolved:
                return [member.display]
        return []  # unknown file: nothing currently depends on it

    # -- checking ------------------------------------------------------------

    def _run(self, force: bool = False) -> BatchReport:
        report = run_batch(
            self.project,
            cache=self.cache,
            jobs=self.jobs,
            use=self.use,
            force=force,
        )
        for result in report.results:
            self.results[result.display] = result
        self.passes += 1
        return report

    def check_all(self, force: bool = False) -> BatchReport:
        """One full batch pass (cache-backed unless ``force``)."""
        with self._lock:
            return self._run(force=force)

    def on_change(
        self, changed_paths: Optional[Sequence[str]] = None
    ) -> RecheckReport:
        """Re-load the project and re-check exactly the closure of what
        changed.

        ``changed_paths`` (from a watcher or a ``didChange``) is advisory
        only: the pass re-fingerprints the corpus and derives the real
        change set from digests, so a spurious event costs one cache-hit
        sweep and a missed event cannot leave a stale verdict.
        """
        with self._lock:
            started = time.perf_counter()
            old_digests = {
                member.display: member.digest for member in self.project.files
            }
            old_decls = self.project.declarations_digest
            self.project = load_project(self._paths, self._manifest)
            new_decls = self.project.declarations_digest
            declarations_changed = new_decls != old_decls

            changed = [
                member.display
                for member in self.project.files
                if old_digests.get(member.display) != member.digest
            ]
            removed = sorted(
                set(old_digests) - {m.display for m in self.project.files}
            )
            for display in removed:
                self.results.pop(display, None)

            if declarations_changed:
                closure = sorted(self.member_displays())
            else:
                closure = sorted(changed)

            batch = self._run()
            checked = sorted(
                result.display
                for result in batch.results
                if not result.from_cache
            )
            report = RecheckReport(
                changed=sorted(changed),
                closure=closure,
                checked=checked,
                removed=removed,
                declarations_changed=declarations_changed,
                cache_hits=batch.cache_hits,
                cache_misses=batch.cache_misses,
                wall_s=time.perf_counter() - started,
                ok=batch.ok,
            )
            if METRICS.enabled:
                METRICS.inc("service.aserver.rechecks")
                METRICS.inc("service.aserver.recheck.files", len(checked))
                METRICS.observe("service.aserver.recheck", report.wall_s)
            return report


class StatWatcher:
    """Poll-the-filesystem change detection (no dependencies, no inotify).

    Tracks an ``(mtime_ns, size)`` signature per watched file; a changed
    signature, a new file, or a vanished file makes the next
    :meth:`poll_once` return it.  :meth:`run` is the asyncio loop the
    server mounts: poll, hand changes to ``Workspace.on_change`` on an
    executor thread (the event loop never blocks on a re-check), repeat.
    """

    MISSING: Tuple[int, int] = (-1, -1)

    def __init__(self, workspace: Workspace, interval_s: float = 0.5) -> None:
        self.workspace = workspace
        self.interval_s = interval_s
        self._signatures = self._scan()
        self.polls = 0

    def _scan(self) -> Dict[str, Tuple[int, int]]:
        signatures: Dict[str, Tuple[int, int]] = {}
        for path in self.workspace.watch_paths():
            try:
                stat = path.stat()
                signatures[str(path)] = (stat.st_mtime_ns, stat.st_size)
            except OSError:
                signatures[str(path)] = self.MISSING
        return signatures

    def poll_once(self) -> List[str]:
        """Paths whose signature moved since the previous poll."""
        self.polls += 1
        fresh = self._scan()
        changed = [
            path
            for path in set(self._signatures) | set(fresh)
            if self._signatures.get(path, self.MISSING)
            != fresh.get(path, self.MISSING)
        ]
        self._signatures = fresh
        return sorted(changed)

    async def run(
        self,
        on_recheck: Optional[Callable[[RecheckReport], None]] = None,
    ) -> None:
        """Poll forever (cancel the task to stop)."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.interval_s)
            changed = self.poll_once()
            if not changed:
                continue
            report = await loop.run_in_executor(
                None, self.workspace.on_change, changed
            )
            # The watcher just rebuilt the watch list; refresh signatures
            # so a rename/add settles in one pass instead of two.
            self._signatures = self._scan()
            if on_recheck is not None:
                on_recheck(report)
