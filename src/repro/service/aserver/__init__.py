"""repro.service.aserver — the asyncio multi-client service family.

Three layers over one :class:`~repro.service.daemon.CheckService` brain:

* :mod:`~repro.service.aserver.protocol` — wire framing: line-JSON with
  request ids (the legacy daemon protocol, made concurrent) and LSP
  ``Content-Length`` JSON-RPC, as pure helpers plus asyncio wrappers;
* :mod:`~repro.service.aserver.server` — ``tlp-aserve``: TCP/unix-socket
  listeners, per-client bounded queues (backpressure), thread-pool
  check execution, out-of-band ``cancel`` reaching clause-boundary
  checkpoints, workspace ops, graceful drain;
* :mod:`~repro.service.aserver.workspace` — the dependency-closure
  invalidation layer: declaration-dependency graph from corpus digests,
  stat-polling watcher, re-check exactly the closure of a change while
  everything outside it replays from the content-addressed cache;
* :mod:`~repro.service.aserver.lsp` — ``tlp-lsp``: the Language Server
  Protocol adapter (publishDiagnostics with spans, fix-it code actions,
  declaration-inference source action) on the same async core.

``docs/service.md`` documents the protocol and the editor wiring.
"""

from .protocol import (
    JsonRpcStream,
    decode_line,
    encode_line,
    encode_lsp,
    jsonrpc_error,
    jsonrpc_notification,
    jsonrpc_request,
    jsonrpc_response,
    read_lsp_message,
)
from .server import DEFAULT_MAX_QUEUE, AsyncCheckServer
from .workspace import RecheckReport, StatWatcher, Workspace
from .lsp import LspServer

__all__ = [
    "AsyncCheckServer",
    "DEFAULT_MAX_QUEUE",
    "JsonRpcStream",
    "LspServer",
    "RecheckReport",
    "StatWatcher",
    "Workspace",
    "decode_line",
    "encode_line",
    "encode_lsp",
    "jsonrpc_error",
    "jsonrpc_notification",
    "jsonrpc_request",
    "jsonrpc_response",
    "read_lsp_message",
]
