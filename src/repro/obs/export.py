"""Prometheus text-exposition rendering of a telemetry snapshot.

Turns a :meth:`TelemetryRegistry.snapshot` into the plain-text format
every Prometheus-compatible scraper understands (text exposition format
version 0.0.4):

* counters   → ``tlp_<name>_total`` with ``# TYPE ... counter``;
* gauges     → ``tlp_<name>`` with ``# TYPE ... gauge``;
* timers     → ``tlp_<name>_seconds`` summaries (``_count``/``_sum``)
  plus ``_seconds_min``/``_seconds_max`` gauges (Prometheus summaries
  have no native extrema);
* histograms → ``tlp_<name>_seconds`` classic histograms: cumulative
  ``_bucket{le="..."}`` series over the fixed log2 grid, ending in
  ``le="+Inf"``, plus ``_sum`` and ``_count``.

Dotted metric names become underscore-separated (``subtype.holds`` →
``tlp_subtype_holds_seconds``); an optional label set is attached to
every sample line, which is how multi-worker deployments distinguish
scrapes (``instance``/``job`` conventionally come from the scraper).

The module also ships a strict :func:`parse_exposition` used by the
tests and the CI gate to assert the output is genuinely scrapeable —
every sample line must round-trip, bucket series must be cumulative,
and ``+Inf`` must equal ``_count``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional

from .histogram import BUCKET_BOUNDS_S

__all__ = [
    "CONTENT_TYPE",
    "render_prometheus",
    "parse_exposition",
]

#: What a conforming HTTP endpoint serves the exposition as.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Every metric this writer emits is namespaced under one prefix.
NAMESPACE = "tlp"

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")

#: One sample line: name, optional {labels}, value.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$"
)


def _metric_name(name: str, suffix: str = "") -> str:
    base = _INVALID_METRIC_CHARS.sub("_", name)
    return f"{NAMESPACE}_{base}{suffix}"


def _render_labels(labels: Optional[Mapping[str, str]]) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        clean_key = _INVALID_LABEL_CHARS.sub("_", str(key))
        value = str(labels[key]).replace("\\", r"\\").replace('"', r"\"")
        value = value.replace("\n", r"\n")
        parts.append(f'{clean_key}="{value}"')
    return "{" + ",".join(parts) + "}"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _merge_label_sets(
    base: str, extra: Optional[Mapping[str, str]]
) -> str:
    """Join the shared label block with a per-sample one (``le=...``)."""
    if not base:
        return _render_labels(extra)
    if not extra:
        return base
    inner = base[1:-1] + "," + _render_labels(extra)[1:-1]
    return "{" + inner + "}"


def render_prometheus(
    snapshot: Dict[str, Any],
    labels: Optional[Mapping[str, str]] = None,
    extra_gauges: Optional[Mapping[str, float]] = None,
) -> str:
    """Render a registry snapshot as Prometheus text exposition.

    ``labels`` attach to every sample line; ``extra_gauges`` let a
    surface inject point-in-time state that lives outside the registry
    (daemon uptime, LRU occupancy) without mutating the registry first.
    """
    label_block = _render_labels(labels)
    lines: List[str] = []

    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{label_block} {_fmt(value)}")

    gauges = dict(snapshot.get("gauges", {}))
    if extra_gauges:
        gauges.update(extra_gauges)
    for name in sorted(gauges):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{label_block} {_fmt(gauges[name])}")

    histograms = snapshot.get("histograms", {})
    for name, stat in snapshot.get("timers", {}).items():
        # Timers and histograms record the same samples under the same
        # name; when the histogram is present it carries _sum/_count
        # itself, so the summary would collide — emit only the extrema
        # the histogram lacks.
        if name not in histograms:
            metric = _metric_name(name, "_seconds")
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count{label_block} {_fmt(stat['count'])}")
            lines.append(f"{metric}_sum{label_block} {_fmt(stat['total_s'])}")
        for bound_name, key in (("min", "min_s"), ("max", "max_s")):
            extremum = _metric_name(name, f"_seconds_{bound_name}")
            lines.append(f"# TYPE {extremum} gauge")
            lines.append(
                f"{extremum}{label_block} {_fmt(stat.get(key, 0.0))}"
            )

    for name, stat in histograms.items():
        metric = _metric_name(name, "_seconds")
        lines.append(f"# TYPE {metric} histogram")
        buckets = {
            int(index): int(count)
            for index, count in stat.get("buckets", {}).items()
        }
        cumulative = 0
        for index, bound in enumerate(BUCKET_BOUNDS_S):
            cumulative += buckets.get(index, 0)
            le = _merge_label_sets(label_block, {"le": f"{bound:.9g}"})
            lines.append(f"{metric}_bucket{le} {cumulative}")
        le = _merge_label_sets(label_block, {"le": "+Inf"})
        lines.append(f"{metric}_bucket{le} {_fmt(stat['count'])}")
        lines.append(f"{metric}_sum{label_block} {_fmt(stat['total_s'])}")
        lines.append(f"{metric}_count{label_block} {_fmt(stat['count'])}")

    return "\n".join(lines) + "\n" if lines else "\n"


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{"name{labels}": value}``.

    Strict: raises :class:`ValueError` on any line that is neither a
    comment, blank, nor a well-formed sample.  The tests and the CI
    observability gate run every rendered document through this.
    """
    samples: Dict[str, float] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        matched = _SAMPLE_LINE.match(line)
        if matched is None:
            raise ValueError(
                f"line {line_number} is not valid exposition: {line!r}"
            )
        raw = matched.group("value")
        value = float("inf") if raw in ("Inf", "+Inf") else float(raw)
        key = matched.group("name") + (matched.group("labels") or "")
        if key in samples:
            raise ValueError(f"line {line_number} repeats sample {key!r}")
        samples[key] = value
    return samples
