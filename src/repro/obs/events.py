"""Typed trace events for the subtype/match/resolution pipeline.

Every event carries a ``span_id`` (fresh per event), a ``parent_id``
(the enclosing span at emission time, or ``None`` at top level) and a
``ts`` (seconds on the tracer's monotonic clock since tracing started).
Span-shaped events — those that enclose child work, like a whole
``subtype_goal`` derivation — additionally carry ``dur``, the span's
wall-clock length; instantaneous events leave it ``None``.

The kinds mirror the paper's moving parts:

* ``subtype_goal`` — one ``τ1 ⪰_C τ2`` query (Definition 3), whether
  decided by the deterministic strategy (Theorems 1–3) or searched by
  the naive definitional prover;
* ``sld_step`` — one resolution step of the generic SLD engine;
* ``match_call`` — one ``match(τ, t)`` (Definition 13) or one
  constraint-collecting match (Section 7);
* ``resolvent_check`` — one Theorem 6 re-check of a resolvent during
  typed execution;
* ``cache_probe`` — one memo-table lookup (hit or miss);
* ``phase`` — a generic named span (per-clause checker timings, whole
  queries) used wherever no more specific kind applies.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Optional

__all__ = [
    "TraceEvent",
    "SubtypeGoalEvent",
    "SldStepEvent",
    "MatchCallEvent",
    "ResolventCheckEvent",
    "SubjectReductionEvent",
    "CacheProbeEvent",
    "PhaseEvent",
]


@dataclass(frozen=True)
class TraceEvent:
    """Common envelope: identity, nesting, and timing."""

    kind: ClassVar[str] = "event"

    span_id: int
    parent_id: Optional[int]
    ts: float
    dur: Optional[float]

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (the JSONL sink serialises exactly this)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        for field in fields(self):
            payload[field.name] = getattr(self, field.name)
        return payload


@dataclass(frozen=True)
class SubtypeGoalEvent(TraceEvent):
    """One subtype query ``supertype >= subtype`` (Definition 3)."""

    kind: ClassVar[str] = "subtype_goal"

    supertype: str = ""
    subtype: str = ""
    engine: str = "strategy"  # "strategy" (Theorems 1-3) | "naive" (SLD over H_C)
    result: Optional[bool] = None  # None: unknown at budget (naive only)
    substitution_steps: int = 0
    expansions: int = 0
    reason: Optional[str] = None  # exhaustion reason for naive unknowns


@dataclass(frozen=True)
class SldStepEvent(TraceEvent):
    """One successful SLD-resolution step (goal x clause -> resolvent)."""

    kind: ClassVar[str] = "sld_step"

    goal: str = ""
    depth: int = 0
    resolvent_size: int = 0


@dataclass(frozen=True)
class MatchCallEvent(TraceEvent):
    """One ``match(τ, t)`` call (Definition 13 / Section 7 variant)."""

    kind: ClassVar[str] = "match_call"

    matcher: str = "plain"  # "plain" (Definition 13) | "constraint" (Section 7)
    type_term: str = ""
    term: str = ""
    outcome: str = "typing"  # "typing" | "fail" | "bottom"
    typed_variables: int = 0
    equations: int = 0
    covers: int = 0


@dataclass(frozen=True)
class ResolventCheckEvent(TraceEvent):
    """One Theorem 6 well-typedness re-check of a resolvent."""

    kind: ClassVar[str] = "resolvent_check"

    size: int = 0
    well_typed: bool = True
    reason: Optional[str] = None


@dataclass(frozen=True)
class SubjectReductionEvent(TraceEvent):
    """One ``--typed-run`` per-step subject-reduction assertion.

    Emitted by :class:`~repro.core.typed_run.TypedRunner` for every
    resolution step: ``step`` is the 1-based step index within the
    query, ``via`` records which checker judged the resolvent
    (``strict`` Definition 16 or the ``directional`` moded fallback),
    and a failed assertion carries the checker's ``reason``.
    """

    kind: ClassVar[str] = "typed_run_step"

    step: int = 0
    size: int = 0
    well_typed: bool = True
    via: Optional[str] = None
    reason: Optional[str] = None


@dataclass(frozen=True)
class CacheProbeEvent(TraceEvent):
    """One memo-table lookup."""

    kind: ClassVar[str] = "cache_probe"

    cache: str = ""
    hit: bool = False


@dataclass(frozen=True)
class PhaseEvent(TraceEvent):
    """A generic named span (checker phases, whole queries)."""

    kind: ClassVar[str] = "phase"

    name: str = ""
    detail: str = ""
