"""Structured trace-event stream: tracer, span nesting, and sinks.

The :class:`Tracer` hands out span ids from one process-wide sequence and
keeps a per-thread stack of open spans, so events emitted while a span is
open automatically carry its id as their ``parent_id`` — derivations
nest without any plumbing in the instrumented code.

Tracing is **on iff at least one sink is attached** (``tracer.enabled``
is kept in sync by ``add_sink``/``remove_sink``).  Instrumented code
guards emission with that flag, so an un-traced process pays one
attribute check per potential event and allocates nothing.

Three sinks cover the use cases:

* :class:`MemorySink` — an in-memory list, for tests and programmatic
  inspection;
* :class:`JsonlSink` — one JSON object per line on any text stream
  (``tlp-check --trace``, ``BENCH_*.json`` companions);
* :class:`TreeSink` — collects events and renders the span forest as an
  indented, human-readable tree.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, IO, List, Optional, Sequence, Type

from .events import PhaseEvent, TraceEvent

__all__ = [
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "TreeSink",
    "SpanHandle",
    "Tracer",
    "render_tree",
]


class TraceSink:
    """Sink interface: receives every emitted event."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any resource the sink holds (default: nothing).

        Called by :meth:`Tracer.close_sinks` — the shutdown hook the CLIs
        and the daemon run in their ``finally`` blocks, so file-backed
        sinks are flushed and closed even when the traced operation
        raises.
        """


class MemorySink(TraceSink):
    """Collects events in a list (the test/inspection sink)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()


class JsonlSink(TraceSink):
    """Writes one JSON object per event to a text stream.

    With ``owns_stream=True`` the sink is responsible for the stream's
    lifetime: :meth:`close` (invoked directly or via
    :meth:`Tracer.close_sinks`) flushes and closes it, so a trace file
    ends up complete on disk even when the traced operation raises or
    the daemon shuts down mid-stream.  Borrowed streams (stderr, a
    caller-managed file) are flushed but never closed.
    """

    def __init__(
        self,
        stream: IO[str],
        flush_every_line: bool = True,
        owns_stream: bool = False,
    ) -> None:
        self.stream = stream
        self.flush_every_line = flush_every_line
        self.owns_stream = owns_stream
        self.lines_written = 0
        self.closed = False

    def emit(self, event: TraceEvent) -> None:
        if self.closed:
            return
        self.stream.write(json.dumps(event.to_dict(), default=str) + "\n")
        self.lines_written += 1
        if self.flush_every_line:
            self.stream.flush()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.stream.flush()
        except ValueError:  # stream already closed underneath us
            return
        if self.owns_stream:
            self.stream.close()


class TreeSink(TraceSink):
    """Collects events and renders them as an indented span tree."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def render(self) -> str:
        return render_tree(self.events)


class SpanHandle:
    """An open span: identity plus its start time."""

    __slots__ = ("span_id", "parent_id", "start")

    def __init__(self, span_id: int, parent_id: Optional[int], start: float) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start


class _NullSpan:
    """Shared no-op context manager for ``span()`` while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that opens a span and emits a PhaseEvent on exit."""

    __slots__ = ("_tracer", "_name", "_detail", "_handle")

    def __init__(self, tracer: "Tracer", name: str, detail: str) -> None:
        self._tracer = tracer
        self._name = name
        self._detail = detail
        self._handle: Optional[SpanHandle] = None

    def __enter__(self) -> SpanHandle:
        self._handle = self._tracer.begin()
        return self._handle

    def __exit__(self, *exc: object) -> bool:
        assert self._handle is not None
        self._tracer.end(
            self._handle, PhaseEvent, name=self._name, detail=self._detail
        )
        return False


class Tracer:
    """Span-id allocation, per-thread nesting, and fan-out to sinks."""

    def __init__(self) -> None:
        self.enabled = False
        self._sinks: List[TraceSink] = []
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._next_id = 0
        self._epoch = time.perf_counter()
        self.emitted = 0

    # -- sink management ------------------------------------------------------

    def add_sink(self, sink: TraceSink) -> TraceSink:
        with self._lock:
            self._sinks.append(sink)
            self.enabled = True
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)
            self.enabled = bool(self._sinks)

    def clear_sinks(self) -> None:
        with self._lock:
            self._sinks.clear()
            self.enabled = False

    def close_sinks(self) -> None:
        """Detach every sink and close each one (the shutdown hook).

        Unlike :meth:`clear_sinks` this also runs each sink's ``close``,
        so file-backed sinks flush their buffers and release their file
        handles — run this from a ``finally`` around any traced
        operation that attached an owning :class:`JsonlSink`.
        """
        with self._lock:
            sinks = list(self._sinks)
            self._sinks.clear()
            self.enabled = False
        for sink in sinks:
            sink.close()

    def reset(self) -> None:
        """Restart ids and the clock (sinks stay attached)."""
        with self._lock:
            self._next_id = 0
            self._epoch = time.perf_counter()
            self.emitted = 0
        self._tls = threading.local()

    # -- span bookkeeping -----------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def now(self) -> float:
        """Seconds on the tracer's monotonic clock."""
        return time.perf_counter() - self._epoch

    def current_span(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    def begin(self) -> SpanHandle:
        """Open a span: allocate an id and push it on this thread's stack."""
        handle = SpanHandle(self._allocate_id(), self.current_span(), self.now())
        self._stack().append(handle.span_id)
        return handle

    def end(
        self,
        handle: SpanHandle,
        event_class: Type[TraceEvent] = PhaseEvent,
        **fields: Any,
    ) -> Optional[TraceEvent]:
        """Close a span and emit its event (with duration)."""
        stack = self._stack()
        if stack and stack[-1] == handle.span_id:
            stack.pop()
        elif handle.span_id in stack:  # tolerate mismatched nesting
            stack.remove(handle.span_id)
        event = event_class(
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            ts=handle.start,
            dur=self.now() - handle.start,
            **fields,
        )
        self._emit(event)
        return event

    def point(self, event_class: Type[TraceEvent], **fields: Any) -> Optional[TraceEvent]:
        """Emit an instantaneous event under the current span."""
        event = event_class(
            span_id=self._allocate_id(),
            parent_id=self.current_span(),
            ts=self.now(),
            dur=None,
            **fields,
        )
        self._emit(event)
        return event

    def span(self, name: str, detail: str = ""):
        """Context manager: a named ``phase`` span around a block.

        Returns a shared no-op manager while disabled (no allocation).
        """
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, detail)

    # -- emission -------------------------------------------------------------

    def _emit(self, event: TraceEvent) -> None:
        with self._lock:
            sinks = list(self._sinks)
            self.emitted += 1
        for sink in sinks:
            sink.emit(event)


# -- human-readable rendering -------------------------------------------------


def _describe(event: TraceEvent) -> str:
    """One-line summary of an event's payload (envelope fields dropped)."""
    payload = event.to_dict()
    for envelope_key in ("kind", "span_id", "parent_id", "ts", "dur"):
        payload.pop(envelope_key, None)
    parts = [f"{key}={value}" for key, value in payload.items() if value not in (None, "")]
    text = event.kind
    if parts:
        text += " " + " ".join(parts)
    if event.dur is not None:
        text += f"  [{event.dur * 1e3:.2f}ms]"
    return text


def render_tree(events: Sequence[TraceEvent]) -> str:
    """Render events as an indented forest using their parent links."""
    by_id: Dict[int, TraceEvent] = {event.span_id: event for event in events}
    children: Dict[Optional[int], List[TraceEvent]] = {}
    for event in events:
        parent: Optional[int] = event.parent_id
        if parent is not None and parent not in by_id:
            parent = None  # orphan (parent not captured): promote to root
        children.setdefault(parent, []).append(event)
    for siblings in children.values():
        siblings.sort(key=lambda e: (e.ts, e.span_id))

    lines: List[str] = []

    def walk(event: TraceEvent, depth: int) -> None:
        lines.append("  " * depth + _describe(event))
        for child in children.get(event.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
