"""Fixed-log-bucket latency histograms: mergeable, order-independent.

:class:`HistogramStat` is the distribution counterpart of
:class:`~repro.obs.registry.TimerStat`.  Where a timer keeps the moments
a mean needs (total, count, min, max), a histogram additionally counts
observations into a **fixed geometric bucket grid** — powers of two from
1µs up to ~33s — so p50/p90/p99 summaries survive aggregation across
worker processes.

The grid being *fixed* (the same bounds in every process, every version)
is what makes merging exact: folding two histograms adds bucket counts
elementwise and combines min/max/total/count, so

    merge(a, merge(b, c)) == merge(merge(a, b), c)

bucket-for-bucket — ``TelemetryRegistry.merge_snapshot`` can fold worker
snapshots in *any* order and every quantile summary comes out identical
(``tests/obs/test_histogram.py`` asserts this associativity, including
through a real process pool).  Quantiles are estimated at a bucket's
upper bound, clamped into the observed ``[min, max]`` — a deterministic
function of the merged counts alone, never of merge order.

The bounds double per bucket, so any quantile estimate is within 2x of
the true value — the right resolution for "where does prover time go"
questions (the paper's §6 cost discussion), and 27 machine words per
metric is cheap enough to keep on every hot path.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional

__all__ = ["BUCKET_BOUNDS_S", "HistogramStat", "bucket_index"]

#: Upper bounds (seconds) of the finite buckets: 1µs · 2^i.  Observations
#: beyond the last bound land in one overflow bucket.  Changing this grid
#: is a telemetry-schema change: bump ``SCHEME`` alongside it so foreign
#: snapshots are never merged bucket-for-bucket against a different grid.
BUCKET_BOUNDS_S = tuple(1e-6 * (2.0 ** i) for i in range(26))

#: Identifies the bucket grid inside snapshots (merge sanity check).
SCHEME = "log2-1us-26"

_OVERFLOW = len(BUCKET_BOUNDS_S)


def bucket_index(seconds: float) -> int:
    """The bucket an observation falls into (``_OVERFLOW`` past the grid)."""
    return bisect_left(BUCKET_BOUNDS_S, seconds)


class HistogramStat:
    """Latency distribution for one named operation."""

    __slots__ = ("count", "total_s", "min_s", "max_s", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self._buckets: List[int] = [0] * (_OVERFLOW + 1)

    # -- recording -----------------------------------------------------------

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds
        self._buckets[bisect_left(BUCKET_BOUNDS_S, seconds)] += 1

    # -- reading -------------------------------------------------------------

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 < q <= 1``) from the bucket counts.

        The estimate is the upper bound of the bucket holding the target
        rank, clamped into the observed ``[min_s, max_s]`` — exact to
        within one bucket width (2x), and dependent only on the merged
        counts, so it is stable under any merge order.
        """
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self._buckets):
            seen += bucket_count
            if seen >= target and bucket_count:
                upper = (
                    BUCKET_BOUNDS_S[index] if index < _OVERFLOW else self.max_s
                )
                return min(max(upper, self.min_s), self.max_s)
        return self.max_s  # pragma: no cover - unreachable (seen == count)

    def bucket_counts(self) -> List[int]:
        """A copy of the raw per-bucket counts (overflow bucket last)."""
        return list(self._buckets)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary + sparse raw buckets (what merging needs)."""
        return {
            "scheme": SCHEME,
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "mean_s": self.mean_s,
            "p50_s": self.quantile(0.50),
            "p90_s": self.quantile(0.90),
            "p99_s": self.quantile(0.99),
            # Sparse, string-keyed (survives a JSON round trip unchanged).
            "buckets": {
                str(index): count
                for index, count in enumerate(self._buckets)
                if count
            },
        }

    # -- merging -------------------------------------------------------------

    def merge(self, other: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Exact and associative: bucket counts add, extrema combine.  A
        snapshot from a different bucket grid (foreign ``scheme``) folds
        its moments (count/total/min/max) but not its buckets — quantiles
        then degrade gracefully instead of silently lying.
        """
        other_count = int(other.get("count", 0))
        if not other_count:
            return
        self.count += other_count
        self.total_s += float(other.get("total_s", 0.0))
        other_min = float(other.get("min_s", float("inf")))
        if other_min < self.min_s:
            self.min_s = other_min
        other_max = float(other.get("max_s", 0.0))
        if other_max > self.max_s:
            self.max_s = other_max
        if other.get("scheme", SCHEME) != SCHEME:
            return
        buckets = other.get("buckets")
        if isinstance(buckets, dict):
            for key, value in buckets.items():
                index = int(key)
                if 0 <= index <= _OVERFLOW:
                    self._buckets[index] += int(value)

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "HistogramStat":
        stat = cls()
        stat.merge(snapshot)
        return stat


def summarise(snapshot: Dict[str, object]) -> Dict[str, float]:
    """The summary-only view of a histogram snapshot (no raw buckets).

    What run reports and the ``stats`` daemon op embed: enough to read
    the distribution, too small to bloat a JSON report.
    """
    return {
        "count": int(snapshot.get("count", 0)),
        "total_s": float(snapshot.get("total_s", 0.0)),
        "min_s": float(snapshot.get("min_s", 0.0)),
        "max_s": float(snapshot.get("max_s", 0.0)),
        "mean_s": float(snapshot.get("mean_s", 0.0)),
        "p50_s": float(snapshot.get("p50_s", 0.0)),
        "p90_s": float(snapshot.get("p90_s", 0.0)),
        "p99_s": float(snapshot.get("p99_s", 0.0)),
    }
