"""Process-wide telemetry registry: named counters, gauges, and timers.

The registry is the metrics half of ``repro.obs`` (the trace-event half
lives in :mod:`repro.obs.trace`).  It is designed around one invariant:
**when disabled it costs ~nothing**.  Instrumented hot paths guard every
recording call with a single attribute check (``if METRICS.enabled:``),
and the registry's own entry points return immediately — allocating
nothing — when the flag is down.  Enabling flips one boolean; there is no
re-import or monkey-patching involved.

All mutation happens under one lock, so concurrent engines (the future
sharded/batched deployments the ROADMAP describes) can share the
process-wide instance safely.  Counter/gauge/timer reads take the same
lock and return plain snapshots, never live references.

Naming convention: dotted lowercase paths, subsystem first —
``subtype.goals``, ``match.calls``, ``sld.steps``, ``checker.clause_check``.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, Dict, Optional, TypeVar

from .histogram import HistogramStat

__all__ = ["TimerStat", "HistogramStat", "TelemetryRegistry", "NULL_TIMER"]

_F = TypeVar("_F", bound=Callable[..., Any])


class TimerStat:
    """Accumulated timings for one named span: total, count, min, max."""

    __slots__ = ("total_s", "count", "min_s", "max_s")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.count = 0
        self.min_s = float("inf")
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        self.total_s += seconds
        self.count += 1
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def snapshot(self) -> Dict[str, float]:
        return {
            "total_s": self.total_s,
            "count": self.count,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "mean_s": self.total_s / self.count if self.count else 0.0,
        }

    def merge(self, other: Dict[str, float]) -> None:
        """Fold another timer's snapshot into this one (cross-registry).

        Lossless for every field: counts and totals add, extrema combine.
        A pre-min snapshot (no ``min_s`` key) merges its other fields and
        leaves this side's minimum untouched.
        """
        self.total_s += other.get("total_s", 0.0)
        other_count = int(other.get("count", 0))
        self.count += other_count
        other_min = other.get("min_s")
        # An empty snapshot reports min_s == 0.0 as a placeholder; only a
        # snapshot with samples may lower the minimum.
        if other_count and other_min is not None and other_min < self.min_s:
            self.min_s = other_min
        other_max = other.get("max_s", 0.0)
        if other_max > self.max_s:
            self.max_s = other_max


class _NullTimer:
    """Reusable no-op context manager handed out while disabled.

    A single module-level instance means ``registry.time(...)`` in a
    disabled process performs no allocation at all.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_TIMER = _NullTimer()


class _ActiveTimer:
    """Context manager that records one monotonic-clock span."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "TelemetryRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_ActiveTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._registry.observe(self._name, time.perf_counter() - self._start)
        return False


class TelemetryRegistry:
    """Thread-safe named counters, gauges, and timing spans."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, TimerStat] = {}
        self._histograms: Dict[str, HistogramStat] = {}

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric (the enabled flag is left as-is)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._histograms.clear()

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (no-op while disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if larger (no-op disabled)."""
        if not self.enabled:
            return
        with self._lock:
            if value > self._gauges.get(name, float("-inf")):
                self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one timing observation (no-op while disabled).

        Each observation feeds both views of the same sample under one
        lock acquisition: the timer (total/count/min/max — what the mean
        needs) and the fixed-log-bucket histogram (what p50/p90/p99
        need).  Disabled, this returns before touching either.
        """
        if not self.enabled:
            return
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.record(seconds)
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = HistogramStat()
            histogram.record(seconds)

    def time(self, name: str):
        """Context manager timing a block into timer ``name``.

        Returns the shared null manager while disabled, so the call is
        allocation-free on the fast path.
        """
        if not self.enabled:
            return NULL_TIMER
        return _ActiveTimer(self, name)

    def timed(self, name: str) -> Callable[[_F], _F]:
        """Decorator form of :meth:`time`."""

        def decorate(function: _F) -> _F:
            @functools.wraps(function)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self.enabled:
                    return function(*args, **kwargs)
                start = time.perf_counter()
                try:
                    return function(*args, **kwargs)
                finally:
                    self.observe(name, time.perf_counter() - start)

            return wrapper  # type: ignore[return-value]

        return decorate

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Worker processes of the batch service record into their own
        process-local registry and ship ``snapshot()`` dicts back to the
        coordinator, which merges them here: counters add, gauges keep the
        maximum (the useful aggregate for utilisation/high-water gauges),
        and timers fold sample counts/totals/maxima together.  Merging the
        same snapshot twice would double-count — callers merge each worker
        snapshot exactly once.  No-op while disabled, like all recording.
        """
        if not self.enabled:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                if value > self._gauges.get(name, float("-inf")):
                    self._gauges[name] = value
            for name, sample in snapshot.get("timers", {}).items():
                stat = self._timers.get(name)
                if stat is None:
                    stat = self._timers[name] = TimerStat()
                stat.merge(sample)
            for name, sample in snapshot.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = HistogramStat()
                histogram.merge(sample)

    # -- reading -------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def timer(self, name: str) -> Optional[Dict[str, float]]:
        with self._lock:
            stat = self._timers.get(name)
            return stat.snapshot() if stat else None

    def histogram(self, name: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            stat = self._histograms.get(name)
            return stat.snapshot() if stat else None

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy of everything recorded so far."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "timers": {
                    name: stat.snapshot()
                    for name, stat in sorted(self._timers.items())
                },
                "histograms": {
                    name: stat.snapshot()
                    for name, stat in sorted(self._histograms.items())
                },
            }

    def render(self) -> str:
        """A human-readable metrics table (the ``--stats`` output)."""
        snap = self.snapshot()
        lines = []
        if snap["counters"]:
            lines.append("counters")
            width = max(len(n) for n in snap["counters"]) + 2
            for name, value in snap["counters"].items():
                lines.append(f"  {name.ljust(width)}{value:>12,}")
        if snap["gauges"]:
            lines.append("gauges")
            width = max(len(n) for n in snap["gauges"]) + 2
            for name, value in snap["gauges"].items():
                lines.append(f"  {name.ljust(width)}{value:>12g}")
        if snap["timers"]:
            lines.append("timers")
            width = max(len(n) for n in snap["timers"]) + 2
            for name, stat in snap["timers"].items():
                lines.append(
                    f"  {name.ljust(width)}"
                    f"{stat['count']:>8,} calls"
                    f"{stat['total_s'] * 1e3:>12.2f}ms total"
                    f"{stat['mean_s'] * 1e6:>12.1f}µs mean"
                    f"{stat['min_s'] * 1e6:>12.1f}µs min"
                    f"{stat['max_s'] * 1e6:>12.1f}µs max"
                )
        if snap["histograms"]:
            lines.append("latency histograms")
            width = max(len(n) for n in snap["histograms"]) + 2
            for name, stat in snap["histograms"].items():
                lines.append(
                    f"  {name.ljust(width)}"
                    f"{stat['p50_s'] * 1e6:>12.1f}µs p50"
                    f"{stat['p90_s'] * 1e6:>12.1f}µs p90"
                    f"{stat['p99_s'] * 1e6:>12.1f}µs p99"
                    f"{stat['max_s'] * 1e6:>12.1f}µs max"
                )
        if not lines:
            return "(no telemetry recorded)"
        return "\n".join(lines)
