"""repro.obs — observability for the subtype/match/resolution pipeline.

The paper's central claim is *dynamic*: subtyping **is** SLD-resolution
over ``H_C`` (Definition 3), ``match`` walks the same constraint space
(Definition 13), and Theorem 6 is a statement about every resolvent of a
well-typed execution.  This package makes those dynamics visible without
changing them:

* a process-wide :class:`~repro.obs.registry.TelemetryRegistry`
  (``obs.METRICS``) with named counters, gauges, and monotonic timers —
  disabled by default, ~free when off;
* a structured trace-event stream (``obs.TRACER``) of typed events
  (``subtype_goal``, ``sld_step``, ``match_call``, ``resolvent_check``,
  ``cache_probe``) whose parent-span ids nest derivations, with
  in-memory, JSON-lines, and tree-rendering sinks.

Quick use::

    from repro import obs

    obs.enable()                      # metrics on
    sink = obs.trace_to_memory()      # tracing on, events collected
    ... run checks / queries ...
    print(obs.render_summary())       # counter/timer table
    print(obs.render_tree(sink.events))
    data = obs.summary()              # plain dict, JSON-ready
    obs.disable()

Every instrumented hot path guards with ``if METRICS.enabled`` /
``if TRACER.enabled``; with both off the pipeline runs the exact seed
code paths (the overhead guard in ``tests/obs`` asserts < 5% on the
subtype hot loop, and a differential test asserts bit-identical
behaviour).
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, IO, Iterator, Optional, Tuple

from .events import (
    CacheProbeEvent,
    MatchCallEvent,
    PhaseEvent,
    ResolventCheckEvent,
    SldStepEvent,
    SubtypeGoalEvent,
    TraceEvent,
)
from .registry import TelemetryRegistry, TimerStat
from .trace import (
    JsonlSink,
    MemorySink,
    SpanHandle,
    Tracer,
    TraceSink,
    TreeSink,
    render_tree,
)

__all__ = [
    "METRICS",
    "TRACER",
    "enable",
    "disable",
    "enabled",
    "reset",
    "summary",
    "render_summary",
    "collect",
    "trace_to_memory",
    "trace_to_stream",
    "TelemetryRegistry",
    "TimerStat",
    "Tracer",
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "TreeSink",
    "SpanHandle",
    "render_tree",
    "TraceEvent",
    "SubtypeGoalEvent",
    "SldStepEvent",
    "MatchCallEvent",
    "ResolventCheckEvent",
    "CacheProbeEvent",
    "PhaseEvent",
]

#: The process-wide metrics registry every instrumented module records to.
METRICS = TelemetryRegistry()

#: The process-wide tracer every instrumented module emits events through.
TRACER = Tracer()


def enable() -> None:
    """Turn metrics collection on (tracing needs a sink — see trace_to_*)."""
    METRICS.enable()


def disable() -> None:
    """Turn metrics collection off and detach every trace sink."""
    METRICS.disable()
    TRACER.clear_sinks()


def enabled() -> bool:
    """True iff metrics or tracing is currently active."""
    return METRICS.enabled or TRACER.enabled


def reset() -> None:
    """Zero all metrics and restart trace ids/clock."""
    METRICS.reset()
    TRACER.reset()


def summary() -> Dict[str, Any]:
    """A JSON-ready snapshot of everything recorded so far."""
    snapshot = METRICS.snapshot()
    snapshot["trace_events_emitted"] = TRACER.emitted
    return snapshot


def render_summary() -> str:
    """The human-readable metrics table (what ``tlp-check --stats`` prints)."""
    return METRICS.render()


def trace_to_memory() -> MemorySink:
    """Attach (and return) an in-memory sink; tracing turns on."""
    sink = MemorySink()
    TRACER.add_sink(sink)
    return sink


def trace_to_stream(stream: IO[str]) -> JsonlSink:
    """Attach (and return) a JSONL sink on ``stream``; tracing turns on."""
    sink = JsonlSink(stream)
    TRACER.add_sink(sink)
    return sink


@contextlib.contextmanager
def collect() -> Iterator[Tuple[TelemetryRegistry, MemorySink]]:
    """Enable metrics + in-memory tracing for a block, then restore.

    Yields ``(METRICS, sink)``; on exit the sink is detached and the
    previous enabled/disabled state of the registry is restored.  Metrics
    recorded during the block are kept (call :func:`reset` to drop them).
    """
    was_enabled = METRICS.enabled
    METRICS.enable()
    sink = trace_to_memory()
    try:
        yield METRICS, sink
    finally:
        TRACER.remove_sink(sink)
        METRICS.enabled = was_enabled
