"""repro.obs — observability for the subtype/match/resolution pipeline.

The paper's central claim is *dynamic*: subtyping **is** SLD-resolution
over ``H_C`` (Definition 3), ``match`` walks the same constraint space
(Definition 13), and Theorem 6 is a statement about every resolvent of a
well-typed execution.  This package makes those dynamics visible without
changing them:

* a process-wide :class:`~repro.obs.registry.TelemetryRegistry`
  (``obs.METRICS``) with named counters, gauges, and monotonic timers —
  disabled by default, ~free when off;
* a structured trace-event stream (``obs.TRACER``) of typed events
  (``subtype_goal``, ``sld_step``, ``match_call``, ``resolvent_check``,
  ``cache_probe``) whose parent-span ids nest derivations, with
  in-memory, JSON-lines, and tree-rendering sinks.

Quick use::

    from repro import obs

    obs.enable()                      # metrics on
    sink = obs.trace_to_memory()      # tracing on, events collected
    ... run checks / queries ...
    print(obs.render_summary())       # counter/timer table
    print(obs.render_tree(sink.events))
    data = obs.summary()              # plain dict, JSON-ready
    obs.disable()

Every instrumented hot path guards with ``if METRICS.enabled`` /
``if TRACER.enabled``; with both off the pipeline runs the exact seed
code paths (the overhead guard in ``tests/obs`` asserts < 5% on the
subtype hot loop, and a differential test asserts bit-identical
behaviour).
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, IO, Iterator, Optional, Tuple

from .events import (
    CacheProbeEvent,
    MatchCallEvent,
    PhaseEvent,
    ResolventCheckEvent,
    SubjectReductionEvent,
    SldStepEvent,
    SubtypeGoalEvent,
    TraceEvent,
)
from .export import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from .export import parse_exposition, render_prometheus
from .histogram import HistogramStat
from .profile import ProfileReport, SpanProfiler
from .registry import TelemetryRegistry, TimerStat
from .trace import (
    JsonlSink,
    MemorySink,
    SpanHandle,
    Tracer,
    TraceSink,
    TreeSink,
    render_tree,
)

__all__ = [
    "METRICS",
    "TRACER",
    "enable",
    "disable",
    "enabled",
    "reset",
    "summary",
    "render_summary",
    "prometheus_text",
    "publish_runtime_gauges",
    "runtime_stats_lines",
    "collect",
    "trace_to_memory",
    "trace_to_stream",
    "trace_to_path",
    "profile_spans",
    "TelemetryRegistry",
    "TimerStat",
    "HistogramStat",
    "SpanProfiler",
    "ProfileReport",
    "PROMETHEUS_CONTENT_TYPE",
    "parse_exposition",
    "render_prometheus",
    "Tracer",
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "TreeSink",
    "SpanHandle",
    "render_tree",
    "TraceEvent",
    "SubtypeGoalEvent",
    "SldStepEvent",
    "MatchCallEvent",
    "ResolventCheckEvent",
    "SubjectReductionEvent",
    "CacheProbeEvent",
    "PhaseEvent",
]

#: The process-wide metrics registry every instrumented module records to.
METRICS = TelemetryRegistry()

#: The process-wide tracer every instrumented module emits events through.
TRACER = Tracer()


def enable() -> None:
    """Turn metrics collection on (tracing needs a sink — see trace_to_*)."""
    METRICS.enable()


def disable() -> None:
    """Turn metrics collection off and detach every trace sink."""
    METRICS.disable()
    TRACER.clear_sinks()


def enabled() -> bool:
    """True iff metrics or tracing is currently active."""
    return METRICS.enabled or TRACER.enabled


def reset() -> None:
    """Zero all metrics and restart trace ids/clock."""
    METRICS.reset()
    TRACER.reset()


def summary() -> Dict[str, Any]:
    """A JSON-ready snapshot of everything recorded so far."""
    snapshot = METRICS.snapshot()
    snapshot["trace_events_emitted"] = TRACER.emitted
    return snapshot


def render_summary() -> str:
    """The human-readable metrics table (what ``tlp-check --stats`` prints)."""
    return METRICS.render()


def publish_runtime_gauges() -> None:
    """Record the term-kernel runtime state as gauges (no-op when off).

    Covers the intern table (``intern.size``/``intern.hit_rate``) and the
    process-wide shared subtype memo (``subtype.shared_memo.size`` and
    friends) — point-in-time sizes, complementing the per-goal
    ``subtype.shared_memo.hits``/``.entries`` counters the engine itself
    increments.  Imports lazily: ``repro.obs`` must stay importable
    before ``repro.terms``/``repro.core`` (they import it for METRICS).
    """
    if not METRICS.enabled:
        return
    from ..core.shared_memo import SHARED_MEMO
    from ..terms.term import intern_stats

    interned = intern_stats()
    METRICS.gauge("intern.enabled", int(interned.enabled))
    METRICS.gauge("intern.size", interned.size)
    METRICS.gauge("intern.hits", interned.hits)
    METRICS.gauge("intern.misses", interned.misses)
    METRICS.gauge("intern.hit_rate", round(interned.hit_rate, 4))
    memo = SHARED_MEMO.stats()
    METRICS.gauge("subtype.shared_memo.enabled", memo["enabled"])
    METRICS.gauge("subtype.shared_memo.scopes", memo["scopes"])
    METRICS.gauge("subtype.shared_memo.size", memo["entries"])
    METRICS.gauge("subtype.shared_memo.attachments", memo["attachments"])
    METRICS.gauge("subtype.shared_memo.evictions", memo["evictions"])
    from ..core.automata import AUTOMATA

    automata = AUTOMATA.stats()
    METRICS.gauge("subtype.automaton.enabled", automata["enabled"])
    METRICS.gauge("subtype.automaton.scopes", automata["scopes"])
    METRICS.gauge("subtype.automaton.states", automata["states"])
    METRICS.gauge("subtype.automaton.transitions", automata["transitions"])
    METRICS.gauge("subtype.automaton.cache_entries", automata["cache_entries"])
    METRICS.gauge("subtype.automaton.compiled", automata["compiles"])
    METRICS.gauge("subtype.automaton.attachments", automata["attachments"])
    METRICS.gauge("subtype.automaton.refusals", automata["refusals"])


def runtime_stats_lines() -> "list[str]":
    """Human-readable intern-table / shared-memo state for ``:stats`` & co.

    The shared-memo hit rate is derived from the engine-side counters
    (``subtype.shared_memo.hits`` vs ``.entries`` — every miss that
    completes a derivation writes one entry), so it reflects goals posed
    while telemetry was on.
    """
    from ..core.shared_memo import SHARED_MEMO
    from ..terms.term import intern_stats

    interned = intern_stats()
    if interned.enabled:
        intern_line = (
            f"intern table: {interned.size} nodes "
            f"({interned.structs} structs, {interned.vars} vars), "
            f"hit rate {interned.hit_rate:.1%}"
        )
    else:
        intern_line = "intern table: disabled (--no-intern)"
    memo = SHARED_MEMO.stats()
    if memo["enabled"]:
        hits = METRICS.counter("subtype.shared_memo.hits")
        entries = METRICS.counter("subtype.shared_memo.entries")
        probes = hits + entries
        rate = f", hit rate {hits / probes:.1%}" if probes else ""
        memo_line = (
            f"shared subtype memo: {memo['entries']} entries across "
            f"{memo['scopes']} scope(s), {memo['attachments']} engine "
            f"attachment(s){rate}"
        )
    else:
        memo_line = "shared subtype memo: disabled (--no-shared-memo)"
    from ..core.automata import AUTOMATA

    automata = AUTOMATA.stats()
    if automata["enabled"]:
        hits = METRICS.counter("subtype.automaton.hits")
        fallbacks = METRICS.counter("subtype.automaton.fallbacks")
        queries = hits + fallbacks
        rate = f", hit rate {hits / queries:.1%}" if queries else ""
        automata_line = (
            f"tree automata: {automata['scopes']} compiled scope(s), "
            f"{automata['states']} state(s), {automata['transitions']} "
            f"transition(s), {automata['attachments']} attachment(s){rate}"
        )
    else:
        automata_line = "tree automata: disabled (--no-automata)"
    return [intern_line, memo_line, automata_line]


def trace_to_memory() -> MemorySink:
    """Attach (and return) an in-memory sink; tracing turns on."""
    sink = MemorySink()
    TRACER.add_sink(sink)
    return sink


def trace_to_stream(stream: IO[str]) -> JsonlSink:
    """Attach (and return) a JSONL sink on ``stream``; tracing turns on."""
    sink = JsonlSink(stream)
    TRACER.add_sink(sink)
    return sink


def trace_to_path(path: str) -> JsonlSink:
    """Attach a JSONL sink that owns a freshly opened trace file.

    The returned sink flushes every line and closes its file from
    ``close()`` — call ``TRACER.close_sinks()`` (or ``sink.close()``) in
    a ``finally`` so the trace survives an exception mid-operation.
    """
    sink = JsonlSink(open(path, "w", encoding="utf-8"), owns_stream=True)
    TRACER.add_sink(sink)
    return sink


def profile_spans() -> SpanProfiler:
    """Attach (and return) a span profiler; tracing turns on.

    Detach with ``TRACER.remove_sink(profiler)`` and read
    ``profiler.report()`` — see :mod:`repro.obs.profile`.
    """
    profiler = SpanProfiler()
    TRACER.add_sink(profiler)
    return profiler


def prometheus_text(
    labels: "Optional[Dict[str, str]]" = None,
    extra_gauges: "Optional[Dict[str, float]]" = None,
) -> str:
    """The current registry state as Prometheus text exposition."""
    return render_prometheus(
        METRICS.snapshot(), labels=labels, extra_gauges=extra_gauges
    )


@contextlib.contextmanager
def collect() -> Iterator[Tuple[TelemetryRegistry, MemorySink]]:
    """Enable metrics + in-memory tracing for a block, then restore.

    Yields ``(METRICS, sink)``; on exit the sink is detached and the
    previous enabled/disabled state of the registry is restored.  Metrics
    recorded during the block are kept (call :func:`reset` to drop them).
    """
    was_enabled = METRICS.enabled
    METRICS.enable()
    sink = trace_to_memory()
    try:
        yield METRICS, sink
    finally:
        TRACER.remove_sink(sink)
        METRICS.enabled = was_enabled
