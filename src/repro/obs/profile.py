"""Span-stack profiler riding the trace-event stream.

:class:`SpanProfiler` is a :class:`~repro.obs.trace.TraceSink`: attach
it to ``obs.TRACER`` and every closed span (any event carrying a ``dur``)
is folded into a compact record.  Because the tracer already threads
``parent_id`` through per-thread span stacks, the profiler reconstructs
the full call tree after the fact and attributes time two ways:

* **cumulative** — a span's own wall-clock length (parents include
  their children, so recursive/overlapping names over-count, as in any
  cumulative profile);
* **self** — a span's length minus its *captured* direct children: the
  time genuinely spent at that span's level.  Self times partition each
  root span exactly, so they sum to the profiled wall time — the
  property the ``tlp-check --profile`` acceptance gate checks.

Two outputs:

* :meth:`ProfileReport.render_table` — per-name calls/self/cumulative
  table, hottest self-time first (what ``--profile`` and the REPL's
  ``:profile`` print);
* :meth:`ProfileReport.collapsed_lines` — Brendan Gregg collapsed-stack
  format (``root;child;leaf <self-µs>`` per line), ready for
  ``flamegraph.pl`` or speedscope.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import TraceEvent
from .trace import TraceSink

__all__ = ["SpanProfiler", "ProfileReport"]

#: One closed span: (span_id, parent_id, name, duration).
_Record = Tuple[int, Optional[int], str, float]


class SpanProfiler(TraceSink):
    """Collects closed spans; ``report()`` aggregates them."""

    def __init__(self) -> None:
        self.records: List[_Record] = []

    def emit(self, event: TraceEvent) -> None:
        duration = event.dur
        if duration is None:  # instantaneous events carry no time
            return
        name = getattr(event, "name", "") or event.kind
        self.records.append(
            (event.span_id, event.parent_id, name, duration)
        )

    def clear(self) -> None:
        self.records.clear()

    def report(self) -> "ProfileReport":
        return ProfileReport(self.records)


class ProfileReport:
    """Aggregated self/cumulative time per span name + collapsed stacks."""

    def __init__(self, records: List[_Record]) -> None:
        self.span_count = len(records)
        parent_of: Dict[int, Optional[int]] = {}
        name_of: Dict[int, str] = {}
        child_time: Dict[int, float] = {}
        for span_id, parent_id, name, duration in records:
            parent_of[span_id] = parent_id
            name_of[span_id] = name
            if parent_id is not None:
                child_time[parent_id] = child_time.get(parent_id, 0.0) + duration

        self.calls: Dict[str, int] = {}
        self.cumulative_s: Dict[str, float] = {}
        self.self_s: Dict[str, float] = {}
        #: ``"root;child;leaf" -> self seconds`` (the flamegraph input).
        self.collapsed: Dict[str, float] = {}
        #: Wall time actually profiled: the summed length of root spans
        #: (spans whose parent was not captured).
        self.wall_s = 0.0

        stack_cache: Dict[int, str] = {}

        def stack_of(span_id: int) -> str:
            cached = stack_cache.get(span_id)
            if cached is not None:
                return cached
            parent = parent_of.get(span_id)
            if parent is None or parent not in name_of:
                path = name_of[span_id]
            else:
                path = stack_of(parent) + ";" + name_of[span_id]
            stack_cache[span_id] = path
            return path

        for span_id, parent_id, name, duration in records:
            self.calls[name] = self.calls.get(name, 0) + 1
            self.cumulative_s[name] = self.cumulative_s.get(name, 0.0) + duration
            own = max(0.0, duration - child_time.get(span_id, 0.0))
            self.self_s[name] = self.self_s.get(name, 0.0) + own
            if own > 0.0:
                path = stack_of(span_id)
                self.collapsed[path] = self.collapsed.get(path, 0.0) + own
            if parent_id is None or parent_id not in name_of:
                self.wall_s += duration

    @property
    def total_self_s(self) -> float:
        return sum(self.self_s.values())

    @property
    def coverage(self) -> float:
        """Fraction of profiled wall time attributed to some span name."""
        return self.total_self_s / self.wall_s if self.wall_s else 0.0

    def render_table(self, top: int = 25) -> str:
        """Per-name profile, hottest self-time first."""
        if not self.span_count:
            return "(no spans profiled)"
        names = sorted(self.self_s, key=self.self_s.get, reverse=True)[:top]
        width = max(len(name) for name in names) + 2
        lines = [
            f"span profile: {self.span_count} spans, "
            f"{self.total_self_s * 1e3:.2f}ms self over "
            f"{self.wall_s * 1e3:.2f}ms wall "
            f"({self.coverage:.0%} attributed)",
            f"  {'name'.ljust(width)}{'calls':>8}{'self':>12}"
            f"{'cumulative':>13}{'self%':>8}",
        ]
        for name in names:
            share = self.self_s[name] / self.wall_s if self.wall_s else 0.0
            lines.append(
                f"  {name.ljust(width)}"
                f"{self.calls[name]:>8,}"
                f"{self.self_s[name] * 1e3:>10.2f}ms"
                f"{self.cumulative_s[name] * 1e3:>11.2f}ms"
                f"{share:>8.1%}"
            )
        return "\n".join(lines)

    def collapsed_lines(self) -> List[str]:
        """Collapsed-stack lines (integer µs weights, zero-weight dropped)."""
        lines = []
        for path in sorted(self.collapsed):
            weight = int(round(self.collapsed[path] * 1e6))
            if weight > 0:
                lines.append(f"{path} {weight}")
        return lines

    def to_json(self) -> Dict[str, object]:
        return {
            "spans": self.span_count,
            "wall_s": self.wall_s,
            "self_total_s": self.total_self_s,
            "coverage": self.coverage,
            "by_name": {
                name: {
                    "calls": self.calls[name],
                    "self_s": self.self_s[name],
                    "cumulative_s": self.cumulative_s[name],
                }
                for name in sorted(self.self_s)
            },
        }
