"""A realistic typed program: the list library under the paper's types.

The kind of program the paper's introduction motivates — polymorphic
lists with naturals — written in the declaration language, checked by the
frontend, and exercised through the typed interpreter: append, reverse,
member, length, sum, with polymorphic instantiation happening per query
(the η commitments of Definition 16).

Run:  python examples/typed_list_library.py
"""

from repro import TypedInterpreter, pretty
from repro.lang import parse_query
from repro.lp import Query
from repro.workloads import load


QUERIES = [
    # append two nat lists
    ":- app(cons(0, cons(succ(0), nil)), cons(succ(succ(0)), nil), R).",
    # append backwards: enumerate splits of a list of lists
    ":- app(X, Y, cons(nil, cons(nil, nil))).",
    # reverse
    ":- reverse(cons(0, cons(succ(0), cons(succ(succ(0)), nil))), R).",
    # member enumerates elements
    ":- member(X, cons(0, cons(succ(0), nil))).",
    # length
    ":- len(cons(nil, cons(nil, nil)), N).",
    # sum of a list of naturals (uses plus/3 in the body)
    ":- sum(cons(succ(0), cons(succ(succ(0)), nil)), N).",
    # last element
    ":- last(cons(0, cons(succ(0), nil)), X).",
]


def main() -> None:
    module = load("list_library")
    print(f"list library: {len(module.program)} clauses, all well-typed")
    interpreter = TypedInterpreter(module.checker, module.program, check_program=False)

    total_resolvents = 0
    total_violations = 0
    for text in QUERIES:
        query = Query(parse_query(text).body)
        result = interpreter.run(query, max_answers=5)
        print(f"\n?- {', '.join(pretty(g) for g in query.goals)}.")
        if not result.answers:
            print("   no.")
        for answer in result.answers:
            if len(answer) == 0:
                print("   yes.")
            else:
                bindings = ", ".join(
                    f"{var} = {pretty(value)}"
                    for var, value in sorted(answer.items(), key=lambda p: p[0].name)
                )
                print(f"   {bindings}")
        total_resolvents += result.resolvents_checked
        total_violations += len(result.violations) + len(result.answer_violations)

    print(
        f"\nTheorem 6 scoreboard: {total_resolvents} resolvents re-checked, "
        f"{total_violations} violations (expected 0)"
    )


if __name__ == "__main__":
    main()
