"""A typed big-step interpreter, written in the paper's typed Prolog.

This is the kind of program a prescriptive type system earns its keep on:
the expression AST is carved out of the Herbrand universe by subtype
constraints —

    aexp >= lit(nat) + add(aexp, aexp) + mul(aexp, aexp) + if_e(bexp, aexp, aexp).
    bexp >= tt + ff + leq(aexp, aexp).

— and the evaluator's predicate types (``PRED aeval(aexp, nat)``)
guarantee statically that evaluation only ever relates well-formed
expressions to ``nat`` values.  Ill-formed programs (evaluating a boolean
as an arithmetic expression, returning an expression instead of a value)
are rejected by the checker, and execution re-checks every resolvent
(Theorem 6) along the way.

Run:  python examples/expression_interpreter.py
"""

from repro import TypedInterpreter, check_text, pretty
from repro.lang import parse_query
from repro.lp import Query
from repro.workloads import EXPRESSION_INTERPRETER


def lit(n: int) -> str:
    inner = "0"
    for _ in range(n):
        inner = f"succ({inner})"
    return f"lit({inner})"


QUERIES = [
    # (2 + 1) * 2
    f":- aeval(mul(add({lit(2)}, {lit(1)}), {lit(2)}), R).",
    # if 1 <= 2 then 1 + 1 else 0
    f":- aeval(if_e(leq({lit(1)}, {lit(2)}), add({lit(1)}, {lit(1)}), {lit(0)}), R).",
    # if 2 <= 1 then 5 else 3 * 1
    f":- aeval(if_e(leq({lit(2)}, {lit(1)}), {lit(5)}, mul({lit(3)}, {lit(1)})), R).",
    # boolean evaluation
    f":- beval(leq({lit(3)}, {lit(3)}), B).",
    # run the evaluator backwards: which literal expressions mean 2?
    ":- aeval(lit(N), succ(succ(0))).",
]

ILL_TYPED = [
    # A boolean where an arithmetic expression is expected.
    ":- aeval(tt, R).",
    # An expression where a value is expected.
    f":- aeval({lit(1)}, lit(0)).",
    # if over a nat condition.
    f":- aeval(if_e({lit(1)}, {lit(1)}, {lit(0)}), R).",
]


def peano_to_int(text: str) -> str:
    count = text.count("succ")
    return f"{text}  (= {count})" if "succ" in text or text == "0" else text


def main() -> None:
    module = check_text(EXPRESSION_INTERPRETER)
    assert module.ok, module.diagnostics.render()
    print(f"interpreter: {len(module.program)} clauses, all well-typed")
    interpreter = TypedInterpreter(module.checker, module.program, check_program=False)

    for text in QUERIES:
        query = Query(parse_query(text).body)
        result = interpreter.run(query, max_answers=4)
        print(f"\n?- {', '.join(pretty(g) for g in query.goals)}.")
        for answer in result.answers:
            bindings = ", ".join(
                f"{var} = {peano_to_int(pretty(value))}"
                for var, value in sorted(answer.items(), key=lambda p: p[0].name)
            )
            print(f"   {bindings or 'yes.'}")
        assert result.consistent

    print("\nill-typed evaluator queries (all rejected by the checker):")
    for text in ILL_TYPED:
        query = Query(parse_query(text).body)
        report = module.checker.check_query(query)
        assert not report.well_typed
        print(f"  {text}  ->  {report.reason}")


if __name__ == "__main__":
    main()
