"""Quickstart: declare types, type-check a program, run a query.

This is the paper's running example end to end: the polymorphic list
declarations of Section 1, the ``app`` predicate with its predicate type,
one query the type system *accepts* (and executes, with every resolvent
re-checked for well-typedness — Theorem 6 live), and one query it
*rejects* (``:- app(nil,0,0).``, the paper's own example of a successful
but ill-typed query).

Run:  python examples/quickstart.py
"""

from repro import TypedInterpreter, check_text, pretty

SOURCE = """
% --- the paper's Section 1 declarations -------------------------------
FUNC nil, cons.
TYPE elist, nelist, list.
elist >= nil.
nelist(A) >= cons(A,list(A)).
list(A) >= elist + nelist(A).

% --- the paper's append ------------------------------------------------
PRED app(list(A),list(A),list(A)).
app(nil,L,L).
app(cons(X,L),M,cons(X,N)) :- app(L,M,N).

% --- a well-typed query -------------------------------------------------
:- app(cons(nil,nil), cons(nil,nil), R).
"""

REJECTED_QUERY = """
FUNC nil, cons, 0, succ, pred.
TYPE elist, nelist, list, nat, unnat, int.
elist >= nil.
nelist(A) >= cons(A,list(A)).
list(A) >= elist + nelist(A).
nat >= 0 + succ(nat).
unnat >= 0 + pred(unnat).
int >= nat + unnat.
PRED app(list(A),list(A),list(A)).
app(nil,L,L).
app(cons(X,L),M,cons(X,N)) :- app(L,M,N).
:- app(nil,0,0).
"""


def main() -> None:
    print("== checking the paper's append program ==")
    module = check_text(SOURCE)
    assert module.ok, module.diagnostics.render()
    print(f"well-typed: {len(module.program)} clauses, {len(module.queries)} query")

    print("\n== running the query with per-resolvent consistency checks ==")
    interpreter = TypedInterpreter(module.checker, module.program, check_program=False)
    result = interpreter.run(module.queries[0])
    for answer in result.answers:
        for variable, value in sorted(answer.items(), key=lambda p: p[0].name):
            print(f"  {variable} = {pretty(value)}")
    print(f"  resolvents re-checked: {result.resolvents_checked}")
    print(f"  Theorem 6 violations:  {len(result.violations)} (expected 0)")

    print("\n== the paper's ill-typed query is rejected ==")
    rejected = check_text(REJECTED_QUERY)
    assert not rejected.ok
    for diagnostic in rejected.diagnostics:
        print(f"  {diagnostic}")


if __name__ == "__main__":
    main()
