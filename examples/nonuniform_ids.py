"""Non-uniform polymorphic types: the Section 1 ``id`` example.

The paper: "the declaration

    FUNC m, f.
    TYPE id.
    id(males) >= m(nat).
    id(females) >= f(nat).

introduces a non-uniform polymorphic type id. ... given the declaration
``person >= male + female.`` the type id(person) contains the elements of
id(males) and id(females).  This paper assigns meaning to all types,
however, for simplicity, our well-typedness conditions are defined only
for uniform polymorphic types."

This example shows both halves: the definitional semantics handles the
non-uniform set (enumeration + the naive SLD prover), while the
deterministic machinery correctly *refuses* it (Definition 6).

Run:  python examples/nonuniform_ids.py
"""

from repro.core import (
    GeneralTypeSemantics,
    NaiveSubtypeProver,
    RestrictionViolation,
    SubtypeEngine,
    non_uniform_constraints,
)
from repro.lang import parse_term
from repro.workloads import ids_nonuniform


def main() -> None:
    cset = ids_nonuniform()

    print("== declarations ==")
    for constraint in cset.constraints_for("id") + cset.constraints_for("person"):
        print(f"  {constraint}")

    print("\n== the set is not uniform polymorphic (Definition 6) ==")
    for constraint in non_uniform_constraints(cset):
        print(f"  non-uniform: {constraint}")
    try:
        SubtypeEngine(cset)
    except RestrictionViolation as error:
        print(f"  deterministic engine refuses: {error}")

    print("\n== but the semantics covers it (Definition 4) ==")
    semantics = GeneralTypeSemantics(cset)
    for text in ["id(males)", "id(females)", "id(person)", "id(nat)"]:
        inhabitants = sorted(semantics.inhabitants(parse_term(text), 3), key=repr)
        rendered = ", ".join(str(t) for t in inhabitants) or "(empty)"
        print(f"  M[{text}] up to depth 3 = {{{rendered}}}")

    males = semantics.inhabitants(parse_term("id(males)"), 3)
    females = semantics.inhabitants(parse_term("id(females)"), 3)
    person = semantics.inhabitants(parse_term("id(person)"), 3)
    print(f"\n  id(person) ⊇ id(males) ∪ id(females): {males | females <= person}")
    print(f"  id(person) = id(males) ∪ id(females): {males | females == person}")

    print("\n== spot check against the definitional SLD prover ==")
    prover = NaiveSubtypeProver(cset)
    for sup, sub in [("id(males)", "m(0)"), ("id(person)", "m(succ(0))")]:
        verdict = prover.holds(parse_term(sup), parse_term(sub))
        print(f"  {sup} >= {sub}: {verdict}")


if __name__ == "__main__":
    main()
