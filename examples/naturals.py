"""The subtype information-flow problem and filtering (Section 7).

Walks through the paper's concluding discussion with running code:

1. ``PRED p(nat)`` / ``PRED q(int)`` — the query ``:- p(X), q(X).`` is
   rejected even though sub→super flow would be fine, because the
   non-directional semantics also allows ``q`` to bind ``X`` to
   ``pred(0)``.
2. Modes (the [DH88] remedy): ``p(OUT nat), q(IN int)`` makes the flow
   direction explicit and the mode checker accepts it, while the reversed
   direction is flagged.
3. Conversion predicates: the paper's ``int2nat`` (generated mechanically
   as a *shallow filter*) is well-typed but only checks the outermost
   constructor; the exact *deep filter* really decides membership in
   ``M[nat]`` but its recursive clause is itself ill-typed — the open
   problem, executable.
4. Typed unification: the paper's third alternative — the literal query
   ``:- p(X), X:nat, q(X).`` — run through the constrained interpreter,
   whose runtime store admits exactly the nat flows.

Run:  python examples/naturals.py
"""

from repro import check_text, pretty
from repro.core import (
    IN,
    OUT,
    GeneralTypeSemantics,
    ModeChecker,
    ModeEnv,
    PredicateTypeEnv,
    WellTypedChecker,
    deep_filter,
    shallow_filter,
)
from repro.lang import parse_atom, parse_query, parse_term
from repro.lp import Database, Query, solve
from repro.terms import Var, struct
from repro.workloads import naturals


def section_1_rejection() -> None:
    print("== 1. the unmoded query is rejected ==")
    module = check_text(
        """
        FUNC 0, succ, pred.
        TYPE nat, unnat, int.
        nat >= 0 + succ(nat).
        unnat >= 0 + pred(unnat).
        int >= nat + unnat.
        PRED p(nat).
        PRED q(int).
        p(0).
        q(0).
        :- p(X), q(X).
        """
    )
    for diagnostic in module.diagnostics:
        print(f"  {diagnostic}")


def section_2_modes() -> None:
    print("\n== 2. modes make the direction explicit ==")
    cset = naturals()
    predicate_types = PredicateTypeEnv(cset)
    predicate_types.declare(parse_atom("p(nat)"))
    predicate_types.declare(parse_atom("q(int)"))

    safe = ModeEnv()
    safe.declare("p", [OUT])
    safe.declare("q", [IN])
    checker = ModeChecker(cset, predicate_types, safe)
    query = Query(parse_query(":- p(X), q(X).").body)
    report = checker.check_query(query)
    print(f"  p(OUT nat), q(IN int)  :- p(X), q(X).   ->  ok={report.ok}")

    unsafe = ModeEnv()
    unsafe.declare("p", [IN])
    unsafe.declare("q", [OUT])
    checker = ModeChecker(cset, predicate_types, unsafe)
    report = checker.check_query(Query(parse_query(":- q(X), p(X).").body))
    print(f"  p(IN nat),  q(OUT int) :- q(X), p(X).   ->  ok={report.ok}")
    for violation in report.violations:
        print(f"    {violation}")


def section_3_filters() -> None:
    print("\n== 3. conversion predicates: shallow (paper) vs deep (exact) ==")
    cset = naturals()

    shallow = shallow_filter(cset, "int2nat", parse_term("int"), parse_term("nat"))
    print("  generated int2nat (the paper's, verbatim):")
    for clause in shallow.program:
        print(f"    {clause}")
    predicate_types = PredicateTypeEnv(cset)
    for declared in shallow.predicate_types:
        predicate_types.declare(declared)
    checker = WellTypedChecker(cset, predicate_types)
    print(f"  well-typed: {checker.check_program(shallow.program).well_typed}")

    database = Database(shallow.program)
    for text in ["succ(0)", "pred(0)", "succ(pred(0))"]:
        result = solve(database, [struct("int2nat", parse_term(text), Var("R"))])
        verdict = "passes" if result.answers else "filtered out"
        print(f"    int2nat({text}, R) -> {verdict}")
    print("    note: succ(pred(0)) is NOT a nat — the shallow filter leaks.")

    deep = deep_filter(cset, "to_nat", parse_term("nat"))
    print("\n  deep filter clauses (semantically exact):")
    for clause in deep.program:
        print(f"    {clause}")
    deep_types = PredicateTypeEnv(cset)
    for declared in deep.predicate_types:
        deep_types.declare(declared)
    deep_checker = WellTypedChecker(cset, deep_types)
    report = deep_checker.check_program(deep.program)
    print(f"  well-typed: {report.well_typed}  (the paper's open problem)")
    for clause, clause_report in report.failures():
        print(f"    rejected: {clause} — {clause_report.reason}")

    database = Database(deep.program)
    semantics = GeneralTypeSemantics(cset)
    members = semantics.inhabitants(parse_term("nat"), 4)
    print("  deep filter agrees with M[nat] on every int of depth <= 4:")
    universe = sorted(semantics.inhabitants(parse_term("int"), 4), key=repr)
    agree = all(
        bool(solve(database, [struct("to_nat", term, Var("R"))]).answers)
        == (term in members)
        for term in universe
    )
    print(f"    {len(universe)} terms checked, agreement: {agree}")


def section_4_typed_unification() -> None:
    print("\n== 4. typed unification: :- p(X), X:nat, q(X). ==")
    from repro.checker import check_text
    from repro.lp import ConstrainedInterpreter
    from repro.core import SubtypeEngine

    module = check_text(
        """
        FUNC 0, succ, pred.
        TYPE nat, unnat, int.
        nat >= 0 + succ(nat).
        unnat >= 0 + pred(unnat).
        int >= nat + unnat.
        PRED p(int).
        p(0).  p(succ(0)).  p(pred(0)).
        PRED q(int).
        q(0).  q(succ(0)).  q(pred(0)).
        :- p(X), X : nat, q(X).
        """
    )
    assert module.ok, module.diagnostics.render()
    interpreter = ConstrainedInterpreter(
        Database(module.program), SubtypeEngine(module.constraints)
    )
    result = interpreter.run(module.queries[0].goals)
    print("  answers (the X : nat store keeps only the nats):")
    for answer in result.answers:
        for variable, value in sorted(answer.substitution.items(), key=lambda p: p[0].name):
            print(f"    {variable} = {pretty(value)}")
    print(f"  branches pruned by the store: {result.pruned_by_constraints}")


def main() -> None:
    section_1_rejection()
    section_2_modes()
    section_3_filters()
    section_4_typed_unification()


if __name__ == "__main__":
    main()
