"""Declared-mode benchmarks: mode checking cost and --typed-run overhead.

Section 7 adds ``MODE`` declarations and the Smaus–Fages–Deransart
directional well-modedness check; ``--typed-run`` then re-checks every
SLD resolvent against the module's checker to witness Theorem 6 subject
reduction dynamically.  Both must stay cheap enough to leave on:

* **M1 per-clause** — :class:`ModedWellTypedChecker.check_clause` over a
  synthetic moded module whose widening clauses all need the
  *directional* fallback (the expensive path: commitment solving runs on
  every shared-variable clause), reported per clause;
* **M2/M3 typed-run overhead** — the same ``app/3`` query solved by the
  plain SLD engine and by :class:`TypedRunner`, so the per-resolvent
  re-check cost is the difference between the two rows.

Run standalone::

    python benchmarks/bench_modes.py [--quick] [--json OUT]

or let ``benchmarks/summary.py`` pull the rows into the one-shot table
(ids ``modes.*`` land in ``BENCH_subtype.json`` for the CI regression
gate).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.checker import check_text
from repro.lp.database import Database
from repro.lp.resolution import SLDEngine
from repro.core.typed_run import TypedRunner
from repro.workloads import APPEND

Row = Tuple[str, str]


def fmt(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _timed(thunk):
    start = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - start


def moded_module(predicates: int) -> str:
    """``predicates`` widening predicates, every clause moded.

    Each ``w<i>(X, X)`` echoes a nat back at int, so the strict
    Definition 16 check fails and the checker must fall through to the
    directional pass — the worst case we want the per-clause number for.
    """
    lines = [
        "TYPE nat, int.",
        "FUNC 0, succ, pred.",
        "int >= nat.",
        "nat >= 0 + succ(nat).",
        "int >= pred(int).",
    ]
    for index in range(predicates):
        lines.append(f"PRED w{index}(nat, int).")
        lines.append(f"MODE w{index}(IN, OUT).")
        lines.append(f"w{index}(X, X).")
    return "\n".join(lines) + "\n"


def _nested_list(length: int) -> str:
    term = "nil"
    for _ in range(length):
        term = f"cons(nil,{term})"
    return term


def modes_measurements(
    quick: bool = False,
) -> Tuple[List[Row], List[Dict[str, object]]]:
    """Run the declared-mode benchmarks once.

    Returns human-readable ``(label, measured)`` rows and machine rows
    (``{"id", "label", "ns_per_op"}``) for ``BENCH_subtype.json``.
    """
    rows: List[Row] = []
    machine: List[Dict[str, object]] = []

    # -- M1: directional mode check, per clause ----------------------------
    clause_count = 32 if quick else 256
    module = check_text(moded_module(clause_count))
    assert module.ok and module.moded_checker is not None

    def run_clauses():
        verdicts = module.moded_checker.check_program(module.program)
        assert all(report.well_typed for _, report in verdicts)
        return len(verdicts)

    checked, dt = _timed(run_clauses)
    assert checked == clause_count
    rows.append((f"M1 directional mode check, {clause_count} clauses", fmt(dt)))
    machine.append(
        {
            "id": "modes.check.per_clause",
            "label": f"directional mode check per clause, {clause_count}-clause module",
            "ns_per_op": dt * 1e9 / clause_count,
        }
    )

    # -- M2/M3: --typed-run overhead over plain resolution -----------------
    lengths = (16,) if quick else (64, 256)
    for length in lengths:
        appended = check_text(
            APPEND + f":- app({_nested_list(length)}, nil, R).\n"
        )
        assert appended.ok and appended.checker is not None
        query = appended.queries[0]

        def run_plain():
            engine = SLDEngine(Database(appended.program))
            return list(engine.solve(query.goals))

        answers, plain_dt = _timed(run_plain)
        assert len(answers) == 1
        rows.append((f"M2 plain SLD, app of {length}-element list", fmt(plain_dt)))
        machine.append(
            {
                "id": f"modes.plain.append.{length}",
                "label": f"plain SLD app/3, {length}-element list",
                "ns_per_op": plain_dt * 1e9,
            }
        )

        def run_typed():
            runner = TypedRunner(appended.checker, appended.program)
            return runner.run(query)

        result, typed_dt = _timed(run_typed)
        assert result.ok and len(result.answers) == 1
        assert result.steps == length + 1  # one resolvent per cons + the base fact
        overhead = typed_dt / plain_dt if plain_dt else float("inf")
        rows.append(
            (
                f"M3 --typed-run, app of {length}-element list "
                f"({result.steps} resolvents re-checked)",
                f"{fmt(typed_dt)}  ({overhead:.1f}x plain)",
            )
        )
        machine.append(
            {
                "id": f"modes.typed_run.append.{length}",
                "label": f"typed-run app/3, {length}-element list",
                "ns_per_op": typed_dt * 1e9,
            }
        )

    return rows, machine


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-smoke sizes")
    parser.add_argument("--json", metavar="OUT", default=None)
    arguments = parser.parse_args(argv)
    rows, machine = modes_measurements(quick=arguments.quick)
    width = max(len(label) for label, _ in rows) + 2
    for label, value in rows:
        print(label.ljust(width) + value)
    if arguments.json:
        with open(arguments.json, "w") as handle:
            json.dump({"measurements": machine}, handle, indent=2)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
