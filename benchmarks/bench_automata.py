"""Tree-automata benchmarks: the table-walk contract for ground queries.

The compiled automaton's pitch is that deep-term membership and ground
match stop paying per-node SLD-style resolution: after one compilation
per constraint-set fingerprint (shared process-wide), a query is a
bottom-up walk over interned node ids with every state cached.  This
module measures the three legs — compilation, membership, match — in the
*fresh-object-per-query* shape ``summary.py`` times (every engine and
matcher attaches to the process-wide store, so only the first query per
scope pays the walk), and **asserts the automaton path is ≥3x faster
than the ``--no-automata`` template-expansion path** on both workloads.

Run standalone::

    python benchmarks/bench_automata.py [--quick] [--json OUT]

or let ``benchmarks/summary.py`` pull the rows into the one-shot table.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.automata import AUTOMATA, AutomataStore
from repro.core.match import Matcher
from repro.core.subtype import SubtypeEngine
from repro.lang import parse_term as T
from repro.workloads import deep_nat, nat_list, paper_universe

Row = Tuple[str, str]

#: Hard floor for the table-walk win (the PR's acceptance bar, enforced
#: here and in CI via check_regression.py --min-speedup).
REQUIRED_SPEEDUP = 3.0

ROUNDS = 5

NAT_DEPTH = 256
LIST_LENGTH = 64


def fmt(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _best_per_op(thunk: Callable[[], None], iterations: int) -> float:
    """Best-of-N mean seconds per op (N rounds shrug off scheduler noise)."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(iterations):
            thunk()
        best = min(best, time.perf_counter() - start)
    return best / iterations


def _member_per_op(iterations: int) -> float:
    """Fresh engine per query, ``succ^256(0) ∈ nat`` — summary.py's E1 shape."""
    cset = paper_universe()
    nat = T("nat")
    term = deep_nat(NAT_DEPTH)
    assert SubtypeEngine(cset).contains(nat, term) is True  # warm-up
    return _best_per_op(
        lambda: SubtypeEngine(cset).contains(nat, deep_nat(NAT_DEPTH)), iterations
    )


def _match_per_op(iterations: int) -> float:
    """Fresh matcher per query, ``match(list(nat), 64-element list)``."""
    cset = paper_universe()
    list_nat = T("list(nat)")
    Matcher(cset).match(list_nat, nat_list(LIST_LENGTH))  # warm-up
    return _best_per_op(
        lambda: Matcher(cset).match(list_nat, nat_list(LIST_LENGTH)), iterations
    )


def _compile_per_op(iterations: int) -> float:
    """One cold store compile of the paper universe (states + rules +
    nullary-root determinization seeds)."""
    cset = paper_universe()

    def compile_once() -> None:
        store = AutomataStore()
        assert store.automaton_for(cset) is not None

    return _best_per_op(compile_once, max(1, iterations))


def automata_measurements(
    quick: bool = False,
) -> Tuple[List[Row], List[Dict[str, object]]]:
    """Run the automata benchmarks once.

    Returns human-readable ``(label, measured)`` rows and machine rows
    (``{"id", "label", "ns_per_op"}``) for ``BENCH_subtype.json``.
    """
    fast_iterations = 50 if quick else 200
    slow_iterations = 2 if quick else 5
    compile_iterations = 5 if quick else 20

    compile_s = _compile_per_op(compile_iterations)

    enabled_member = _member_per_op(fast_iterations)
    enabled_match = _match_per_op(fast_iterations)

    previous = AUTOMATA.set_enabled(False)
    try:
        fallback_member = _member_per_op(slow_iterations)
        fallback_match = _match_per_op(slow_iterations)
    finally:
        AUTOMATA.set_enabled(previous)

    member_speedup = fallback_member / enabled_member if enabled_member else float("inf")
    match_speedup = fallback_match / enabled_match if enabled_match else float("inf")
    assert member_speedup >= REQUIRED_SPEEDUP, (
        f"automaton membership only {member_speedup:.2f}x faster than the "
        f"--no-automata template path (automaton {fmt(enabled_member)}, "
        f"template {fmt(fallback_member)}); the table-walk "
        f"≥{REQUIRED_SPEEDUP:.0f}x contract is broken"
    )
    assert match_speedup >= REQUIRED_SPEEDUP, (
        f"automaton match only {match_speedup:.2f}x faster than the "
        f"--no-automata template path (automaton {fmt(enabled_match)}, "
        f"template {fmt(fallback_match)}); the table-walk "
        f"≥{REQUIRED_SPEEDUP:.0f}x contract is broken"
    )

    rows: List[Row] = [
        (
            "TA1 compile paper universe -> tree automaton",
            fmt(compile_s),
        ),
        (
            f"TA2 automaton member: succ^{NAT_DEPTH}(0) ∈ nat, fresh engines",
            f"{fmt(enabled_member)} ({member_speedup:.0f}x over template path)",
        ),
        (
            f"TA2 template member: succ^{NAT_DEPTH}(0) ∈ nat, --no-automata",
            fmt(fallback_member),
        ),
        (
            f"TA3 automaton match(list(nat), {LIST_LENGTH}-element list)",
            f"{fmt(enabled_match)} ({match_speedup:.0f}x over template path)",
        ),
        (
            f"TA3 template match(list(nat), {LIST_LENGTH}-element list), --no-automata",
            fmt(fallback_match),
        ),
    ]
    measurements: List[Dict[str, object]] = [
        {
            "id": "automata.compile.paper_universe",
            "label": "compile the paper universe into a tree automaton",
            "ns_per_op": compile_s * 1e9,
        },
        {
            "id": f"automata.member.nat.{NAT_DEPTH}",
            "label": f"succ^{NAT_DEPTH}(0) ∈ nat via automaton, fresh engines",
            "ns_per_op": enabled_member * 1e9,
        },
        {
            "id": f"automata.member.nat.{NAT_DEPTH}.fallback",
            "label": f"succ^{NAT_DEPTH}(0) ∈ nat, --no-automata template path",
            "ns_per_op": fallback_member * 1e9,
        },
        {
            "id": f"automata.match.list.{LIST_LENGTH}",
            "label": f"match(list(nat), {LIST_LENGTH}-element list) via automaton",
            "ns_per_op": enabled_match * 1e9,
        },
        {
            "id": f"automata.match.list.{LIST_LENGTH}.fallback",
            "label": (
                f"match(list(nat), {LIST_LENGTH}-element list), "
                "--no-automata template path"
            ),
            "ns_per_op": fallback_match * 1e9,
        },
    ]
    return rows, measurements


def automata_rows(quick: bool = False) -> List[Row]:
    """The human-readable rows (``summary.py`` pulls these)."""
    rows, _ = automata_measurements(quick=quick)
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-smoke sizes")
    parser.add_argument("--json", metavar="OUT", default=None)
    arguments = parser.parse_args(argv)
    rows, measurements = automata_measurements(quick=arguments.quick)
    width = max(len(label) for label, _ in rows) + 2
    for label, value in rows:
        print(label.ljust(width) + value)
    if arguments.json is not None:
        payload = {"quick": arguments.quick, "measurements": measurements}
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, ensure_ascii=False)
            handle.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
