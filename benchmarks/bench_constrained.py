"""Experiment E14: cost of the typed-unification constraint store.

Compares plain SLD against constrained execution whose store must check
every candidate binding, across generator sizes — the run-time price of
the dynamic alternative versus the compile-time discipline.

Run:  pytest benchmarks/bench_constrained.py --benchmark-only
"""

import pytest

from repro.core import SubtypeEngine
from repro.lang import parse_clause, parse_query
from repro.lp import Clause, ConstrainedInterpreter, Database, solve
from repro.workloads import naturals

SIZES = [8, 32, 128]


def generator_program(size: int):
    """``gen/1`` holding every nat up to ``size`` and every unnat down to
    ``-size`` — 2·size+1 facts."""
    clauses = []
    term = "0"
    clauses.append(Clause(parse_clause(f"gen({term}).").head, ()))
    for _ in range(size):
        term = f"succ({term})"
        clauses.append(Clause(parse_clause(f"gen({term}).").head, ()))
    term = "0"
    for _ in range(size):
        term = f"pred({term})"
        clauses.append(Clause(parse_clause(f"gen({term}).").head, ()))
    return clauses


@pytest.mark.parametrize("size", SIZES)
def test_plain_enumeration(benchmark, size):
    database = Database(generator_program(size))
    goals = parse_query(":- gen(X).").body

    def run():
        return solve(database, goals)

    result = benchmark(run)
    assert len(result.answers) == 2 * size + 1


@pytest.mark.parametrize("size", SIZES)
def test_constrained_enumeration(benchmark, size):
    """Same enumeration with an ``X : nat`` store: every binding gets a
    membership check, half the candidates are pruned."""
    database = Database(generator_program(size))
    engine = SubtypeEngine(naturals())
    interpreter = ConstrainedInterpreter(database, engine)
    goals = parse_query(":- gen(X), X : nat.").body

    def run():
        return interpreter.run(goals)

    result = benchmark(run)
    assert len(result.answers) == size + 1
    assert result.pruned_by_constraints == size
