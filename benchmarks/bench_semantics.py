"""Experiment E1 (semantics half): inhabitant-enumeration scaling.

Bounded enumeration of ``M_C[[τ]]`` grows with the depth bound (the set
itself grows exponentially for branching constructors); the memoised
recursion should stay proportional to the *output* size.

Run:  pytest benchmarks/bench_semantics.py --benchmark-only
"""

import pytest

from repro.core import GeneralTypeSemantics, TypeSemantics
from repro.lang import parse_term as T
from repro.workloads import ids_nonuniform, paper_universe, rich_universe

DEPTHS = [3, 5, 7]


@pytest.mark.parametrize("depth", DEPTHS)
def test_enumerate_nat(benchmark, depth):
    cset = paper_universe()

    def run():
        return GeneralTypeSemantics(cset).inhabitants(T("nat"), depth)

    members = benchmark(run)
    assert len(members) == depth  # 0, succ(0), ..., succ^{depth-1}(0)


@pytest.mark.parametrize("depth", DEPTHS)
def test_enumerate_list_nat(benchmark, depth):
    cset = paper_universe()

    def run():
        return GeneralTypeSemantics(cset).inhabitants(T("list(nat)"), depth)

    members = benchmark(run)
    assert members


@pytest.mark.parametrize("depth", [3, 4])
def test_enumerate_tree(benchmark, depth):
    """Branching constructor: the output set grows quadratically per
    level (|T(d)| ≈ 2·|T(d-1)|²), so depth stops at 4 (~200 terms)."""
    cset = rich_universe()

    def run():
        return GeneralTypeSemantics(cset).inhabitants(T("tree(bool)"), depth)

    benchmark(run)


def test_enumerate_nonuniform_ids(benchmark):
    cset = ids_nonuniform()

    def run():
        return GeneralTypeSemantics(cset).inhabitants(T("id(person)"), 4)

    members = benchmark(run)
    assert members


@pytest.mark.parametrize("depth", DEPTHS)
def test_membership_vs_enumeration(benchmark, depth):
    """Membership via the engine should beat enumerate-and-test."""
    cset = paper_universe()
    semantics = TypeSemantics(cset)
    from repro.workloads import deep_nat

    term = deep_nat(depth - 1)

    def run():
        return semantics.member(T("nat"), term)

    assert benchmark(run)
