"""Abstract-interpretation benchmarks: the success-set fixpoint's cost.

The whole-program inference (``repro.analysis.absint``) runs a least
fixpoint over the call graph's SCCs, so its pitch is *linear* scaling in
program size: a delegation chain of N predicates is N singleton SCCs and
the per-predicate cost must stay flat as N grows.  This module measures
three shapes:

* **A1 corpus** — ``infer_text`` over every repository example program
  (the cost ``tlp-lint --infer`` adds per file);
* **A2 chain** — the fixpoint on a declared N-predicate delegation
  chain, reported per predicate so scaling regressions surface as a
  growing ns/op rather than a bigger total;
* **A3 reconstruct** — the same chain with every ``PRED`` declaration
  stripped, so inference also folds, repairs, and checker-validates a
  reconstructed declaration for all N predicates.

Run standalone::

    python benchmarks/bench_absint.py [--quick] [--json OUT]

or let ``benchmarks/summary.py`` pull the rows into the one-shot table
(ids ``absint.*`` land in ``BENCH_subtype.json`` for the CI regression
gate).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.absint import infer_text
from repro.workloads import synthetic_list_program

Row = Tuple[str, str]

REPO_ROOT = Path(__file__).resolve().parent.parent
PROGRAM_DIRS = (
    REPO_ROOT / "examples" / "programs",
    REPO_ROOT / "examples" / "corpus" / "members",
)

_PRED_LINE = re.compile(r"^PRED .*$", re.MULTILINE)


def fmt(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _timed(thunk):
    start = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - start


def _corpus_texts() -> List[Tuple[str, str]]:
    texts = []
    for directory in PROGRAM_DIRS:
        if directory.is_dir():
            for path in sorted(directory.glob("*.tlp")):
                texts.append((path.name, path.read_text()))
    return texts


def _strip_declarations(text: str) -> str:
    """Remove every ``PRED`` line so reconstruction has to supply them."""
    return _PRED_LINE.sub("", text)


def absint_measurements(
    quick: bool = False,
) -> Tuple[List[Row], List[Dict[str, object]]]:
    """Run the abstract-interpretation benchmarks once.

    Returns human-readable ``(label, measured)`` rows and machine rows
    (``{"id", "label", "ns_per_op"}``) for ``BENCH_subtype.json``.
    """
    rows: List[Row] = []
    machine: List[Dict[str, object]] = []

    # -- A1: every repository example program -----------------------------
    texts = _corpus_texts()
    predicates = 0

    def run_corpus():
        count = 0
        for _, text in texts:
            inference = infer_text(text)
            if inference is not None:
                count += len(inference.success)
        return count

    predicates, dt = _timed(run_corpus)
    rows.append(
        (
            f"A1 success-set inference, {len(texts)}-file corpus "
            f"({predicates} predicates)",
            fmt(dt),
        )
    )
    machine.append(
        {
            "id": "absint.corpus",
            "label": f"infer {len(texts)}-file example corpus",
            "ns_per_op": dt * 1e9 / max(1, len(texts)),
        }
    )

    # -- A2/A3: scaling on the delegation chain ---------------------------
    chain_sizes = (16,) if quick else (64, 256)
    for size in chain_sizes:
        declared = synthetic_list_program(size)
        inference, dt = _timed(lambda: infer_text(declared))
        assert inference is not None and len(inference.success) == size
        rows.append((f"A2 fixpoint, {size}-predicate chain", fmt(dt)))
        machine.append(
            {
                "id": f"absint.chain.{size}",
                "label": f"fixpoint per predicate, {size}-chain",
                "ns_per_op": dt * 1e9 / size,
            }
        )

        stripped = _strip_declarations(declared)

        def run_stripped():
            # reconstructions() is lazy; force it so the timing covers
            # fold + repair + checker validation, not just the fixpoint.
            result = infer_text(stripped)
            result.reconstructions()
            return result

        inference, dt = _timed(run_stripped)
        assert inference is not None
        reconstructed = sum(
            1 for r in inference.reconstructions().values() if r.defined
        )
        assert reconstructed == size, f"expected {size}, got {reconstructed}"
        rows.append(
            (f"A3 + declaration reconstruction, {size} undeclared", fmt(dt))
        )
        machine.append(
            {
                "id": f"absint.reconstruct.{size}",
                "label": f"reconstruct per predicate, {size}-chain",
                "ns_per_op": dt * 1e9 / size,
            }
        )

    return rows, machine


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny CI-smoke workload sizes"
    )
    parser.add_argument(
        "--json", metavar="OUT", default=None, help="write machine rows to OUT"
    )
    arguments = parser.parse_args(argv)

    rows, machine = absint_measurements(quick=arguments.quick)
    width = max(len(label) for label, _ in rows) + 2
    for label, value in rows:
        print(label.ljust(width) + value)
    if arguments.json is not None:
        Path(arguments.json).write_text(json.dumps(machine, indent=2) + "\n")
        print(f"wrote {arguments.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
