"""Experiments E11/E13: proof objects and the bounded least model.

* Derivation construction + replay verification scale with derivation
  length (each step is one unification at verification time).
* The bounded least model costs |U|²-ish per fixpoint pass; the benchmark
  tracks universe size.

Run:  pytest benchmarks/bench_derivation.py --benchmark-only
"""

import pytest

from repro.core import LeastModel, expansion_closed_universe
from repro.core.derivation import DerivationBuilder, verify_derivation
from repro.lang import parse_term as T
from repro.workloads import deep_nat, paper_universe


@pytest.mark.parametrize("depth", [4, 16, 64])
def test_derive_nat_tower(benchmark, depth):
    builder = DerivationBuilder(paper_universe())
    term = deep_nat(depth)

    def run():
        return builder.derive(T("nat"), term)

    derivation = benchmark(run)
    assert derivation is not None


@pytest.mark.parametrize("depth", [4, 16, 64])
def test_verify_nat_tower(benchmark, depth):
    builder = DerivationBuilder(paper_universe())
    derivation = builder.derive(T("nat"), deep_nat(depth))
    assert derivation is not None

    def run():
        return verify_derivation(derivation)

    assert benchmark(run)


def test_derive_paper_example(benchmark):
    builder = DerivationBuilder(paper_universe())

    def run():
        return builder.derive(T("list(A)"), T("cons(foo,nil)"))

    assert benchmark(run) is not None


@pytest.mark.parametrize("tower", [2, 4, 8])
def test_least_model_construction(benchmark, tower):
    """Universe seeded with nat towers up to the given height — universe
    size (and fixpoint cost) grows with the seeds."""
    cset = paper_universe()
    seeds = [T("int"), T("list(nat)"), T("cons(0, nil)")] + [
        deep_nat(i) for i in range(tower + 1)
    ]
    universe = expansion_closed_universe(cset, seeds)

    def run():
        return LeastModel(cset, universe)

    model = benchmark(run)
    assert model.holds(T("int"), deep_nat(tower))
