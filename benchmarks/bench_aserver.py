"""Async check-server benchmarks: throughput under fan-in, closure cost.

Two families for the ``tlp-aserve`` subsystem:

* **S1 throughput** — an in-process :class:`AsyncCheckServer` on a
  loopback TCP port, hit by 1, 8, and 32 concurrent clients issuing
  hot ``check`` requests.  Measures requests/s through the whole stack
  (framing, per-client queue, executor dispatch, hot-LRU lookup,
  response write); the 8- and 32-client rows are the fan-in scaling
  story and the ``aserver.rps.*`` regression ids.
* **S2 invalidation** — a workspace of N members behind one shared
  declaration prelude.  Re-checking after a one-member edit (its
  dependency *closure*: that member; everyone else replays from the
  content-addressed cache) is raced against a full forced re-check of
  the corpus — the latency gap IS the subsystem's pitch, and both ends
  are pinned by the ``aserver.recheck.closure`` / ``.full`` ids.

Run standalone::

    python benchmarks/bench_aserver.py [--quick] [--json OUT]

or let ``benchmarks/summary.py`` pull the rows into the one-shot table
(ids ``aserver.*`` land in ``BENCH_subtype.json`` for the CI gate).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.service.aserver import AsyncCheckServer, Workspace
from repro.service.aserver.protocol import encode_line
from repro.workloads import APPEND

Row = Tuple[str, str]

SHARED_DECLS = """\
FUNC nil, cons.
TYPE elist, nelist, list.
elist >= nil.
nelist(A) >= cons(A,list(A)).
list(A) >= elist + nelist(A).
PRED app(list(A),list(A),list(A)).
"""

MEMBER_CLAUSES = """\
app(nil,L,L).
app(cons(X,L),M,cons(X,N)) :- app(L,M,N).
"""


def fmt(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


# -- S1: request throughput under concurrent clients -------------------------


async def _fan_in(client_count: int, requests_per_client: int) -> float:
    """Wall seconds for ``client_count`` concurrent clients to push
    ``requests_per_client`` hot checks each through one server."""
    server = AsyncCheckServer()
    _, port = await server.start_tcp()

    async def warm() -> None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(encode_line({"id": 0, "op": "check", "text": APPEND}))
        await writer.drain()
        await reader.readline()
        writer.close()

    async def one_client(index: int) -> None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        for sequence in range(requests_per_client):
            writer.write(
                encode_line(
                    {"id": sequence, "op": "check", "text": APPEND}
                )
            )
        await writer.drain()
        for _ in range(requests_per_client):
            line = await reader.readline()
            assert line, "server dropped a response"
        writer.close()

    try:
        await warm()  # populate the hot LRU: measure dispatch, not checking
        started = time.perf_counter()
        await asyncio.gather(
            *(one_client(index) for index in range(client_count))
        )
        return time.perf_counter() - started
    finally:
        await server.shutdown()


# -- S2: closure re-check vs full re-check -----------------------------------


def _build_corpus(root: Path, members: int) -> None:
    (root / "decls.tlp").write_text(SHARED_DECLS)
    member_dir = root / "members"
    member_dir.mkdir()
    for index in range(members):
        (member_dir / f"m{index:03d}.tlp").write_text(
            f"% member {index}\n{MEMBER_CLAUSES}"
        )
    (root / "tlp-project.json").write_text(
        '{"name": "bench-aserver", "include": ["members"], '
        '"shared": ["decls.tlp"]}\n'
    )


def _closure_vs_full(members: int, edits: int) -> Tuple[float, float, int]:
    """(closure seconds/edit, full seconds/pass, member count)."""
    with tempfile.TemporaryDirectory(prefix="tlp-bench-aserver-") as root:
        root_path = Path(root)
        _build_corpus(root_path, members)
        workspace = Workspace([str(root_path)])
        try:
            workspace.check_all()  # cold pass: populate the cache
            target = root_path / "members" / "m000.tlp"
            closure_total = 0.0
            for edit in range(edits):
                target.write_text(
                    f"% member 0, edit {edit}\n{MEMBER_CLAUSES}"
                )
                report = workspace.on_change([str(target)])
                assert report.checked == report.closure
                assert len(report.checked) == 1
                assert report.cache_hits == members - 1
                closure_total += report.wall_s
            started = time.perf_counter()
            full = workspace.check_all(force=True)
            full_seconds = time.perf_counter() - started
            assert full.cache_misses == members
            return closure_total / edits, full_seconds, members
        finally:
            workspace.close()


def aserver_measurements(
    quick: bool = False,
) -> Tuple[List[Row], List[Dict[str, object]]]:
    """Run the async-server benchmarks once.

    Returns human-readable ``(label, measured)`` rows and machine rows
    (``{"id", "label", "ns_per_op"}``) for ``BENCH_subtype.json``.
    """
    rows: List[Row] = []
    machine: List[Dict[str, object]] = []

    requests_per_client = 20 if quick else 100
    for client_count in (1, 8, 32):
        wall = asyncio.run(_fan_in(client_count, requests_per_client))
        total = client_count * requests_per_client
        rows.append(
            (
                f"S1 aserver hot checks, {client_count} client"
                f"{'s' if client_count > 1 else ''} × {requests_per_client}",
                f"{fmt(wall)} ({total / wall:,.0f} req/s)",
            )
        )
        machine.append(
            {
                "id": f"aserver.rps.{client_count}",
                "label": f"aserver hot check, {client_count} concurrent clients",
                "ns_per_op": wall * 1e9 / total,
            }
        )

    members = 10 if quick else 50
    edits = 2 if quick else 5
    closure_seconds, full_seconds, members = _closure_vs_full(members, edits)
    speedup = full_seconds / closure_seconds if closure_seconds else 0.0
    rows.append(
        (
            f"S2 closure re-check, 1 of {members} members edited",
            f"{fmt(closure_seconds)} vs {fmt(full_seconds)} full "
            f"({speedup:.1f}x)",
        )
    )
    machine.append(
        {
            "id": "aserver.recheck.closure",
            "label": f"closure re-check, 1-member edit in {members}",
            "ns_per_op": closure_seconds * 1e9,
        }
    )
    machine.append(
        {
            "id": "aserver.recheck.full",
            "label": f"forced full re-check of {members} members",
            "ns_per_op": full_seconds * 1e9,
        }
    )
    return rows, machine


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny CI-smoke workload sizes"
    )
    parser.add_argument(
        "--json", metavar="OUT", default=None, help="write machine rows to OUT"
    )
    arguments = parser.parse_args(argv)
    rows, machine = aserver_measurements(quick=arguments.quick)
    width = max(len(label) for label, _ in rows) + 2
    for label, value in rows:
        print(label.ljust(width) + value)
    if arguments.json is not None:
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump({"measurements": machine}, handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
