"""Gate CI on perf measurements and batch run reports.

Perf mode — CI runs ``benchmarks/summary.py --quick --json`` (which
rewrites ``BENCH_subtype.json`` at the repo root), then calls this
script with the *committed* baseline and the fresh measurement::

    python benchmarks/check_regression.py baseline.json current.json [--factor 2.0]

A row regresses when ``current_ns > factor * baseline_ns`` for a
measurement ``id`` present in both files.  The default factor is a
deliberately loose 2x — CI runners are noisy shared machines; the gate
exists to catch order-of-magnitude breakage (a dropped memo, an
accidentally disabled intern table), not 10% drift.  Ids present in only
one file are reported but never fatal, so adding or retiring benchmarks
doesn't break the gate.

Run-report mode — gate a ``tlp-run-report/1`` artifact (written by
``tlp-batch --report`` or ``bench_batch.py --report``) on cache
effectiveness::

    python benchmarks/check_regression.py --run-report run-report.json --min-hit-rate 0.99

Fails when the report's ``cache.hit_rate`` falls below the floor — the
observable symptom of a broken fingerprint, a silently bumped checker
version, or a cache that stopped persisting.  Both modes compose: give
baseline+current *and* ``--run-report`` and the exit status is the
conjunction.

Speedup mode — enforce that one row in the *current* file beats another
by at least a factor (repeatable)::

    python benchmarks/check_regression.py baseline.json current.json \
        --min-speedup automata.member.nat.256:automata.member.nat.256.fallback:3.0

reads ``fast_id:slow_id:factor`` and fails unless
``slow_ns >= factor * fast_ns`` *within the current measurement*.  This
is how the tree-automata win is gated: the committed baseline already
has the automaton on, so a plain regression check could never notice the
fast path silently degrading into the fallback — comparing the enabled
row against the ``.fallback`` row of the same run can.

Overhead mode — the dual ceiling (repeatable)::

    python benchmarks/check_regression.py baseline.json current.json \
        --max-overhead polytypes.lint.corpus:polytypes.lint.corpus.nosolver:1.1

reads ``with_id:base_id:factor`` and fails when
``with_ns > factor * base_ns`` within the current measurement.  This
gates features that must stay within noise of their own off-switch: the
TLP6xx solver's activation gate keeps monomorphic lint runs at most
1.1x the solver-disabled time.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def load_rows(path: str) -> Dict[str, float]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return {
        str(row["id"]): float(row["ns_per_op"])
        for row in payload.get("measurements", [])
    }


def fmt_ns(ns: float) -> str:
    if ns < 1e3:
        return f"{ns:.0f}ns"
    if ns < 1e6:
        return f"{ns / 1e3:.1f}µs"
    if ns < 1e9:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e9:.2f}s"


def check_run_report(path: str, min_hit_rate: float) -> int:
    """Gate a ``tlp-run-report/1`` file on its cache hit rate."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"run report {path}: unreadable: {error}", file=sys.stderr)
        return 1
    schema = report.get("schema")
    if schema != "tlp-run-report/1":
        print(f"run report {path}: unknown schema {schema!r}", file=sys.stderr)
        return 1
    cache = report.get("cache", {})
    hit_rate = float(cache.get("hit_rate", 0.0))
    files = report.get("files", {})
    print(
        f"run report: {files.get('total', '?')} files in "
        f"{float(report.get('wall_s', 0.0)) * 1e3:.1f}ms, "
        f"cache {cache.get('hits', '?')}/{cache.get('hits', 0) + cache.get('misses', 0)} "
        f"({hit_rate:.1%} hit rate), "
        f"worker utilisation {float(report.get('worker_utilisation', 0.0)):.0%}"
    )
    for entry in report.get("top_slow_files", [])[:5]:
        print(
            f"  slow: {entry.get('path')}  "
            f"{float(entry.get('duration_s', 0.0)) * 1e3:.2f}ms"
        )
    if hit_rate < min_hit_rate:
        print(
            f"cache hit rate {hit_rate:.1%} below the "
            f"--min-hit-rate floor {min_hit_rate:.1%}",
            file=sys.stderr,
        )
        return 1
    print(f"cache hit rate {hit_rate:.1%} >= floor {min_hit_rate:.1%}")
    return 0


def check_overheads(rows: Dict[str, float], specs: List[str]) -> int:
    """Enforce ``with_id:base_id:factor`` ceilings within one measurement
    set: fail when ``with_ns > factor * base_ns``.

    The dual of :func:`check_speedups` — an *upper* bound on a ratio —
    for features that must stay within noise of their own off-switch
    (e.g. the TLP6xx solver on the monomorphic lint corpus).
    """
    status = 0
    for spec in specs:
        try:
            with_id, base_id, factor_text = spec.rsplit(":", 2)
            factor = float(factor_text)
        except ValueError:
            print(
                f"--max-overhead {spec!r}: expected with_id:base_id:factor",
                file=sys.stderr,
            )
            status = 1
            continue
        missing = [i for i in (with_id, base_id) if i not in rows]
        if missing:
            print(
                f"--max-overhead {spec!r}: id(s) missing from current file: "
                f"{', '.join(missing)}",
                file=sys.stderr,
            )
            status = 1
            continue
        ratio = rows[with_id] / rows[base_id] if rows[base_id] else float("inf")
        if ratio > factor:
            print(
                f"{with_id} is {ratio:.2f}x of {base_id} "
                f"({fmt_ns(rows[with_id])} vs {fmt_ns(rows[base_id])}); "
                f"ceiling is {factor:.2f}x",
                file=sys.stderr,
            )
            status = 1
        else:
            print(
                f"{with_id} is {ratio:.2f}x of {base_id} "
                f"(ceiling {factor:.2f}x)"
            )
    return status


def check_speedups(rows: Dict[str, float], specs: List[str]) -> int:
    """Enforce ``fast_id:slow_id:factor`` floors within one measurement set."""
    status = 0
    for spec in specs:
        try:
            fast_id, slow_id, factor_text = spec.rsplit(":", 2)
            factor = float(factor_text)
        except ValueError:
            print(
                f"--min-speedup {spec!r}: expected fast_id:slow_id:factor",
                file=sys.stderr,
            )
            status = 1
            continue
        missing = [i for i in (fast_id, slow_id) if i not in rows]
        if missing:
            print(
                f"--min-speedup {spec!r}: id(s) missing from current file: "
                f"{', '.join(missing)}",
                file=sys.stderr,
            )
            status = 1
            continue
        speedup = rows[slow_id] / rows[fast_id] if rows[fast_id] else float("inf")
        if speedup < factor:
            print(
                f"{fast_id} only {speedup:.2f}x faster than {slow_id} "
                f"({fmt_ns(rows[fast_id])} vs {fmt_ns(rows[slow_id])}); "
                f"floor is {factor:.1f}x",
                file=sys.stderr,
            )
            status = 1
        else:
            print(
                f"{fast_id} is {speedup:.2f}x faster than {slow_id} "
                f"(floor {factor:.1f}x)"
            )
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline", nargs="?", default=None, help="committed BENCH_subtype.json"
    )
    parser.add_argument(
        "current", nargs="?", default=None, help="freshly measured BENCH_subtype.json"
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when current > factor * baseline (default 2.0)",
    )
    parser.add_argument(
        "--run-report",
        metavar="FILE",
        default=None,
        help="also gate a tlp-run-report/1 file on cache effectiveness",
    )
    parser.add_argument(
        "--min-hit-rate",
        type=float,
        default=0.99,
        help=(
            "minimum cache.hit_rate accepted with --run-report "
            "(default 0.99)"
        ),
    )
    parser.add_argument(
        "--min-speedup",
        metavar="FAST:SLOW:FACTOR",
        action="append",
        default=[],
        help=(
            "require measurement FAST to be at least FACTOR times faster "
            "than SLOW within the current file (repeatable)"
        ),
    )
    parser.add_argument(
        "--max-overhead",
        metavar="WITH:BASE:FACTOR",
        action="append",
        default=[],
        help=(
            "require measurement WITH to be at most FACTOR times BASE "
            "within the current file (repeatable)"
        ),
    )
    arguments = parser.parse_args(argv)

    if (arguments.baseline is None) != (arguments.current is None):
        parser.error("give both baseline and current, or neither")
    if arguments.baseline is None and arguments.run_report is None:
        parser.error("nothing to check: give baseline+current or --run-report")
    if arguments.min_speedup and arguments.current is None:
        parser.error("--min-speedup needs a current measurement file")
    if arguments.max_overhead and arguments.current is None:
        parser.error("--max-overhead needs a current measurement file")

    report_status = 0
    if arguments.run_report is not None:
        report_status = check_run_report(
            arguments.run_report, arguments.min_hit_rate
        )
        if arguments.baseline is None:
            return report_status
        print()

    baseline = load_rows(arguments.baseline)
    current = load_rows(arguments.current)
    common = sorted(set(baseline) & set(current))
    if not common:
        print("no common measurement ids between baseline and current", file=sys.stderr)
        return 1

    width = max(len(identifier) for identifier in common) + 2
    print(f"{'id'.ljust(width)}{'baseline':>12}{'current':>12}{'ratio':>8}")
    regressions = []
    for identifier in common:
        ratio = current[identifier] / baseline[identifier]
        marker = ""
        if ratio > arguments.factor:
            regressions.append(identifier)
            marker = f"  REGRESSED (> {arguments.factor:.1f}x)"
        print(
            f"{identifier.ljust(width)}"
            f"{fmt_ns(baseline[identifier]):>12}"
            f"{fmt_ns(current[identifier]):>12}"
            f"{ratio:>7.2f}x{marker}"
        )
    for identifier in sorted(set(baseline) - set(current)):
        print(f"{identifier.ljust(width)}  (missing from current — skipped)")
    for identifier in sorted(set(current) - set(baseline)):
        print(f"{identifier.ljust(width)}  (new — no baseline, skipped)")

    speedup_status = 0
    if arguments.min_speedup:
        print()
        speedup_status = check_speedups(current, arguments.min_speedup)
    overhead_status = 0
    if arguments.max_overhead:
        print()
        overhead_status = check_overheads(current, arguments.max_overhead)

    if regressions:
        print(
            f"\n{len(regressions)} measurement(s) regressed beyond "
            f"{arguments.factor:.1f}x: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(common)} common measurements within {arguments.factor:.1f}x")
    return report_status or speedup_status or overhead_status


if __name__ == "__main__":
    sys.exit(main())
