"""Compare two ``BENCH_subtype.json`` files and fail on perf regressions.

CI runs ``benchmarks/summary.py --quick --json`` (which rewrites
``BENCH_subtype.json`` at the repo root), then calls this script with the
*committed* baseline and the fresh measurement::

    python benchmarks/check_regression.py baseline.json current.json [--factor 2.0]

A row regresses when ``current_ns > factor * baseline_ns`` for a
measurement ``id`` present in both files.  The default factor is a
deliberately loose 2x — CI runners are noisy shared machines; the gate
exists to catch order-of-magnitude breakage (a dropped memo, an
accidentally disabled intern table), not 10% drift.  Ids present in only
one file are reported but never fatal, so adding or retiring benchmarks
doesn't break the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def load_rows(path: str) -> Dict[str, float]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return {
        str(row["id"]): float(row["ns_per_op"])
        for row in payload.get("measurements", [])
    }


def fmt_ns(ns: float) -> str:
    if ns < 1e3:
        return f"{ns:.0f}ns"
    if ns < 1e6:
        return f"{ns / 1e3:.1f}µs"
    if ns < 1e9:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e9:.2f}s"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_subtype.json")
    parser.add_argument("current", help="freshly measured BENCH_subtype.json")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when current > factor * baseline (default 2.0)",
    )
    arguments = parser.parse_args(argv)

    baseline = load_rows(arguments.baseline)
    current = load_rows(arguments.current)
    common = sorted(set(baseline) & set(current))
    if not common:
        print("no common measurement ids between baseline and current", file=sys.stderr)
        return 1

    width = max(len(identifier) for identifier in common) + 2
    print(f"{'id'.ljust(width)}{'baseline':>12}{'current':>12}{'ratio':>8}")
    regressions = []
    for identifier in common:
        ratio = current[identifier] / baseline[identifier]
        marker = ""
        if ratio > arguments.factor:
            regressions.append(identifier)
            marker = f"  REGRESSED (> {arguments.factor:.1f}x)"
        print(
            f"{identifier.ljust(width)}"
            f"{fmt_ns(baseline[identifier]):>12}"
            f"{fmt_ns(current[identifier]):>12}"
            f"{ratio:>7.2f}x{marker}"
        )
    for identifier in sorted(set(baseline) - set(current)):
        print(f"{identifier.ljust(width)}  (missing from current — skipped)")
    for identifier in sorted(set(current) - set(baseline)):
        print(f"{identifier.ljust(width)}  (new — no baseline, skipped)")

    if regressions:
        print(
            f"\n{len(regressions)} measurement(s) regressed beyond "
            f"{arguments.factor:.1f}x: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(common)} common measurements within {arguments.factor:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
