"""Ablations A1/A2: the design choices DESIGN.md calls out.

* A1 — cross-query memoisation in the deterministic subtype engine.
  Within one ground query the explicit-stack evaluation always memoises
  (that is the algorithm); the ``memoize`` flag controls whether results
  persist *across* queries on the same engine.  A batch of related
  membership queries (shared element types, shared tails) should
  amortise with the flag on.
* A2 — first-argument indexing in the SLD database.  Append-style
  predicates have constructor-disjoint clause heads; indexing halves the
  head-unification attempts.

Run:  pytest benchmarks/bench_ablation.py --benchmark-only
"""

import pytest

from repro.core import SubtypeEngine
from repro.lang import parse_term as T
from repro.lp import Database, solve
from repro.terms import Struct, Var
from repro.workloads import load, nat_list, paper_universe

LENGTHS = [16, 64, 128]


# -- A1: cross-query subtype-engine memoisation ------------------------------------------

BATCH = [nat_list(length, element_depth=4) for length in range(1, 33)]


def _query_batch(engine) -> bool:
    goal_type = T("list(nat)")
    return all(engine.contains(goal_type, term) for term in BATCH)


@pytest.mark.parametrize("memoize", [True, False], ids=["memo_on", "memo_off"])
def test_a1_query_batch(benchmark, memoize):
    cset = paper_universe()
    engine = SubtypeEngine(cset, memoize=memoize)

    assert benchmark(lambda: _query_batch(engine))


# -- A2: first-argument indexing --------------------------------------------------------


def nil_list(length: int):
    term = Struct("nil", ())
    for _ in range(length):
        term = Struct("cons", (Struct("nil", ()), term))
    return term


@pytest.mark.parametrize("length", LENGTHS)
def test_a2_indexing_on(benchmark, length):
    module = load("append")
    database = Database(module.program, first_arg_indexing=True)
    goal = Struct("app", (nil_list(length), nil_list(1), Var("R")))

    def run():
        return solve(database, [goal])

    result = benchmark(run)
    assert len(result.answers) == 1


@pytest.mark.parametrize("length", LENGTHS)
def test_a2_indexing_off(benchmark, length):
    module = load("append")
    database = Database(module.program, first_arg_indexing=False)
    goal = Struct("app", (nil_list(length), nil_list(1), Var("R")))

    def run():
        return solve(database, [goal])

    result = benchmark(run)
    assert len(result.answers) == 1
