"""Experiments E6/P1: well-typedness checker throughput.

Measures whole-file checking (parse → declarations → restriction checks →
Definition 16 per clause) and the per-clause checker alone, against
program size.  Expected shape: ~linear in the number of clauses.

Run:  pytest benchmarks/bench_welltyped.py --benchmark-only
"""

import pytest

from repro.checker import check_text
from repro.core import WellTypedChecker
from repro.workloads import LIST_LIBRARY, load, synthetic_list_program

PREDICATE_COUNTS = [4, 16, 64, 128]


@pytest.mark.parametrize("count", PREDICATE_COUNTS)
def test_whole_file_check(benchmark, count):
    source = synthetic_list_program(count)

    def run():
        return check_text(source)

    module = benchmark(run)
    assert module.ok


@pytest.mark.parametrize("count", PREDICATE_COUNTS)
def test_clause_checking_only(benchmark, count):
    """Definition 16 checking alone, re-using a parsed module."""
    module = check_text(synthetic_list_program(count))
    assert module.ok
    checker = WellTypedChecker(module.constraints, module.predicate_types)

    def run():
        return checker.check_program(module.program)

    report = benchmark(run)
    assert report.well_typed


def test_list_library_check(benchmark):
    def run():
        return check_text(LIST_LIBRARY)

    module = benchmark(run)
    assert module.ok


def test_single_clause_check(benchmark):
    """The paper's recursive append clause — the canonical unit."""
    module = load("append")
    checker = module.checker
    clause = module.program.clauses[1]

    def run():
        return checker.check_clause(clause)

    report = benchmark(run)
    assert report.well_typed


def test_rejection_is_cheap(benchmark):
    """Rejecting an ill-typed clause should cost no more than accepting."""
    from repro.workloads import ILL_TYPED_EXAMPLES

    source = ILL_TYPED_EXAMPLES["clause_two_contexts"]

    def run():
        return check_text(source)

    module = benchmark(run)
    assert not module.ok
