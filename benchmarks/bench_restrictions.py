"""Experiment E3: declaration-restriction analysis scaling.

Uniform-polymorphism checking is linear in the number of constraints;
guardedness (the direct-dependence graph plus its transitive closure) is
the interesting one — these benchmarks measure it against constraint-set
size for both generated sets and wide hierarchies.

Run:  pytest benchmarks/bench_restrictions.py --benchmark-only
"""

import random

import pytest

from repro.checker import check_text
from repro.core import (
    direct_dependence_graph,
    is_guarded,
    is_uniform_polymorphic,
    validate_restrictions,
)
from repro.workloads import random_guarded_constraint_set, wide_type_hierarchy

SIZES = [8, 32, 128]
WIDTHS = [16, 64, 256]


@pytest.mark.parametrize("size", SIZES)
def test_guardedness_random_sets(benchmark, size):
    cset = random_guarded_constraint_set(
        random.Random(size), type_count=size, constraints_per_type=2
    )

    def run():
        return is_guarded(cset)

    assert benchmark(run)


@pytest.mark.parametrize("size", SIZES)
def test_uniformity_random_sets(benchmark, size):
    cset = random_guarded_constraint_set(
        random.Random(size), type_count=size, constraints_per_type=2
    )

    def run():
        return is_uniform_polymorphic(cset)

    assert benchmark(run)


@pytest.mark.parametrize("width", WIDTHS)
def test_guardedness_wide_hierarchy(benchmark, width):
    module = check_text(wide_type_hierarchy(width))
    cset = module.constraints

    def run():
        return is_guarded(cset)

    assert benchmark(run)


@pytest.mark.parametrize("size", SIZES)
def test_dependence_graph_construction(benchmark, size):
    cset = random_guarded_constraint_set(
        random.Random(size), type_count=size, constraints_per_type=2
    )

    def run():
        return direct_dependence_graph(cset)

    graph = benchmark(run)
    assert not graph.self_dependent()


@pytest.mark.parametrize("size", SIZES)
def test_full_validation(benchmark, size):
    cset = random_guarded_constraint_set(
        random.Random(size), type_count=size, constraints_per_type=2
    )

    def run():
        validate_restrictions(cset)
        return True

    assert benchmark(run)
