"""Experiment E7: the cost of observing Theorem 6.

Theorem 6 makes run-time checks redundant for well-typed programs; the
typed interpreter re-checks every resolvent anyway so the theorem can be
*observed*.  These benchmarks measure what that observation costs: plain
SLD execution versus execution with per-resolvent Definition 16 checks,
across derivation lengths.  Expected shape: a constant factor per
resolution step (each re-check is one clause-sized match + solve).

Run:  pytest benchmarks/bench_consistency.py --benchmark-only
"""

import pytest

from repro.core import TypedInterpreter
from repro.lp import Query
from repro.terms import Struct, Var
from repro.workloads import load

LENGTHS = [4, 16, 64]


def nil_list(length: int):
    term = Struct("nil", ())
    for _ in range(length):
        term = Struct("cons", (Struct("nil", ()), term))
    return term


def append_query(length: int) -> Query:
    return Query((Struct("app", (nil_list(length), nil_list(1), Var("R"))),))


@pytest.fixture(scope="module")
def append_interpreter():
    module = load("append")
    return TypedInterpreter(module.checker, module.program, check_program=False)


@pytest.mark.parametrize("length", LENGTHS)
def test_plain_execution(benchmark, append_interpreter, length):
    query = append_query(length)

    def run():
        return append_interpreter.run(
            query, check_resolvents=False, check_answers=False, check_query=False
        )

    result = benchmark(run)
    assert len(result.answers) == 1


@pytest.mark.parametrize("length", LENGTHS)
def test_checked_execution(benchmark, append_interpreter, length):
    query = append_query(length)

    def run():
        return append_interpreter.run(query, check_query=False)

    result = benchmark(run)
    assert len(result.answers) == 1
    assert result.consistent
    assert result.resolvents_checked >= length


def test_nondeterministic_checked(benchmark, append_interpreter):
    """Backwards append: every split's derivation is checked."""
    query = Query((Struct("app", (Var("X"), Var("Y"), nil_list(8))),))

    def run():
        return append_interpreter.run(query, check_query=False)

    result = benchmark(run)
    assert len(result.answers) == 9
    assert result.consistent


def test_arithmetic_checked(benchmark):
    module = load("naturals_arithmetic")
    interpreter = TypedInterpreter(module.checker, module.program, check_program=False)
    from repro.lang import parse_query

    query = Query(parse_query(":- times(succ(succ(succ(0))), succ(succ(0)), R).").body)

    def run():
        return interpreter.run(query, check_query=False)

    result = benchmark(run)
    assert result.consistent
