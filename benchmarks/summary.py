"""One-shot experiment summary — regenerates the EXPERIMENTS.md numbers.

Runs a curated subset of every experiment family with single measurements
(no pytest-benchmark statistics) and prints a compact table.  Use the
pytest-benchmark files for rigorous statistics; use this for a quick
paper-vs-measured check:

    python benchmarks/summary.py

Options:

``--quick``
    Shrink every workload to CI-smoke sizes (sub-second total).
``--json OUT``
    Also write the rows as JSON to ``OUT``, with a full ``repro.obs``
    telemetry snapshot (counters/gauges/timers collected while the
    experiments ran) embedded under ``"telemetry"``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.checker import check_text
from repro.core import (
    Matcher,
    NaiveSubtypeProver,
    SubtypeEngine,
    TypedInterpreter,
    WellTypedChecker,
)
from repro.core.derivation import DerivationBuilder, verify_derivation
from repro.lang import parse_query, parse_term as T
from repro.lp import Query
from repro.terms import Struct, Var
from repro.workloads import (
    ILL_TYPED_EXAMPLES,
    deep_int,
    deep_nat,
    load,
    nat_list,
    paper_universe,
    synthetic_list_program,
)

Row = Tuple[str, str]

#: Machine-readable ns/op rows collected while ``build_rows`` runs; the
#: stable ``id`` values key the CI regression gate (``BENCH_subtype.json``
#: + ``check_regression.py``).
MEASUREMENTS: List[Dict[str, object]] = []

#: Where the stable perf-trajectory file lands (repo root).
BENCH_SUBTYPE_PATH = Path(__file__).resolve().parent.parent / "BENCH_subtype.json"

#: The warm batch pass's run report (tlp-run-report/1), filled while
#: ``build_rows`` runs and embedded in the ``--json`` payload.
RUN_REPORT: Dict[str, object] = {}


def record(measurement_id: str, label: str, seconds: float, ops: int = 1) -> None:
    """Append one machine row (``ops`` > 1 divides into per-op cost)."""
    MEASUREMENTS.append(
        {"id": measurement_id, "label": label, "ns_per_op": seconds * 1e9 / ops}
    )


def timed(thunk: Callable[[], object]) -> Tuple[object, float]:
    start = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - start


def fmt(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def build_rows(quick: bool = False) -> List[Row]:
    """Run every experiment family once; return (label, measured) rows.

    Also refills :data:`MEASUREMENTS` with the machine rows backing
    ``BENCH_subtype.json``.
    """
    MEASUREMENTS.clear()
    rows: List[Row] = []
    cset = paper_universe()

    nat_depths = (64, 256) if quick else (512, 4096, 32768)
    int_depths = (64,) if quick else (512, 4096)
    list_lengths = (64,) if quick else (256, 4096)
    naive_lengths = (1, 2) if quick else (1, 2, 3)
    e3_types = 32 if quick else 128
    e4_lengths = (64,) if quick else (256, 2048)
    e6_clauses = 16 if quick else 128
    e7_elements = 16 if quick else 64

    # -- E1/E2: subtype derivation, deterministic vs naive -----------------
    engine = SubtypeEngine(cset)
    for depth in nat_depths:
        _, dt = timed(lambda: SubtypeEngine(cset).contains(T("nat"), deep_nat(depth)))
        rows.append((f"E1 engine: succ^{depth}(0) ∈ nat", fmt(dt)))
        record(f"subtype.member.nat.{depth}", f"succ^{depth}(0) ∈ nat", dt)
    for depth in int_depths:
        _, dt = timed(lambda: SubtypeEngine(cset).contains(T("nat"), deep_int(depth)))
        rows.append((f"E1 engine: refute pred^{depth}(0) ∈ nat", fmt(dt)))
        record(f"subtype.refute.int.{depth}", f"refute pred^{depth}(0) ∈ nat", dt)
    for length in list_lengths:
        _, dt = timed(lambda: SubtypeEngine(cset).contains(T("list(nat)"), nat_list(length)))
        rows.append((f"E1 engine: {length}-element list ∈ list(nat)", fmt(dt)))
        record(
            f"subtype.member.list.{length}", f"{length}-element list ∈ list(nat)", dt
        )
    naive = NaiveSubtypeProver(cset, max_depth=40, step_limit=4_000_000)
    for length in naive_lengths:
        verdict, dt = timed(
            lambda: naive.holds(T("list(nat)"), nat_list(length, element_depth=0))
        )
        rows.append(
            (f"E2 naive SLD: {length}-element list ∈ list(nat) -> {verdict}", fmt(dt))
        )
    if not quick:
        rows.append(("E2 naive SLD: 4-element list", "diverges (>240s, budget-capped)"))

    # -- E3: restriction analysis ------------------------------------------
    from repro.core import validate_restrictions
    from repro.workloads import random_guarded_constraint_set
    import random

    big = random_guarded_constraint_set(random.Random(7), type_count=e3_types)
    _, dt = timed(lambda: validate_restrictions(big))
    rows.append((f"E3 uniform+guarded analysis, {e3_types}-type universe", fmt(dt)))

    # -- E4: match ------------------------------------------------------------
    matcher = Matcher(cset)
    for length in e4_lengths:
        _, dt = timed(lambda: Matcher(cset).match(T("list(nat)"), nat_list(length)))
        rows.append((f"E4 match(list(nat), {length}-element list)", fmt(dt)))
        record(f"match.list.{length}", f"match(list(nat), {length}-element list)", dt)

    # -- E6/P1: checker throughput --------------------------------------------
    source = synthetic_list_program(e6_clauses)
    module, dt = timed(lambda: check_text(source))
    assert module.ok
    clause_count = len(module.program)
    rows.append(
        (
            f"P1 whole-file check, {clause_count} clauses",
            f"{fmt(dt)} ({clause_count / dt:,.0f} clauses/s)",
        )
    )

    # -- E7: consistency overhead ------------------------------------------------
    append_module = load("append")
    interpreter = TypedInterpreter(append_module.checker, append_module.program, check_program=False)

    def nil_list(n):
        t = Struct("nil", ())
        for _ in range(n):
            t = Struct("cons", (Struct("nil", ()), t))
        return t

    query = Query((Struct("app", (nil_list(e7_elements), nil_list(1), Var("R"))),))
    _, plain_dt = timed(
        lambda: interpreter.run(query, check_resolvents=False, check_answers=False, check_query=False)
    )
    result, checked_dt = timed(lambda: interpreter.run(query, check_query=False))
    rows.append((f"E7 plain SLD, {e7_elements}-element append", fmt(plain_dt)))
    rows.append(
        (
            f"E7 + per-resolvent re-check ({result.resolvents_checked} resolvents, "
            f"{len(result.violations)} violations)",
            f"{fmt(checked_dt)} ({checked_dt / plain_dt:.1f}x)",
        )
    )

    # -- E11: the worked derivation ------------------------------------------------
    builder = DerivationBuilder(cset)
    derivation, dt = timed(lambda: builder.derive(T("list(A)"), T("cons(foo,nil)")))
    assert derivation is not None and verify_derivation(derivation)
    rows.append(
        (f"E11 Section 2 refutation regenerated+verified ({derivation.length} steps)", fmt(dt))
    )

    # -- E6: paper verdicts -----------------------------------------------------------
    rejected = sum(1 for s in ILL_TYPED_EXAMPLES.values() if not check_text(s).ok)
    rows.append(
        (f"E6 paper's ill-typed examples rejected", f"{rejected}/{len(ILL_TYPED_EXAMPLES)}")
    )

    # -- B1/B2: the batch checking service ---------------------------------
    from bench_batch import batch_rows

    RUN_REPORT.clear()
    rows.extend(
        batch_rows(quick=quick, measurements=MEASUREMENTS, run_report=RUN_REPORT)
    )

    # -- I1/I2: the interned term kernel and shared memo -------------------
    from bench_intern import intern_measurements

    intern_rows, intern_machine_rows = intern_measurements(quick=quick)
    rows.extend(intern_rows)
    MEASUREMENTS.extend(intern_machine_rows)

    # -- A1-A3: whole-program success-set inference ------------------------
    from bench_absint import absint_measurements

    absint_rows, absint_machine_rows = absint_measurements(quick=quick)
    rows.extend(absint_rows)
    MEASUREMENTS.extend(absint_machine_rows)

    # -- S1/S2: the async multi-client server ------------------------------
    from bench_aserver import aserver_measurements

    aserver_rows, aserver_machine_rows = aserver_measurements(quick=quick)
    rows.extend(aserver_rows)
    MEASUREMENTS.extend(aserver_machine_rows)

    # -- M1-M3: declared modes and --typed-run subject reduction -----------
    from bench_modes import modes_measurements

    modes_rows, modes_machine_rows = modes_measurements(quick=quick)
    rows.extend(modes_rows)
    MEASUREMENTS.extend(modes_machine_rows)

    # -- TA1-TA3: compiled tree automata -----------------------------------
    from bench_automata import automata_measurements

    ta_rows, ta_machine_rows = automata_measurements(quick=quick)
    rows.extend(ta_rows)
    MEASUREMENTS.extend(ta_machine_rows)

    # -- P1-P4: polymorphic subtype-constraint solver ----------------------
    from bench_polytypes import polytypes_measurements

    poly_rows, poly_machine_rows = polytypes_measurements(quick=quick)
    rows.extend(poly_rows)
    MEASUREMENTS.extend(poly_machine_rows)
    return rows


def render(rows: List[Row]) -> str:
    width = max(len(label) for label, _ in rows) + 2
    lines = ["experiment".ljust(width) + "measured", "-" * (width + 24)]
    for label, value in rows:
        lines.append(label.ljust(width) + value)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny CI-smoke workload sizes"
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default=None,
        help="write rows + repro.obs telemetry snapshot as JSON to OUT",
    )
    arguments = parser.parse_args(argv)

    telemetry = None
    if arguments.json is not None:
        # Collect a full telemetry snapshot alongside the measurements.
        obs.reset()
        obs.METRICS.enabled = True
        try:
            rows = build_rows(quick=arguments.quick)
            telemetry = obs.summary()
        finally:
            obs.METRICS.enabled = False
    else:
        rows = build_rows(quick=arguments.quick)

    print(render(rows))
    if arguments.json is not None:
        payload = {
            "quick": arguments.quick,
            "rows": [{"experiment": label, "measured": value} for label, value in rows],
            "telemetry": telemetry,
            "run_report": RUN_REPORT or None,
        }
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, ensure_ascii=False)
            handle.write("\n")
        print(f"\nwrote {arguments.json}", file=sys.stderr)

        from repro.core.automata import AUTOMATA
        from repro.core.shared_memo import SHARED_MEMO
        from repro.terms import intern_stats

        stats = intern_stats()
        bench = {
            "schema": "tlp-bench-subtype/1",
            "quick": arguments.quick,
            "measurements": [
                {**row, "ns_per_op": round(float(row["ns_per_op"]), 1)}
                for row in MEASUREMENTS
            ],
            "intern": {
                "enabled": stats.enabled,
                "size": stats.size,
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_rate": round(stats.hit_rate, 4),
            },
            "shared_memo": SHARED_MEMO.stats(),
            "automata": AUTOMATA.stats(),
        }
        with open(BENCH_SUBTYPE_PATH, "w", encoding="utf-8") as handle:
            json.dump(bench, handle, indent=2, ensure_ascii=False)
            handle.write("\n")
        print(f"wrote {BENCH_SUBTYPE_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
