"""Batch-service benchmarks: cold vs. warm corpus checks, worker scaling.

Measures the two claims the service layer makes:

* **incrementality** — a warm re-check of an unchanged corpus (every
  verdict replayed from the persistent cache) must be at least 5x faster
  than the cold run, with byte-identical diagnostics;
* **parallelism** — N process workers beat one worker on a corpus of
  independent files.

Run standalone::

    python benchmarks/bench_batch.py [--quick] [--json OUT]

or let ``benchmarks/summary.py`` pull its rows into the one-shot table.
The corpus is the repository's ``examples/programs/`` plus synthetic
list programs from ``repro.workloads`` so the parallel section has
enough work per file to measure.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.service.cache import ResultCache
from repro.service.project import load_project
from repro.service.report import build_run_report
from repro.service.runner import run_batch
from repro.workloads import synthetic_list_program

Row = Tuple[str, str]

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples" / "programs"


def fmt(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def build_corpus(root: Path, synthetic_files: int, predicates: int) -> Path:
    """examples/programs plus generated workload files, all under root."""
    corpus = root / "corpus"
    corpus.mkdir()
    if EXAMPLES.is_dir():
        for source in sorted(EXAMPLES.glob("*.tlp")):
            shutil.copy(source, corpus / source.name)
    for index in range(synthetic_files):
        text = synthetic_list_program(predicates) + f"% workload {index}\n"
        (corpus / f"synthetic{index:03}.tlp").write_text(text)
    return corpus


def batch_rows(
    quick: bool = False,
    measurements: Optional[List[Dict[str, object]]] = None,
    run_report: Optional[Dict[str, object]] = None,
) -> List[Row]:
    """Run the batch benchmarks once; return (label, measured) rows.

    With ``measurements`` given, machine rows (``{"id", "label",
    "ns_per_op"}``) are appended to it for ``BENCH_subtype.json``.  With
    ``run_report`` given (an empty dict), it is filled in place with the
    warm re-check's run report (``tlp-run-report/1`` schema) — the
    incrementality claim as a machine artifact: CI gates on its cache
    hit rate via ``check_regression.py --run-report``.
    """
    synthetic_files = 4 if quick else 12
    predicates = 8 if quick else 24
    jobs = 2 if quick else 4
    rows: List[Row] = []
    with tempfile.TemporaryDirectory(prefix="tlp-bench-") as scratch_name:
        scratch = Path(scratch_name)
        corpus = build_corpus(scratch, synthetic_files, predicates)
        files = len(load_project([str(corpus)]).files)

        # -- cold vs warm (incrementality) -------------------------------
        cache = ResultCache(str(scratch / "cache"))
        cold = run_batch(load_project([str(corpus)]), cache=cache)
        warm = run_batch(load_project([str(corpus)]), cache=cache)
        assert warm.hit_rate == 1.0 and warm.files_checked == 0
        assert {r.display: r.diagnostics for r in warm.results} == {
            r.display: r.diagnostics for r in cold.results
        }, "warm diagnostics must replay the cold run byte-for-byte"
        if run_report is not None:
            run_report.update(
                build_run_report(
                    warm,
                    project={"name": "bench-batch-warm", "files": files},
                )
            )
        speedup = cold.wall_s / warm.wall_s if warm.wall_s else float("inf")
        assert speedup >= 5.0, (
            f"warm re-check only {speedup:.1f}x faster than cold "
            f"(cold {fmt(cold.wall_s)}, warm {fmt(warm.wall_s)})"
        )
        rows.append((f"B1 cold batch check, {files} files", fmt(cold.wall_s)))
        rows.append(
            (
                f"B1 warm re-check (100% cache hits)",
                f"{fmt(warm.wall_s)} ({speedup:,.0f}x)",
            )
        )
        if measurements is not None:
            measurements.append(
                {
                    "id": "batch.cold.per_file",
                    "label": f"cold batch check, {files} files",
                    "ns_per_op": cold.wall_s * 1e9 / files,
                }
            )
            measurements.append(
                {
                    "id": "batch.warm.per_file",
                    "label": "warm re-check (100% cache hits)",
                    "ns_per_op": warm.wall_s * 1e9 / files,
                }
            )

        # -- 1 vs N workers (parallelism).  On a single-core box the pool
        # can only add overhead; the core count in the label keeps the
        # ratio honest.
        try:
            cores = len(os.sched_getaffinity(0))
        except AttributeError:  # non-Linux
            cores = os.cpu_count() or 1
        single_start = time.perf_counter()
        run_batch(load_project([str(corpus)]), jobs=1)
        single = time.perf_counter() - single_start
        pooled_start = time.perf_counter()
        run_batch(load_project([str(corpus)]), jobs=jobs, use="process")
        pooled = time.perf_counter() - pooled_start
        rows.append((f"B2 {files}-file corpus, 1 worker", fmt(single)))
        rows.append(
            (
                f"B2 {files}-file corpus, {jobs} process workers "
                f"({cores} core(s) available)",
                f"{fmt(pooled)} ({single / pooled:.1f}x)",
            )
        )
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-smoke sizes")
    parser.add_argument("--json", metavar="OUT", default=None)
    parser.add_argument(
        "--report",
        metavar="OUT",
        default=None,
        help="write the warm re-check's run report (tlp-run-report/1) to OUT",
    )
    arguments = parser.parse_args(argv)
    run_report: Optional[Dict[str, object]] = (
        {} if arguments.report is not None else None
    )
    rows = batch_rows(quick=arguments.quick, run_report=run_report)
    width = max(len(label) for label, _ in rows) + 2
    for label, value in rows:
        print(label.ljust(width) + value)
    if arguments.json is not None:
        payload: Dict[str, object] = {
            "quick": arguments.quick,
            "rows": [{"experiment": label, "measured": value} for label, value in rows],
        }
        if run_report:
            payload["run_report"] = run_report
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, ensure_ascii=False)
            handle.write("\n")
    if arguments.report is not None:
        with open(arguments.report, "w", encoding="utf-8") as handle:
            json.dump(run_report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
