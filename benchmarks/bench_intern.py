"""Interning/shared-memo benchmarks: the warm-path contract of the term kernel.

The hash-consing layer's pitch is that *re-queries* get cheap: once a
deep ground goal has been derived, asking again — even with the term
rebuilt from scratch, as batch traffic does — costs an intern-table walk
plus one identity-keyed memo probe, instead of the seed path's eager
re-hash plus a structural deep-compare on the probe.  This module
measures exactly that and **asserts the interned warm path is ≥2x faster
than the ``--no-intern`` seed path** on the deep-term workload.

Two more scenarios track the cross-engine story: fresh engines attached
to the process-wide shared memo (the batch service's shape — every
engine after the first starts warm) vs. fresh cold engines per query
(the seed shape).

Run standalone::

    python benchmarks/bench_intern.py [--quick] [--json OUT]

or let ``benchmarks/summary.py`` pull the rows into the one-shot table.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.recursion import ensure_recursion_capacity
from repro.core.shared_memo import SharedSubtypeMemo
from repro.core.subtype import SubtypeEngine
from repro.lang import parse_term as T
from repro.terms.term import clear_intern_table, intern_stats, set_interning
from repro.workloads import deep_nat, paper_universe

Row = Tuple[str, str]

#: Hard floor for the warm-path win (the PR's acceptance bar).
REQUIRED_SPEEDUP = 2.0

ROUNDS = 5


def fmt(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _best_per_op(thunk: Callable[[], None], iterations: int) -> float:
    """Best-of-N mean seconds per op (N rounds shrug off scheduler noise)."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(iterations):
            thunk()
        best = min(best, time.perf_counter() - start)
    return best / iterations


def _warm_requery(interned: bool, depth: int, iterations: int) -> float:
    """Seconds per warm ground re-query with the tower rebuilt every time.

    One engine, memo warmed once; each iteration rebuilds ``succ^depth(0)``
    from scratch and re-asks ``nat ⪰ tower`` — the shape batch traffic
    produces when many files mention the same deep terms.
    """
    previous = set_interning(interned)
    try:
        clear_intern_table()
        engine = SubtypeEngine(paper_universe())
        nat = T("nat")
        keep = deep_nat(depth)  # pins the interned nodes (weak table)
        # The seed path's memo probe structurally deep-compares the key.
        ensure_recursion_capacity(keep)
        assert engine.contains(nat, keep) is True
        return _best_per_op(lambda: engine.contains(nat, deep_nat(depth)), iterations)
    finally:
        set_interning(previous)


def _fresh_engines(shared: bool, depth: int, engines: int) -> float:
    """Seconds per query with a *fresh engine* for every query.

    ``shared=True`` attaches each engine to one shared memo (the batch
    service's per-file-engine shape: every engine after the first starts
    warm); ``shared=False`` is the seed shape — each engine derives the
    whole tower from a cold memo.
    """
    constraints = paper_universe()
    nat = T("nat")
    keep = deep_nat(depth)
    ensure_recursion_capacity(keep)
    memo = SharedSubtypeMemo() if shared else None
    if shared:
        SubtypeEngine(constraints, validate=False, shared_memo=memo).contains(nat, keep)
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(engines):
            engine = SubtypeEngine(constraints, validate=False, shared_memo=memo)
            engine.contains(nat, keep)
        best = min(best, time.perf_counter() - start)
    return best / engines


def intern_measurements(quick: bool = False) -> Tuple[List[Row], List[Dict[str, object]]]:
    """Run the intern benchmarks once.

    Returns human-readable ``(label, measured)`` rows and machine rows
    (``{"id", "label", "ns_per_op"}``) for ``BENCH_subtype.json``.
    """
    depth = 1500 if quick else 3000
    iterations = 20 if quick else 50
    engines = 10 if quick else 25

    warm_interned = _warm_requery(True, depth, iterations)
    interned_traffic = intern_stats()
    warm_plain = _warm_requery(False, depth, iterations)
    speedup = warm_plain / warm_interned if warm_interned else float("inf")
    assert speedup >= REQUIRED_SPEEDUP, (
        f"interned warm re-query only {speedup:.2f}x faster than the "
        f"--no-intern seed path (interned {fmt(warm_interned)}, "
        f"plain {fmt(warm_plain)}); the term kernel's ≥{REQUIRED_SPEEDUP:.0f}x "
        f"contract is broken"
    )

    shared_per_engine = _fresh_engines(True, depth, engines)
    cold_per_engine = _fresh_engines(False, depth, engines)
    engine_speedup = (
        cold_per_engine / shared_per_engine if shared_per_engine else float("inf")
    )

    rows: List[Row] = [
        (
            f"I1 warm ground re-query, succ^{depth}(0), interned",
            f"{fmt(warm_interned)} (table hit rate {interned_traffic.hit_rate:.0%})",
        ),
        (
            f"I1 warm ground re-query, succ^{depth}(0), --no-intern",
            f"{fmt(warm_plain)} (interned {speedup:.1f}x faster)",
        ),
        (
            f"I2 fresh engines on a shared memo, succ^{depth}(0)",
            f"{fmt(shared_per_engine)}/engine",
        ),
        (
            f"I2 fresh cold engines (seed shape)",
            f"{fmt(cold_per_engine)}/engine (shared {engine_speedup:,.0f}x faster)",
        ),
    ]
    measurements: List[Dict[str, object]] = [
        {
            "id": "intern.warm_requery.interned",
            "label": f"warm ground re-query, succ^{depth}(0), interned",
            "ns_per_op": warm_interned * 1e9,
        },
        {
            "id": "intern.warm_requery.no_intern",
            "label": f"warm ground re-query, succ^{depth}(0), --no-intern",
            "ns_per_op": warm_plain * 1e9,
        },
        {
            "id": "intern.fresh_engines.shared_memo",
            "label": f"fresh engine per query on a shared memo, succ^{depth}(0)",
            "ns_per_op": shared_per_engine * 1e9,
        },
        {
            "id": "intern.fresh_engines.cold",
            "label": f"fresh cold engine per query (seed shape), succ^{depth}(0)",
            "ns_per_op": cold_per_engine * 1e9,
        },
    ]
    return rows, measurements


def intern_rows(quick: bool = False) -> List[Row]:
    """The human-readable rows (``summary.py`` pulls these)."""
    rows, _ = intern_measurements(quick=quick)
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-smoke sizes")
    parser.add_argument("--json", metavar="OUT", default=None)
    arguments = parser.parse_args(argv)
    rows, measurements = intern_measurements(quick=arguments.quick)
    width = max(len(label) for label, _ in rows) + 2
    for label, value in rows:
        print(label.ljust(width) + value)
    if arguments.json is not None:
        payload = {"quick": arguments.quick, "measurements": measurements}
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, ensure_ascii=False)
            handle.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
