"""Polymorphic subtype-constraint solver benchmarks.

The TLP6xx family adds a constraint-graph solve to the linter.  Two
costs matter:

* **P1 solver scaling** — :meth:`ConstraintGraph.solve` over an
  N-variable subtype chain ``X0 ⊑ X1 ⊑ … ⊑ XN`` with a ground lower
  bound at the bottom (arc consistency must propagate the full length),
  reported per node;
* **P2/P3 monomorphic overhead** — linting the variable-free lint
  corpus with the family enabled vs disabled.  The solver's activation
  gate must keep the two within noise of each other: CI holds the
  enabled row to at most 1.1x the disabled row
  (``check_regression.py --max-overhead``).

Run standalone::

    python benchmarks/bench_polytypes.py [--quick] [--json OUT]

or let ``benchmarks/summary.py`` pull the rows into the one-shot table
(ids ``polytypes.*`` land in ``BENCH_subtype.json`` for the CI
regression gate).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis import LintConfig, lint_text
from repro.analysis.context import LintContext
from repro.analysis.polytypes import ConstraintGraph
from repro.lang.parser import parse_file
from repro.terms.term import Struct

Row = Tuple[str, str]

TLP6XX = frozenset({"TLP601", "TLP602", "TLP603", "TLP604", "TLP605"})

LATTICE = """\
TYPE nat, int, list.
FUNC 0, s, pred, nil, cons.
int >= nat.
nat >= 0 + s(nat).
int >= pred(int).
list(A) >= nil + cons(A, list(A)).
"""

#: The variable-free members of the seeded lint corpus (everything the
#: pre-solver linter fully understood; ``polytypes.tlp`` is the
#: polymorphic one and is measured separately).
MONO_CORPUS = (
    "missing_filter.tlp",
    "modes.tlp",
    "success_sets.tlp",
    "unguarded.tlp",
    "uninhabited.tlp",
)


def fmt(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _best_of(thunk, repeats: int = 5) -> float:
    """Minimum wall time over ``repeats`` runs (the noise-robust stat
    the 1.1x overhead gate needs)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    return best


def _engine():
    engine = LintContext.build(parse_file(LATTICE)).engine
    assert engine is not None
    return engine


def _solve_chain(engine, length: int) -> None:
    candidates = (
        Struct("nat", ()),
        Struct("int", ()),
        Struct("list", (Struct("nat", ()),)),
    )
    graph = ConstraintGraph(engine, candidates)
    graph.add_lower("var X0", Struct("nat", ()), "chain bottom")
    for index in range(length):
        graph.add_edge(f"var X{index}", f"var X{index + 1}", "chain link")
    solution = graph.solve()
    assert solution.satisfiable


def _corpus_texts() -> List[str]:
    root = Path(__file__).resolve().parents[1] / "examples" / "corpus" / "lint"
    return [(root / name).read_text(encoding="utf-8") for name in MONO_CORPUS]


def polytypes_measurements(
    quick: bool = False,
) -> Tuple[List[Row], List[Dict[str, object]]]:
    """Run the solver benchmarks once.

    Returns human-readable ``(label, measured)`` rows and machine rows
    (``{"id", "label", "ns_per_op"}``) for ``BENCH_subtype.json``.
    """
    rows: List[Row] = []
    machine: List[Dict[str, object]] = []

    # -- P1: solver scaling over a subtype chain ---------------------------
    engine = _engine()
    lengths = (16,) if quick else (64, 256)
    for length in lengths:
        dt = _best_of(lambda: _solve_chain(engine, length), repeats=3)
        rows.append((f"P1 constraint-graph solve, {length}-variable chain", fmt(dt)))
        machine.append(
            {
                "id": f"polytypes.solve.chain.{length}",
                "label": f"constraint-graph solve, {length}-variable chain",
                "ns_per_op": dt * 1e9 / length,
            }
        )

    # -- P2/P3: monomorphic lint overhead ----------------------------------
    texts = _corpus_texts()
    with_family = LintConfig()
    without = LintConfig(disabled=TLP6XX)

    def lint_with(config: LintConfig) -> None:
        for text in texts:
            lint_text(text, config=config)

    # Warm both configurations before timing either: the parse/intern/
    # engine caches are shared process-wide, so whichever config runs
    # first would otherwise pay every cold cost and skew the P2/P3
    # ratio the 1.1x CI ceiling rides on.
    for _ in range(2):
        lint_with(with_family)
        lint_with(without)
    enabled_dt = _best_of(lambda: lint_with(with_family))
    disabled_dt = _best_of(lambda: lint_with(without))
    overhead = enabled_dt / disabled_dt if disabled_dt else float("inf")
    rows.append(
        (
            f"P2 lint monomorphic corpus ({len(texts)} files), TLP6xx on",
            f"{fmt(enabled_dt)}  ({overhead:.2f}x of off)",
        )
    )
    rows.append(
        (f"P3 lint monomorphic corpus ({len(texts)} files), TLP6xx off", fmt(disabled_dt))
    )
    machine.append(
        {
            "id": "polytypes.lint.corpus",
            "label": f"lint monomorphic corpus, TLP6xx enabled ({len(texts)} files)",
            "ns_per_op": enabled_dt * 1e9,
        }
    )
    machine.append(
        {
            "id": "polytypes.lint.corpus.nosolver",
            "label": f"lint monomorphic corpus, TLP6xx disabled ({len(texts)} files)",
            "ns_per_op": disabled_dt * 1e9,
        }
    )

    # -- P4: the polymorphic corpus member itself --------------------------
    poly = (
        Path(__file__).resolve().parents[1]
        / "examples"
        / "corpus"
        / "lint"
        / "polytypes.tlp"
    ).read_text(encoding="utf-8")
    poly_dt = _best_of(lambda: lint_text(poly))
    rows.append(("P4 lint polytypes.tlp (full TLP6xx solve)", fmt(poly_dt)))
    machine.append(
        {
            "id": "polytypes.lint.poly_corpus",
            "label": "lint polytypes.tlp (full TLP6xx solve)",
            "ns_per_op": poly_dt * 1e9,
        }
    )

    return rows, machine


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-smoke sizes")
    parser.add_argument("--json", metavar="OUT", default=None)
    arguments = parser.parse_args(argv)
    rows, machine = polytypes_measurements(quick=arguments.quick)
    width = max(len(label) for label, _ in rows) + 2
    for label, value in rows:
        print(label.ljust(width) + value)
    if arguments.json:
        with open(arguments.json, "w") as handle:
            json.dump({"measurements": machine}, handle, indent=2)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
