"""Experiment E4: ``match`` cost as a function of term size.

Theorem 5 guarantees termination; these benchmarks characterise the
constant: ``match`` should scale ~linearly in the size of the matched
term on the paper's list/naturals types.

Run:  pytest benchmarks/bench_match.py --benchmark-only
"""

import pytest

from repro.core import Matcher
from repro.lang import parse_term as T
from repro.terms import Struct, Var
from repro.workloads import deep_nat, nat_list, paper_universe

DEPTHS = [8, 32, 128, 512]
LENGTHS = [4, 16, 64, 256]


def open_list(length: int):
    """cons(X0, cons(X1, ... L)) — a list skeleton full of variables, so
    match produces a large typing rather than the empty one."""
    term = Var("L")
    for index in range(length):
        term = Struct("cons", (Var(f"X{index}"), term))
    return term


@pytest.mark.parametrize("depth", DEPTHS)
def test_match_deep_nat(benchmark, depth):
    term = deep_nat(depth)
    cset = paper_universe()

    def run():
        return Matcher(cset).match(T("nat"), term)

    result = benchmark(run)
    assert result is not None


@pytest.mark.parametrize("length", LENGTHS)
def test_match_ground_list(benchmark, length):
    term = nat_list(length)
    cset = paper_universe()

    def run():
        return Matcher(cset).match(T("list(nat)"), term)

    benchmark(run)


@pytest.mark.parametrize("length", LENGTHS)
def test_match_open_list_polymorphic(benchmark, length):
    """The checker's hot path: matching a variable-filled pattern against
    a polymorphic type, producing a typing for every variable."""
    term = open_list(length)
    cset = paper_universe()

    def run():
        return Matcher(cset).match(T("list(A)"), term)

    result = benchmark(run)
    assert len(result) == length + 1  # every Xi plus the tail L


@pytest.mark.parametrize("length", [16, 64])
def test_match_memoization_ablation_off(benchmark, length):
    term = nat_list(length)
    cset = paper_universe()

    def run():
        return Matcher(cset, memoize=False).match(T("list(nat)"), term)

    benchmark(run)


@pytest.mark.parametrize("length", [16, 64])
def test_match_memoization_ablation_on(benchmark, length):
    term = nat_list(length)
    cset = paper_universe()

    def run():
        return Matcher(cset, memoize=True).match(T("list(nat)"), term)

    benchmark(run)


def test_match_fail_fast(benchmark):
    """A failing match (wrong constructor) must be cheap."""
    cset = paper_universe()
    matcher = Matcher(cset)
    term = T("cons(X, Y)")

    def run():
        return matcher.match(T("int"), term)

    benchmark(run)
