"""Experiments E1/E2: subtype derivation cost — deterministic strategy
versus the naive definitional prover.

The paper proves (Theorems 1–3) that clause selection can be made
deterministic; these benchmarks supply the numbers the paper never had
to print.  Expected shape:

* the deterministic engine scales ~linearly in derivation length
  (``nat`` towers, list length, hierarchy width);
* the naive SLD prover over ``H_C`` explodes within single-digit depths
  (the ``naive_*`` rows, kept tiny on purpose), and cannot refute at all.

Run:  pytest benchmarks/bench_subtype.py --benchmark-only
"""

import pytest

from repro.checker import check_text
from repro.core import NaiveSubtypeProver, SubtypeEngine
from repro.lang import parse_term as T
from repro.workloads import (
    deep_int,
    deep_nat,
    nat_list,
    paper_universe,
    wide_type_hierarchy,
)

DEPTHS = [8, 32, 128, 512]
LIST_LENGTHS = [4, 16, 64, 256]
WIDTHS = [4, 16, 64, 256]
NAIVE_DEPTHS = [1, 2, 3]


@pytest.mark.parametrize("depth", DEPTHS)
def test_engine_nat_membership(benchmark, depth):
    """Deterministic engine: succ^depth(0) ∈ nat (fresh engine per call
    so memoisation cannot amortise across rounds)."""
    term = deep_nat(depth)
    cset = paper_universe()

    def run():
        return SubtypeEngine(cset).contains(T("nat"), term)

    assert benchmark(run)


@pytest.mark.parametrize("depth", DEPTHS)
def test_engine_nat_rejection(benchmark, depth):
    """Deterministic engine refuting pred^depth(0) ∈ nat — the direction
    the naive prover cannot decide at all."""
    term = deep_int(depth)
    cset = paper_universe()

    def run():
        return SubtypeEngine(cset).contains(T("nat"), term)

    assert not benchmark(run)


@pytest.mark.parametrize("length", LIST_LENGTHS)
def test_engine_list_membership(benchmark, length):
    term = nat_list(length)
    cset = paper_universe()

    def run():
        return SubtypeEngine(cset).contains(T("list(nat)"), term)

    assert benchmark(run)


@pytest.mark.parametrize("width", WIDTHS)
def test_engine_wide_hierarchy(benchmark, width):
    """Membership of the last constant in a width-N union hierarchy."""
    module = check_text(wide_type_hierarchy(width))
    assert module.ok
    cset = module.constraints
    goal_sub = T(f"k{width - 1}")

    def run():
        return SubtypeEngine(cset).contains(T("top"), goal_sub)

    assert benchmark(run)


@pytest.mark.parametrize("depth", NAIVE_DEPTHS)
def test_naive_nat_membership(benchmark, depth):
    """Naive SLD over H_C on the same family — note the tiny depths, and
    the pinned round count (a single call can take seconds)."""
    term = deep_nat(depth)
    cset = paper_universe()
    prover = NaiveSubtypeProver(cset)

    result = benchmark.pedantic(
        lambda: prover.holds(T("nat"), term), rounds=3, iterations=1
    )
    assert result is True


@pytest.mark.parametrize("depth", NAIVE_DEPTHS)
def test_engine_nat_membership_tiny(benchmark, depth):
    """The deterministic engine on the naive rows' inputs, for the
    head-to-head factor."""
    term = deep_nat(depth)
    cset = paper_universe()

    def run():
        return SubtypeEngine(cset).contains(T("nat"), term)

    assert benchmark(run)


@pytest.mark.parametrize("length", [1, 2, 3])
def test_naive_list_membership(benchmark, length):
    """The paper's own Section 2 goal family (list membership) is where
    naive SLD search visibly explodes: compare against
    ``test_engine_list_membership_tiny`` on identical inputs.  Length 4
    does not terminate in minutes at any depth bound — the series stops
    where the baseline stops."""
    term = nat_list(length, element_depth=0)
    cset = paper_universe()
    # The refutation for length k needs ~26 + 10k steps; depth 40 admits
    # lengths up to 3 (a too-small bound makes DFS thrash, a larger one
    # explodes the failing subtrees).
    prover = NaiveSubtypeProver(cset, max_depth=40, step_limit=4_000_000)

    result = benchmark.pedantic(
        lambda: prover.holds(T("list(nat)"), term), rounds=3, iterations=1
    )
    assert result is True


@pytest.mark.parametrize("length", [1, 2, 3])
def test_engine_list_membership_tiny(benchmark, length):
    term = nat_list(length, element_depth=0)
    cset = paper_universe()

    def run():
        return SubtypeEngine(cset).contains(T("list(nat)"), term)

    assert benchmark(run)


def test_engine_more_general_paper_pair(benchmark):
    """Definition 5 check (list(A) more general than nelist(int))."""
    cset = paper_universe()
    engine = SubtypeEngine(cset)

    def run():
        return engine.more_general(T("list(A)"), T("nelist(int)"))

    assert benchmark(run)
