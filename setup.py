"""Shim for legacy editable installs in offline environments without the
``wheel`` package (all real metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
