"""Exit-code regression matrix for ``tlp-check``, via real subprocesses.

The contract documented in ``repro.checker.cli``: 0 when every file is
well-typed, 1 otherwise, 2 on usage errors (unreadable files, bad
arguments).  Run through the actual console entry point so argument
parsing, stream handling, and interpreter startup are all covered.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.workloads import APPEND, ILL_TYPED_EXAMPLES

REPO_ROOT = Path(__file__).resolve().parents[2]
ARITHMETIC = str(REPO_ROOT / "examples" / "programs" / "arithmetic.tlp")


def tlp_check(*arguments, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.checker.cli", *arguments],
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
    )


@pytest.fixture()
def write(tmp_path):
    def _write(name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return _write


# -- the 0/1/2 matrix ---------------------------------------------------------


def test_exit_zero_on_well_typed_file(write):
    completed = tlp_check(write("ok.tlp", APPEND))
    assert completed.returncode == 0
    assert "well-typed" in completed.stdout


def test_exit_zero_on_multiple_well_typed_files(write):
    completed = tlp_check(write("a.tlp", APPEND), ARITHMETIC)
    assert completed.returncode == 0
    assert completed.stdout.count("well-typed") == 2


def test_exit_one_on_ill_typed_file(write):
    path = write("bad.tlp", ILL_TYPED_EXAMPLES["query_two_contexts"])
    completed = tlp_check(path)
    assert completed.returncode == 1
    assert "not well-typed" in completed.stdout


def test_exit_one_when_any_file_is_ill_typed(write):
    good = write("good.tlp", APPEND)
    bad = write("bad.tlp", ILL_TYPED_EXAMPLES["query_two_contexts"])
    completed = tlp_check(good, bad)
    assert completed.returncode == 1
    assert "well-typed" in completed.stdout  # the good file still reported


def test_exit_two_on_unreadable_file(tmp_path):
    completed = tlp_check(str(tmp_path / "missing.tlp"))
    assert completed.returncode == 2
    assert "cannot read" in completed.stderr


def test_exit_two_on_no_arguments():
    completed = tlp_check()
    assert completed.returncode == 2
    assert "usage" in completed.stderr


def test_exit_two_on_unknown_flag(write):
    completed = tlp_check("--frobnicate", write("ok.tlp", APPEND))
    assert completed.returncode == 2


def test_exit_codes_survive_observability_flags(write):
    good = write("good.tlp", APPEND)
    bad = write("bad.tlp", ILL_TYPED_EXAMPLES["query_two_contexts"])
    assert tlp_check("--stats", good).returncode == 0
    assert tlp_check("--stats", bad).returncode == 1
    assert tlp_check("--stats", "--trace=-", bad).returncode == 1


# -- the --stats acceptance criterion ----------------------------------------


def _counter(stdout, name):
    for line in stdout.splitlines():
        parts = line.split()
        if parts and parts[0] == name:
            return int(parts[-1].replace(",", ""))
    return 0


def test_stats_reports_nonzero_pipeline_counters():
    completed = tlp_check("--stats", ARITHMETIC)
    assert completed.returncode == 0
    assert "typing witnesses verified respectful" in completed.stdout
    assert _counter(completed.stdout, "subtype.goals") > 0
    assert _counter(completed.stdout, "match.calls") > 0
    assert _counter(completed.stdout, "checker.clauses_checked") > 0
    assert "timers" in completed.stdout


def test_stats_with_run_counts_sld_steps():
    completed = tlp_check("--stats", "--run", "--max-answers", "2", ARITHMETIC)
    assert completed.returncode == 0
    assert _counter(completed.stdout, "sld.steps") > 0
    assert _counter(completed.stdout, "typed.resolvents_checked") > 0


# -- the --trace stream -------------------------------------------------------


def _assert_valid_jsonl(text):
    lines = [line for line in text.splitlines() if line.strip()]
    assert lines, "trace stream is empty"
    for line in lines:
        event = json.loads(line)  # every line must parse
        assert isinstance(event["kind"], str)
        assert isinstance(event["span_id"], int)
        assert "parent_id" in event and "ts" in event
    return [json.loads(line) for line in lines]


def test_trace_to_file_emits_valid_jsonl(tmp_path):
    out = tmp_path / "trace.jsonl"
    completed = tlp_check(f"--trace={out}", ARITHMETIC)
    assert completed.returncode == 0
    events = _assert_valid_jsonl(out.read_text())
    kinds = {event["kind"] for event in events}
    assert "match_call" in kinds
    # Parent links resolve within the stream (orphans only at the roots).
    ids = {event["span_id"] for event in events}
    child_parents = {e["parent_id"] for e in events if e["parent_id"] is not None}
    assert child_parents & ids


def test_bare_trace_streams_jsonl_to_stderr():
    completed = tlp_check(ARITHMETIC, "--trace")
    assert completed.returncode == 0
    _assert_valid_jsonl(completed.stderr)


def test_trace_with_stats_includes_subtype_goals(tmp_path):
    out = tmp_path / "trace.jsonl"
    completed = tlp_check("--stats", f"--trace={out}", ARITHMETIC)
    assert completed.returncode == 0
    events = _assert_valid_jsonl(out.read_text())
    goals = [e for e in events if e["kind"] == "subtype_goal"]
    assert goals and all(goal["result"] is True for goal in goals)


def test_trace_to_unwritable_path_exits_two(tmp_path):
    completed = tlp_check(f"--trace={tmp_path}/no/such/dir/t.jsonl", ARITHMETIC)
    assert completed.returncode == 2
    assert "cannot write trace" in completed.stderr


# -- --typed-run: dynamic subject reduction -----------------------------------

MODES_EXAMPLE = str(REPO_ROOT / "examples" / "programs" / "modes.tlp")

ILL_MODED = """\
TYPE nat, int.
FUNC 0, pred.
int >= nat.
nat >= 0.
int >= pred(int).
PRED makeint(int).
MODE makeint(OUT).
makeint(pred(0)).
PRED usenat(nat).
MODE usenat(IN).
usenat(0).
:- makeint(X), usenat(X).
"""


def test_typed_run_well_moded_exits_zero():
    result = tlp_check("--typed-run", MODES_EXAMPLE)
    assert result.returncode == 0
    assert "subject reduction held" in result.stdout
    assert "TLP590" not in result.stdout


def test_typed_run_ill_moded_aborts_with_spanned_tlp590(write):
    path = write("ill.tlp", ILL_MODED)
    result = tlp_check("--typed-run", path)
    assert result.returncode == 1
    assert "TLP590" in result.stdout
    assert "subject reduction violated at resolution step 1" in result.stdout
    # The diagnostic anchors to the query's span (line 12).
    assert f"{path}:12:1" in result.stdout


def test_typed_run_takes_precedence_over_run(write):
    path = write("ill.tlp", ILL_MODED)
    result = tlp_check("--typed-run", "--run", path)
    assert result.returncode == 1
    assert "TLP590" in result.stdout
